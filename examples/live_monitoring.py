"""Live monitoring: streaming ingestion + online anomaly screening.

The operational loop the paper's stakeholders run: a historical inventory
provides the model of normalcy; a *streaming* builder keeps extending it
as live AIS arrives; and every incoming report is screened against the
normalcy model in real time.

Usage::

    python examples/live_monitoring.py
"""

from __future__ import annotations

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.apps import AnomalyDetector
from repro.pipeline import StreamingInventoryBuilder


def main() -> None:
    print("bootstrapping the normalcy inventory from history ...")
    history = generate_dataset(
        WorldConfig(seed=71, n_vessels=24, days=16.0, report_interval_s=600.0)
    )
    config = PipelineConfig(resolution=6)
    normalcy = build_inventory(
        history.positions, history.fleet, history.ports, config
    ).inventory
    detector = AnomalyDetector(normalcy)
    print(f"normalcy model: {len(normalcy):,} groups")

    print("\nstreaming a live day of traffic ...")
    live = generate_dataset(
        WorldConfig(seed=72, n_vessels=24, days=12.0, report_interval_s=900.0)
    )
    builder = StreamingInventoryBuilder(live.fleet, live.ports, config)
    static = live.static_by_mmsi()

    flagged = 0
    screened = 0
    examples_shown = 0
    for report in live.positions:
        completed = builder.ingest(report)
        if completed:
            # A trip just completed: screen its track against normalcy.
            for record in completed[:: max(1, len(completed) // 10)]:
                screened += 1
                score = detector.score(
                    record.lat, record.lon, record.sog, record.cog,
                    vessel_type=record.vessel_type,
                )
                if score.is_anomalous:
                    flagged += 1
                    if examples_shown < 3:
                        examples_shown += 1
                        vessel = static[record.mmsi]
                        print(f"  ⚑ {vessel.name}: {score.reasons[0]}")

    stats = builder.stats
    print("\nstream statistics:")
    print(f"  reports ingested:     {stats.ingested:,}")
    print(f"  invalid fields:       {stats.invalid}")
    print(f"  stale/duplicates:     {stats.stale_or_duplicate}")
    print(f"  infeasible jumps:     {stats.infeasible}")
    print(f"  trips completed:      {stats.trips_completed}")
    print(f"  live inventory:       {len(builder.inventory):,} groups")
    print(f"\nscreened {screened} completed-trip positions against "
          f"normalcy: {flagged} flagged ({flagged/max(1, screened):.1%})")

    print("\nmerging the live inventory into the normalcy model "
          "(tomorrow's baseline) ...")
    before = len(normalcy)
    normalcy.merge(builder.inventory)
    print(f"normalcy model grew {before:,} -> {len(normalcy):,} groups")


if __name__ == "__main__":
    main()
