"""ETA estimation from historical ATA statistics (paper §4.1.2).

Builds an inventory from one period, then estimates arrival times for
vessels in a later, unseen period, comparing the inventory's per-cell ATA
statistics against a naive great-circle baseline.

Usage::

    python examples/eta_estimation.py
"""

from __future__ import annotations

import statistics

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.apps import EtaEstimator, great_circle_baseline_s
from repro.pipeline import PortIndex, cleaning
from repro.pipeline.trips import annotate_trips
from repro.world.ports import port_by_id


def main() -> None:
    print("building the normalcy inventory (training period) ...")
    history = generate_dataset(
        WorldConfig(seed=11, n_vessels=28, days=18.0, report_interval_s=600.0)
    )
    inventory = build_inventory(
        history.positions, history.fleet, history.ports,
        PipelineConfig(resolution=6),
    ).inventory
    estimator = EtaEstimator(inventory)

    print("replaying an unseen period and estimating arrivals ...")
    live = generate_dataset(
        WorldConfig(seed=99, n_vessels=12, days=18.0,
                    report_interval_s=900.0, clean=True)
    )
    static = live.static_by_mmsi()
    index = PortIndex(live.ports)

    inventory_errors: list[float] = []
    baseline_errors: list[float] = []
    shown = 0
    by_vessel: dict = {}
    for report in live.positions:
        by_vessel.setdefault(report.mmsi, []).append(report)
    for mmsi, track in by_vessel.items():
        track = cleaning.feasibility_filter(cleaning.sort_and_dedupe(track))
        enriched = cleaning.enrich_track(mmsi, track, static)
        if not enriched:
            continue
        for record in annotate_trips(enriched, index)[::10]:
            estimate = estimator.estimate(
                record.lat, record.lon, vessel_type=record.vessel_type,
                origin=record.origin, destination=record.destination,
            )
            port = port_by_id(record.destination)
            baseline = great_circle_baseline_s(
                record.lat, record.lon, port.lat, port.lon
            )
            baseline_errors.append(abs(baseline - record.ata_s) / 3600.0)
            if estimate is None:
                continue
            inventory_errors.append(
                abs(estimate.p50_s - record.ata_s) / 3600.0
            )
            if shown < 5:
                shown += 1
                print(
                    f"  {static[mmsi].name:<22} -> {port.name:<18} "
                    f"actual {record.ata_s/3600.0:6.1f} h | "
                    f"inventory {estimate.p50_s/3600.0:6.1f} h "
                    f"[{estimate.p10_s/3600.0:.1f}, {estimate.p90_s/3600.0:.1f}] "
                    f"({estimate.grouping}) | "
                    f"baseline {baseline/3600.0:6.1f} h"
                )

    print()
    if not inventory_errors:
        print("no probes answered — the live period's routes have no "
              "overlap with the training inventory; re-run with more "
              "training vessels")
        return
    print(f"probes answered by the inventory: {len(inventory_errors)}")
    print(f"inventory MAE: {statistics.fmean(inventory_errors):6.1f} hours")
    print(f"baseline  MAE: {statistics.fmean(baseline_errors):6.1f} hours")


if __name__ == "__main__":
    main()
