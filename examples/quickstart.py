"""Quickstart: build a global inventory from synthetic AIS and query it.

Runs the full Patterns-of-Life loop in under a minute:

1. generate a synthetic maritime world (fleet + voyages + AIS reports,
   with realistic data-quality defects);
2. run the paper's pipeline (clean → trips → project → aggregate);
3. query the resulting inventory and print an ASCII map of global speeds.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.apps import ascii_map, raster_from_inventory
from repro.geo.polygon import BoundingBox
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet


def main() -> None:
    print("1. generating a synthetic world (24 vessels, 14 days) ...")
    data = generate_dataset(
        WorldConfig(seed=7, n_vessels=24, days=14.0, report_interval_s=600.0)
    )
    print(f"   {len(data.positions):,} position reports, "
          f"{len(data.voyages)} scheduled voyages, "
          f"{data.defects.total()} injected data defects")

    print("2. building the global inventory (resolution 6) ...")
    result = build_inventory(
        data.positions, data.fleet, data.ports, PipelineConfig(resolution=6)
    )
    for stage, count in result.funnel.items():
        print(f"   {stage:<22} {count:>10,}")

    inventory = result.inventory
    print("3. querying the busiest cell ...")
    key, summary = max(
        ((k, s) for k, s in inventory.items()
         if k.grouping_set is GroupingSet.CELL),
        key=lambda pair: pair[1].records,
    )
    lat, lon = cell_to_latlng(key.cell)
    p10, p50, p90 = summary.speed_percentiles()
    print(f"   cell near ({lat:.2f}, {lon:.2f}): "
          f"{summary.records} reports, "
          f"{summary.ships.cardinality()} distinct ships")
    print(f"   speed: mean {summary.mean_speed_kn():.1f} kn, "
          f"p10/p50/p90 = {p10:.1f}/{p50:.1f}/{p90:.1f} kn")
    print(f"   mean course: {summary.mean_course_deg():.0f}°; "
          f"top destination: {summary.top_destination()}")

    print("4. global mean-speed map (ASCII preview):")
    raster = raster_from_inventory(
        inventory, lambda s: s.mean_speed_kn(),
        BoundingBox(-60.0, 70.0, -180.0, 180.0), width=300, height=120,
    )
    print(ascii_map(raster, max_width=100))


if __name__ == "__main__":
    main()
