"""Fusing non-AIS data into the inventory (the paper's §5 future work).

"We intend to extend the proposed methodology to include features of
non-AIS data … combine AIS with weather and commodity data."

This example wires the synthetic wind climatology into the pipeline as
extra features: every cell summary then carries the wind statistics of
the traffic that crossed it, queryable exactly like the AIS-native
features — e.g. "how windy is the water this trade sails through?".

Usage::

    python examples/weather_fusion.py
"""

from __future__ import annotations

import statistics

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet
from repro.pipeline.extras import wind_features


def main() -> None:
    print("building an inventory with fused wind features ...")
    data = generate_dataset(
        WorldConfig(seed=13, n_vessels=24, days=14.0, report_interval_s=600.0)
    )
    config = PipelineConfig(resolution=5, extra_features=wind_features(seed=13))
    inventory = build_inventory(
        data.positions, data.fleet, data.ports, config
    ).inventory
    print(f"inventory: {len(inventory):,} groups with extra features "
          f"{inventory.config.extra_names}")

    # Which waters does each market sail, and how windy are they?
    print("\nper-market wind exposure (mean wind over all cells crossed):")
    by_type: dict[str, list[float]] = {}
    for key, summary in inventory.items():
        if key.grouping_set is not GroupingSet.CELL_TYPE:
            continue
        wind = summary.extras["wind_speed_ms"]
        if wind.count:
            by_type.setdefault(key.vessel_type, []).append(wind.mean)
    for vessel_type, means in sorted(by_type.items()):
        print(f"  {vessel_type:<12} {statistics.fmean(means):5.1f} m/s "
              f"over {len(means):,} cells")

    # The windiest waters the fleet crossed.
    print("\nwindiest traversed cells:")
    windy = sorted(
        (
            (summary.extras["wind_speed_ms"].mean, key.cell, summary.records)
            for key, summary in inventory.items()
            if key.grouping_set is GroupingSet.CELL
            and summary.extras["wind_speed_ms"].count >= 2
        ),
        reverse=True,
    )[:5]
    for wind_ms, cell, records in windy:
        lat, lon = cell_to_latlng(cell)
        print(f"  ({lat:6.1f}, {lon:7.1f})  {wind_ms:5.1f} m/s "
              f"({records} reports)")
    print("\nmid-latitude storm tracks should top the list — the fused "
          "field's climatology shows through the traffic statistics")


if __name__ == "__main__":
    main()
