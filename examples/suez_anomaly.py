"""Detecting the Suez blockage against a model of normalcy (paper §1/§2).

March 2021: a grounded container vessel closes the canal and traffic
reroutes around the Cape of Good Hope.  This example reproduces the
detection story end to end:

1. build a normalcy inventory from an undisrupted period;
2. simulate a blockage window (voyages transiting during it divert via the
   Cape — an emergent consequence of removing the canal edge from the
   routing graph);
3. score both populations with the anomaly detector.

Usage::

    python examples/suez_anomaly.py
"""

from __future__ import annotations

import statistics

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.apps import AnomalyDetector
from repro.inventory.keys import GroupingSet
from repro.world.routing import SeaRouter


def main() -> None:
    print("building the normalcy model (undisrupted traffic) ...")
    normal = generate_dataset(
        WorldConfig(seed=31, n_vessels=32, days=20.0, report_interval_s=600.0)
    )
    inventory = build_inventory(
        normal.positions, normal.fleet, normal.ports,
        PipelineConfig(resolution=6),
    ).inventory
    detector = AnomalyDetector(inventory)

    router = SeaRouter()
    blocked = SeaRouter(blocked_canals={"suez", "panama"})
    routes = {}
    for key, _ in inventory.items():
        if key.grouping_set is GroupingSet.CELL_OD_TYPE:
            route = (key.origin, key.destination, key.vessel_type)
            routes[route] = routes.get(route, 0) + 1
    suez_routes = [
        route for route, count in routes.items()
        if count >= 20 and router.uses_canal(route[0], route[1], "suez")
    ]
    if not suez_routes:
        print("no dense Suez routes in this world; re-run with more vessels")
        return
    print(f"Suez-transiting routes with history: {len(suez_routes)}")

    import random

    from repro.world.simulator import TrackSimulator
    from repro.world.voyages import VoyagePlan

    rng = random.Random(31)

    def dense_track(which_router, origin, destination):
        simulator = TrackSimulator(which_router, report_interval_s=1800.0)
        plan = VoyagePlan(
            mmsi=999_000_003, origin=origin, destination=destination,
            depart_ts=0.0, speed_kn=13.0,
            route_nodes=tuple(which_router.route_nodes(origin, destination)),
        )
        return [
            (r.lat, r.lon, r.sog, r.cog)
            for r in simulator.voyage_track(plan, end_ts=1e12, rng=rng)
        ]

    normal_scores = []
    diverted_scores = []
    print(f"{'route':<22} {'normal':>8} {'diverted':>9}")
    for origin, destination, vessel_type in suez_routes[:6]:
        score_normal = detector.score_track(
            dense_track(router, origin, destination),
            vessel_type=vessel_type,
            origin=origin, destination=destination,
        )
        score_diverted = detector.score_track(
            dense_track(blocked, origin, destination),
            vessel_type=vessel_type,
            origin=origin, destination=destination,
        )
        normal_scores.append(score_normal)
        diverted_scores.append(score_diverted)
        print(f"{origin}->{destination:<14} {score_normal:>7.0%} "
              f"{score_diverted:>8.0%}")

    print()
    print(f"mean off-lane fraction: normal   "
          f"{statistics.fmean(normal_scores):.0%}")
    print(f"mean off-lane fraction: diverted "
          f"{statistics.fmean(diverted_scores):.0%}")
    print("the diverted voyages light up exactly as the paper's "
          "model-of-normalcy argument predicts")


if __name__ == "__main__":
    main()
