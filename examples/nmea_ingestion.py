"""Ingesting raw NMEA AIVDM sentences into the pipeline.

Real AIS archives arrive as ``!AIVDM`` sentence streams.  This example
shows the full wire path: simulate a fleet, *encode* its reports into
armored NMEA sentences (including multi-fragment type-5 static messages),
decode the stream back — tolerating corrupted lines — and run the pipeline
on what survived.

Usage::

    python examples/nmea_ingestion.py
"""

from __future__ import annotations

import random

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.ais import encode_message
from repro.ais.messages import StaticVoyageData


def main() -> None:
    data = generate_dataset(
        WorldConfig(seed=55, n_vessels=12, days=8.0, report_interval_s=900.0)
    )
    print(f"simulated archive: {len(data.positions):,} position reports")

    # Encode: positions as type-1 sentences, static data as type-5
    # (two-fragment) messages interleaved every 500 reports.
    rng = random.Random(55)
    wire: list[tuple[str, float]] = []  # (sentence, receive timestamp)
    for index, report in enumerate(data.positions):
        for line in encode_message(report, message_id=str(index % 10)):
            wire.append((line, report.epoch_ts))
        if index % 500 == 0:
            vessel = rng.choice(data.fleet)
            static = StaticVoyageData(
                mmsi=vessel.mmsi, imo=vessel.imo, callsign=vessel.callsign,
                shipname=vessel.name, ship_type=vessel.ship_type,
            )
            for line in encode_message(static, message_id=str(index % 10)):
                wire.append((line, report.epoch_ts))
    print(f"encoded to {len(wire):,} NMEA sentences")

    # Corrupt ~0.5 % of lines in transit (VHF is a lossy channel).
    corrupted = 0
    for index in range(0, len(wire), 200):
        line, ts = wire[index]
        wire[index] = (line[: len(line) // 2] + "?" + line[len(line) // 2:], ts)
        corrupted += 1
    print(f"corrupted {corrupted} sentences in transit")

    # Decode the stream with one assembler (type-5 fragments span lines);
    # receive timestamps stamp the reports.
    from repro.ais import NmeaAssembler, decode_payload, parse_sentence

    assembler = NmeaAssembler()
    positions = []
    statics = 0
    dropped = 0
    for line, ts in wire:
        try:
            sentence = parse_sentence(line)
        except ValueError:
            dropped += 1
            continue
        completed = assembler.push(sentence)
        if completed is None:
            continue
        try:
            message = decode_payload(*completed, epoch_ts=ts)
        except ValueError:
            dropped += 1
            continue
        if isinstance(message, StaticVoyageData):
            statics += 1
        else:
            positions.append(message)
    print(f"decoded {len(positions):,} positions and {statics} static "
          f"reports ({dropped} corrupt sentences dropped)")

    result = build_inventory(
        positions, data.fleet, data.ports, PipelineConfig(resolution=6)
    )
    print("pipeline funnel over the wire-decoded archive:")
    for stage, count in result.funnel.items():
        print(f"   {stage:<22} {count:>10,}")


if __name__ == "__main__":
    main()
