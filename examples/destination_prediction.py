"""Streaming destination prediction (paper §4.1.3).

A vessel's crew has not disclosed their destination.  As its AIS reports
stream in, each position votes with the historical top-N destinations of
the cell it crosses; the running tally converges on the true port.

Usage::

    python examples/destination_prediction.py
"""

from __future__ import annotations

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.apps import DestinationPredictor
from repro.world.ports import port_by_id
from repro.world.routing import SeaRouter


def main() -> None:
    print("building the inventory ...")
    history = generate_dataset(
        WorldConfig(seed=61, n_vessels=30, days=20.0, report_interval_s=600.0)
    )
    inventory = build_inventory(
        history.positions, history.fleet, history.ports,
        PipelineConfig(resolution=6),
    ).inventory
    predictor = DestinationPredictor(inventory)

    # Replay new sailings of routes the inventory has seen — the paper's
    # premise is that history covers the route being predicted.  (A route
    # no vessel sailed before can only be guessed at hub level.)
    import random

    from repro.inventory.keys import GroupingSet
    from repro.world.simulator import TrackSimulator
    from repro.world.voyages import VoyagePlan

    router = SeaRouter()
    simulator = TrackSimulator(router, report_interval_s=1800.0)
    rng = random.Random(62)
    route_counts: dict = {}
    for key, _ in inventory.items():
        if key.grouping_set is GroupingSet.CELL_OD_TYPE:
            route = (key.origin, key.destination, key.vessel_type)
            route_counts[route] = route_counts.get(route, 0) + 1
    dense_routes = sorted(route_counts, key=route_counts.get, reverse=True)

    for origin, destination, vessel_type in dense_routes[:4]:
        plan = VoyagePlan(
            mmsi=999_000_001, origin=origin, destination=destination,
            depart_ts=0.0, speed_kn=14.0,
            route_nodes=tuple(router.route_nodes(origin, destination)),
        )
        reports = simulator.voyage_track(plan, end_ts=1e12, rng=rng)
        track = [(r.lat, r.lon) for r in reports]
        truth = port_by_id(destination)
        print(f"\nnew {vessel_type} sailing departed "
              f"{port_by_id(origin).name} — true destination "
              f"{truth.name} (undisclosed)")
        state = predictor.start()
        checkpoints = {len(track) // 4: "25%", len(track) // 2: "50%",
                       (3 * len(track)) // 4: "75%", len(track) - 1: "99%"}
        for index, (lat, lon) in enumerate(track):
            predictor.observe(state, lat, lon, vessel_type=vessel_type)
            if index in checkpoints:
                ranking = state.ranking()[:3]
                pretty = ", ".join(
                    f"{port_by_id(p).name} {share:.0%}" for p, share in ranking
                ) or "(no votes yet)"
                marker = "✓" if ranking and ranking[0][0] == destination \
                    else " "
                print(f"  at {checkpoints[index]:>3} of voyage {marker} "
                      f"top-3: {pretty}")


if __name__ == "__main__":
    main()
