"""Route forecasting with transition graphs and A* (paper §4.1.3).

Builds an inventory, picks a route with rich history, constructs the
per-route cell transition graph online, and forecasts the remaining route
of a vessel from mid-voyage — printing the predicted corridor as
coordinates and as an ASCII sketch.

Usage::

    python examples/route_forecasting.py
"""

from __future__ import annotations

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.apps import RouteForecaster, TransitionGraph
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet
from repro.world.ports import port_by_id
from repro.world.routing import SeaRouter


def main() -> None:
    print("building the inventory ...")
    data = generate_dataset(
        WorldConfig(seed=21, n_vessels=30, days=20.0, report_interval_s=600.0)
    )
    inventory = build_inventory(
        data.positions, data.fleet, data.ports, PipelineConfig(resolution=6)
    ).inventory

    # The densest route key in the inventory.
    route_counts: dict = {}
    for key, _ in inventory.items():
        if key.grouping_set is GroupingSet.CELL_OD_TYPE:
            route = (key.origin, key.destination, key.vessel_type)
            route_counts[route] = route_counts.get(route, 0) + 1
    origin, destination, vessel_type = max(route_counts, key=route_counts.get)
    origin_port = port_by_id(origin)
    destination_port = port_by_id(destination)
    print(f"densest route: {origin_port.name} -> {destination_port.name} "
          f"({vessel_type}), {route_counts[(origin, destination, vessel_type)]} "
          "inventoried cells")

    graph = TransitionGraph.from_inventory(
        inventory, origin, destination, vessel_type
    )
    print(f"transition graph: {len(graph.nodes())} cells, "
          f"{graph.edge_count()} directed transitions")

    # Forecast from 30 % of the way along the real sea route.
    router = SeaRouter()
    track = router.route_positions(origin, destination)
    midpoint = track[max(1, len(track) // 3)]
    forecaster = RouteForecaster(inventory)
    path = forecaster.forecast(
        midpoint[0], midpoint[1], origin, destination, vessel_type,
        destination_port.lat, destination_port.lon,
    )
    if path is None:
        print("no forecast possible (sparse history)")
        return
    print(f"forecast from ({midpoint[0]:.1f}, {midpoint[1]:.1f}): "
          f"{len(path)} cells to destination")
    print("first/last forecast positions:")
    for cell in path[:3]:
        lat, lon = cell_to_latlng(cell)
        print(f"   ({lat:8.3f}, {lon:8.3f})")
    print("   ...")
    for cell in path[-3:]:
        lat, lon = cell_to_latlng(cell)
        print(f"   ({lat:8.3f}, {lon:8.3f})")

    # Compare against the most-frequent-next-cell walk (greedy follow).
    greedy = [path[0]]
    seen = {path[0]}
    while len(greedy) < 3 * len(path):
        next_cell = graph.most_frequent_next(greedy[-1])
        if next_cell is None or next_cell in seen:
            break
        greedy.append(next_cell)
        seen.add(next_cell)
    print(f"greedy most-frequent-transition walk: {len(greedy)} cells "
          f"(A* path: {len(path)})")


if __name__ == "__main__":
    main()
