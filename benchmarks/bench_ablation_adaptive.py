"""Ablation — the adaptive non-uniform inventory (§5 future work).

"…using larger cells in open sea areas which are known to have low vessel
traffic density, preserving at the same time high resolution in dense
areas, such as the ones near the ports."

Reproduced: coarsen the uniform res-6 inventory adaptively and report the
storage saved vs the locality kept.  Shape checks: the group count shrinks
substantially, records are conserved exactly (the summary monoid makes
coarsening lossless), cells near ports stay fine while open-ocean cells
coarsen, and point queries still answer everywhere they did before.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.geo import haversine_m
from repro.hexgrid import cell_to_latlng, get_resolution
from repro.inventory.adaptive import build_adaptive
from repro.world.ports import PORTS


def _distance_to_nearest_port_km(lat: float, lon: float) -> float:
    return min(
        haversine_m(lat, lon, port.lat, port.lon) for port in PORTS
    ) / 1000.0


def test_ablation_adaptive_inventory(benchmark, bench_inventory):
    adaptive = benchmark.pedantic(
        lambda: build_adaptive(
            bench_inventory, min_records=6, coarse_resolution=3
        ),
        rounds=1, iterations=1,
    )

    histogram = adaptive.resolution_histogram()
    fine_near_port = []
    coarse_near_port = []
    for cell in adaptive.cells():
        lat, lon = cell_to_latlng(cell)
        distance = _distance_to_nearest_port_km(lat, lon)
        if get_resolution(cell) == bench_inventory.resolution:
            fine_near_port.append(distance)
        elif get_resolution(cell) <= 4:
            coarse_near_port.append(distance)

    import statistics

    fine_median = statistics.median(fine_near_port)
    coarse_median = statistics.median(coarse_near_port)
    shrink = 1.0 - len(adaptive) / len(bench_inventory)

    lines = [
        "Adaptive-inventory ablation (paper §5 future work)",
        f"uniform res-6 groups: {len(bench_inventory):,}; adaptive groups: "
        f"{len(adaptive):,} ({shrink:.0%} smaller)",
        f"resolution histogram (cells): {histogram}",
        f"median distance-to-port, cells kept fine (res 6): "
        f"{fine_median:,.0f} km",
        f"median distance-to-port, cells coarsened (res <=4): "
        f"{coarse_median:,.0f} km",
        "",
        "Shape checks: records conserved exactly; groups shrink; fine "
        "resolution survives near ports while open ocean coarsens.",
    ]
    write_report("ablation_adaptive", lines)

    assert adaptive.total_records() == bench_inventory.total_records()
    assert shrink > 0.25
    assert len(histogram) >= 2
    assert fine_median < coarse_median
    # Point queries still answer on the densest lane.
    from repro.inventory.keys import GroupingSet

    busiest_key = max(
        (key for key, _ in bench_inventory.items()
         if key.grouping_set is GroupingSet.CELL),
        key=lambda key: bench_inventory.get(key).records,
    )
    lat, lon = cell_to_latlng(busiest_key.cell)
    answer = adaptive.summary_at(lat, lon)
    assert answer is not None
    assert answer.records >= bench_inventory.get(busiest_key).records