"""Serving-layer benchmark — the ROADMAP's "serve heavy traffic" claim,
measured.

A closed-loop load generator: N client threads, each holding one TCP
connection to a real :class:`~repro.server.InventoryServer`, each firing
its next request the moment the previous answer lands.  The workload is
the paper's online mix — cell summaries, top-destination lookups and ETA
probes over the busiest cells of a built inventory.

Two phases against the same server process:

- **cold cache** — the backend's block cache starts empty, so early
  lookups pay one disk block read each;
- **warm cache** — the identical workload replayed once the hot blocks
  are resident, the steady state a long-running server converges to.

Reported per phase: sustained qps, client-side p50/p99 latency, and the
server's own latency digest + counters (cross-checked against the number
of requests issued, so lost or double-counted responses fail the run).

The benchmark also bounds the cost of the permanent instrumentation
(``repro.obs``): with tracing disabled — the serving default — the
per-request span overhead must stay under 3 % of the measured warm p50.
The disabled path is a constant-time attribute check, so the bound is
computed from a measured per-span cost times a generous spans-per-request
budget rather than by differencing two noisy load runs.
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import QUICK, write_report
from repro.obs import trace as obs
from repro.hexgrid import cell_to_latlng
from repro.inventory import SSTableInventory, write_inventory
from repro.inventory.keys import GroupingSet
from repro.server import (
    InventoryClient,
    InventoryService,
    ServerConfig,
    ServerThread,
)

N_CLIENTS = 16
REQUESTS_PER_CLIENT = 40 if QUICK else 200

#: A generous ceiling on disabled-tracing span() call sites one request
#: crosses: server.request + server.handle + inventory.get + a handful
#: of sstable.read_block calls.
SPANS_PER_REQUEST = 8


def _disabled_span_cost_s(iterations: int) -> float:
    """Measured per-call cost of ``obs.span`` on the disabled path."""
    assert not obs.enabled(), "overhead must be measured with tracing off"
    started = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench.noop", kind="probe"):
            pass
    return (time.perf_counter() - started) / iterations


def _probes(inventory, limit=64):
    """(lat, lon, vessel_type) probes over the busiest plain cells."""
    ranked = sorted(
        (
            (key, summary)
            for key, summary in inventory.items()
            if key.grouping_set is GroupingSet.CELL
        ),
        key=lambda pair: pair[1].records,
        reverse=True,
    )[:limit]
    probes = []
    for key, _ in ranked:
        lat, lon = cell_to_latlng(key.cell)
        probes.append((lat, lon))
    return probes


def _client_loop(host, port, probes, offset, latencies, failures):
    """One closed-loop client: next request only after the last answer."""
    requests = ("summary_at", "top_destinations_at", "eta")
    with InventoryClient(host, port) as client:
        for i in range(REQUESTS_PER_CLIENT):
            lat, lon = probes[(offset + i) % len(probes)]
            kind = requests[(offset + i) % len(requests)]
            started = time.perf_counter()
            try:
                if kind == "summary_at":
                    client.summary_at(lat, lon)
                elif kind == "top_destinations_at":
                    client.top_destinations_at(lat, lon)
                else:
                    client.eta(lat, lon)
            except Exception as exc:  # noqa: BLE001 - tallied, then asserted
                failures.append(exc)
                return
            latencies.append(time.perf_counter() - started)


#: The multi_get comparison: one batch of this many point lookups per
#: round trip, against the same lookups as individual summary_at calls.
MULTI_BATCH = 16
MULTI_ROUNDS = 10 if QUICK else 50


def _multi_vs_singles(host, port, probes):
    """Warm-cache p50 of one ``multi_get`` frame vs the same lookups as
    N sequential ``summary_at`` calls on one connection.

    Both sides resolve the identical keys against the identical warm
    backend, so the difference is pure protocol cost: N round trips and
    N frame encodings collapse into one.
    """
    keys = [
        {"lat": lat, "lon": lon}
        for lat, lon in (probes * MULTI_BATCH)[:MULTI_BATCH]
    ]
    singles: list[float] = []
    multis: list[float] = []
    with InventoryClient(host, port) as client:
        # One untimed pass of each shape warms caches and code paths.
        for key in keys:
            client.summary_at(key["lat"], key["lon"])
        client.multi_get(keys)
        for _ in range(MULTI_ROUNDS):
            started = time.perf_counter()
            for key in keys:
                client.summary_at(key["lat"], key["lon"])
            singles.append(time.perf_counter() - started)
            started = time.perf_counter()
            batched = client.multi_get(keys)
            multis.append(time.perf_counter() - started)
            assert len(batched) == MULTI_BATCH
    singles.sort()
    multis.sort()
    return {
        "batch": MULTI_BATCH,
        "rounds": MULTI_ROUNDS,
        "singles_p50_ms": singles[len(singles) // 2] * 1e3,
        "multi_p50_ms": multis[len(multis) // 2] * 1e3,
    }


def _run_phase(host, port, probes):
    latencies: list[float] = []
    failures: list[Exception] = []
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, probes, worker * 7, latencies, failures),
        )
        for worker in range(N_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    assert not failures, f"client failures: {failures[:3]}"
    assert len(latencies) == N_CLIENTS * REQUESTS_PER_CLIENT
    ordered = sorted(latencies)
    return {
        "qps": len(latencies) / wall,
        "wall_s": wall,
        "p50_ms": ordered[len(ordered) // 2] * 1e3,
        "p99_ms": ordered[int(len(ordered) * 0.99)] * 1e3,
    }


def test_serving_throughput(tmp_path_factory, bench_inventory):
    path = tmp_path_factory.mktemp("serve") / "inventory.sst"
    write_inventory(bench_inventory, path)
    probes = _probes(bench_inventory)

    with SSTableInventory(path, cache_blocks=256) as backend:
        config = ServerConfig(max_concurrency=N_CLIENTS, request_timeout_s=30.0)
        with ServerThread(InventoryService(backend), config) as handle:
            host, port = handle.address
            cold = _run_phase(host, port, probes)
            cold_cache = backend.cache_stats()
            warm = _run_phase(host, port, probes)
            multi = _multi_vs_singles(host, port, probes)

            with InventoryClient(host, port) as client:
                stats = client.stats()
            served = stats["server"]["counters"]["server.requests"]
            digest = stats["server"]["latency_ms"]

    issued = 2 * N_CLIENTS * REQUESTS_PER_CLIENT
    span_cost = _disabled_span_cost_s(20_000 if QUICK else 200_000)
    overhead = span_cost * SPANS_PER_REQUEST
    overhead_share = overhead / (warm["p50_ms"] / 1e3)
    lines = [
        "Serving throughput: closed-loop load against the query server",
        f"({N_CLIENTS} concurrent clients x {REQUESTS_PER_CLIENT} requests "
        f"per phase, summary/top-destinations/eta mix"
        f"{', QUICK mode' if QUICK else ''})",
        "",
        f"{'Phase':<14} {'qps':>9} {'p50':>9} {'p99':>9}",
        f"{'cold cache':<14} {cold['qps']:>9,.0f} {cold['p50_ms']:>7.2f}ms "
        f"{cold['p99_ms']:>7.2f}ms",
        f"{'warm cache':<14} {warm['qps']:>9,.0f} {warm['p50_ms']:>7.2f}ms "
        f"{warm['p99_ms']:>7.2f}ms",
        "",
        f"Server-side: {served:,} requests, "
        f"p50 {digest['p50_ms']:.2f}ms / p99 {digest['p99_ms']:.2f}ms, "
        f"mean {digest['mean_ms']:.2f}ms",
        f"Block cache after cold phase: {cold_cache}",
        "",
        f"Tracing disabled: {span_cost * 1e9:,.0f}ns per span() x "
        f"{SPANS_PER_REQUEST} spans/request = "
        f"{overhead * 1e6:.2f}us ({overhead_share:.3%} of warm p50)",
        "",
        f"multi_get vs {MULTI_BATCH} singles (warm, p50 of "
        f"{MULTI_ROUNDS} rounds):",
        f"{'  N x summary_at':<18} {multi['singles_p50_ms']:>8.2f}ms",
        f"{'  one multi_get':<18} {multi['multi_p50_ms']:>8.2f}ms  "
        f"({multi['singles_p50_ms'] / multi['multi_p50_ms']:.1f}x)",
    ]
    write_report(
        "serving_throughput",
        lines,
        data={
            "cold": cold,
            "warm": warm,
            "multi_get_vs_singles": multi,
            "server_latency_ms": digest,
            "disabled_span_cost_ns": span_cost * 1e9,
        },
    )

    # The stats request snapshots its own metrics mid-flight, so the
    # counters cover exactly the load phases plus the multi comparison
    # (each multi_get frame counts once; its warm-up pass included).
    multi_issued = (MULTI_ROUNDS + 1) * (MULTI_BATCH + 1)
    assert served == issued + multi_issued
    assert digest["count"] == issued + multi_issued
    assert cold["qps"] > 0 and warm["qps"] > 0
    assert cold["p50_ms"] <= cold["p99_ms"]
    assert warm["p50_ms"] <= warm["p99_ms"]
    # The no-op guarantee, as a serving-level bound: permanent
    # instrumentation costs under 3% of the warm-cache p50.
    assert overhead_share < 0.03, (
        f"disabled tracing would cost {overhead_share:.2%} of warm p50 "
        f"({span_cost * 1e9:.0f}ns per span)"
    )
    # One multi_get frame must beat the same lookups as N round trips —
    # the reason the client docs steer batch-heavy callers to it.
    assert multi["multi_p50_ms"] < multi["singles_p50_ms"], (
        f"multi_get p50 {multi['multi_p50_ms']:.2f}ms did not beat "
        f"{MULTI_BATCH} singles at {multi['singles_p50_ms']:.2f}ms"
    )
