"""Figure 5 — global average actual-time-to-destination per cell.

Paper: a global res-6 map coloured by mean ATA; cells near major
destination ports show short remaining times, mid-ocean cells long ones.

Reproduced: the same raster as a PPM plus the structural check that makes
the figure meaningful: along a voyage, mean ATA decreases as the vessel
approaches its destination — i.e. per-cell ATA is lower near ports than in
open water.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import RESULTS_DIR, write_report
from repro.apps import raster_from_inventory, write_ppm
from repro.geo import haversine_m
from repro.geo.polygon import BoundingBox
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet
from repro.world.ports import PORTS

WORLD = BoundingBox(-65.0, 72.0, -180.0, 180.0)


def _distance_to_nearest_port_km(lat: float, lon: float) -> float:
    return min(
        haversine_m(lat, lon, port.lat, port.lon) for port in PORTS
    ) / 1000.0


def test_fig5_global_ata(benchmark, bench_inventory):
    raster = benchmark.pedantic(
        lambda: raster_from_inventory(
            bench_inventory,
            lambda s: (s.mean_ata_s() or 0.0) / 3600.0,
            WORLD, width=360, height=170,
        ),
        rounds=1, iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    write_ppm(raster, RESULTS_DIR / "fig5_ata_hours.ppm", "ata")

    near_port_ata = []
    open_water_ata = []
    for key, summary in bench_inventory.items():
        if key.grouping_set is not GroupingSet.CELL:
            continue
        ata = summary.mean_ata_s()
        if ata is None:
            continue
        lat, lon = cell_to_latlng(key.cell)
        distance = _distance_to_nearest_port_km(lat, lon)
        if distance < 100.0:
            near_port_ata.append(ata / 3600.0)
        elif distance > 700.0:
            open_water_ata.append(ata / 3600.0)

    near = statistics.median(near_port_ata)
    far = statistics.median(open_water_ata)
    lines = [
        "Figure 5: global mean actual-time-to-arrival per cell",
        f"raster: fig5_ata_hours.ppm ({raster.coverage():.2%} coverage)",
        f"median ATA within 100 km of a port: {near:8.1f} h "
        f"(n={len(near_port_ata)})",
        f"median ATA >700 km from any port:   {far:8.1f} h "
        f"(n={len(open_water_ata)})",
        "",
        "Shape check: remaining time shrinks toward ports "
        f"({near:.1f} h < {far:.1f} h).",
    ]
    write_report("fig5_ata_map", lines)

    assert near < far
