"""Ablation — approximate vs exact statistics.

The methodology's compactness rests on replacing exact aggregates with
mergeable sketches (Table 3 calls the percentiles "approximate").  This
benchmark quantifies the trade on a realistic feature stream: accuracy
loss vs memory saved for HyperLogLog (distinct counts), t-digest and
Greenwald–Khanna (percentiles) and Space-Saving (top-N), each against its
exact counterpart.
"""

from __future__ import annotations

import pickle
import random
from collections import Counter

import numpy as np

from benchmarks.conftest import write_report
from repro.inventory.codec import encode
from repro.sketches import GKQuantiles, HyperLogLog, SpaceSaving, TDigest


def _size_bytes(sketch) -> int:
    return len(encode(sketch.to_dict()))


def test_ablation_sketch_accuracy_vs_exact(benchmark):
    rng = random.Random(2024)
    n = 150_000
    # A cell-like stream: lognormal speeds, zipfian destinations, vessel ids.
    speeds = [rng.lognormvariate(2.3, 0.45) for _ in range(n)]
    vessels = [rng.randrange(25_000) for _ in range(n)]
    destinations = [
        f"P{int(rng.paretovariate(1.15)) % 400:03d}" for _ in range(n)
    ]

    def build_all():
        hll = HyperLogLog(10)
        digest = TDigest(100.0)
        gk = GKQuantiles(0.01)
        topn = SpaceSaving(32)
        for speed, vessel, destination in zip(speeds, vessels, destinations):
            hll.update(vessel)
            digest.update(speed)
            gk.update(speed)
            topn.update(destination)
        return hll, digest, gk, topn

    hll, digest, gk, topn = benchmark.pedantic(build_all, rounds=1,
                                               iterations=1)

    exact_distinct = len(set(vessels))
    hll_err = abs(hll.cardinality() - exact_distinct) / exact_distinct
    exact_sizes = {
        "set(vessels)": len(pickle.dumps(set(vessels))),
        "sorted(speeds)": len(pickle.dumps(speeds)),
        "Counter(dest)": len(pickle.dumps(Counter(destinations))),
    }

    quantile_rows = []
    for q in (0.1, 0.5, 0.9):
        exact = float(np.quantile(speeds, q))
        td_err = abs(digest.quantile(q) - exact) / exact
        gk_err = abs(gk.quantile(q) - exact) / exact
        quantile_rows.append((q, exact, td_err, gk_err))

    exact_top = [v for v, _ in Counter(destinations).most_common(5)]
    sketch_top = [item.value for item in topn.top(5)]
    top_overlap = len(set(exact_top) & set(sketch_top)) / 5.0

    lines = [
        "Sketch ablation: accuracy and size vs exact aggregation "
        f"(stream of {n:,} records)",
        "",
        f"{'Statistic':<26} {'Exact':>12} {'Sketch':>12} {'RelErr':>8} "
        f"{'SketchB':>9} {'ExactB':>10}",
        f"{'distinct vessels (HLL p=10)':<26} {exact_distinct:>12,} "
        f"{hll.cardinality():>12,} {hll_err:>7.2%} {_size_bytes(hll):>9,} "
        f"{exact_sizes['set(vessels)']:>10,}",
    ]
    for q, exact, td_err, gk_err in quantile_rows:
        lines.append(
            f"{'speed p%d (t-digest)' % int(q*100):<26} {exact:>12.2f} "
            f"{digest.quantile(q):>12.2f} {td_err:>7.2%} "
            f"{_size_bytes(digest):>9,} {exact_sizes['sorted(speeds)']:>10,}"
        )
        lines.append(
            f"{'speed p%d (GK eps=.01)' % int(q*100):<26} {exact:>12.2f} "
            f"{gk.quantile(q):>12.2f} {gk_err:>7.2%} {_size_bytes(gk):>9,}"
        )
    lines.append(
        f"{'top-5 destinations (SS)':<26} {'—':>12} {'—':>12} "
        f"{1-top_overlap:>7.2%} {_size_bytes(topn):>9,} "
        f"{exact_sizes['Counter(dest)']:>10,}"
    )
    lines.append("")
    compression = exact_sizes["sorted(speeds)"] / _size_bytes(digest)
    lines.append(
        f"Shape checks: every sketch within a few percent of exact at "
        f"{compression:,.0f}x+ less state — the compactness Table 3 buys."
    )
    write_report("ablation_sketches", lines)

    assert hll_err < 0.08
    assert all(td_err < 0.03 for _, _, td_err, _ in quantile_rows)
    assert all(gk_err < 0.05 for *_ignore, gk_err in quantile_rows)
    assert top_overlap >= 0.8
    assert _size_bytes(hll) < exact_sizes["set(vessels)"] / 25
    assert _size_bytes(digest) < exact_sizes["sorted(speeds)"] / 100
