"""Table 1 — Data used for the methodology.

Paper:  commercial fleet positional reports  2.7 B rows / 60 GB
        vessel static information            60 k rows / few MB
        port information                     20 k rows / few MB

Reproduced shape: three inputs of the same kinds with the same ordering of
magnitudes (positions ≫ static ≫ ports), at laptop scale.  The benchmark
times full archive generation.
"""

from __future__ import annotations

import pickle

from benchmarks.conftest import BENCH_CONFIG, write_report
from repro import generate_dataset, WorldConfig


def _approx_size_mb(objects) -> float:
    return len(pickle.dumps(objects, protocol=pickle.HIGHEST_PROTOCOL)) / 1e6


def test_table1_dataset_description(benchmark, bench_world):
    small = WorldConfig(
        seed=BENCH_CONFIG.seed, n_vessels=8, days=4.0, report_interval_s=900.0
    )
    benchmark.pedantic(lambda: generate_dataset(small), rounds=3, iterations=1)

    positions_mb = _approx_size_mb(bench_world.positions[:20_000]) * (
        len(bench_world.positions) / 20_000
    )
    static_mb = _approx_size_mb(bench_world.fleet)
    ports_mb = _approx_size_mb(bench_world.ports)

    rows = [
        ("Commercial fleet positional reports",
         len(bench_world.positions), f"{positions_mb:8.1f} MB"),
        ("Vessel static information",
         len(bench_world.fleet), f"{static_mb:8.3f} MB"),
        ("Port information",
         len(bench_world.ports), f"{ports_mb:8.3f} MB"),
    ]
    lines = [
        "Table 1: Data used for methodology (paper: 2.7B/60k/20k rows)",
        f"{'Description':<40} {'Rows':>10}  {'Size':>12}",
    ]
    for description, count, size in rows:
        lines.append(f"{description:<40} {count:>10,}  {size:>12}")
    lines.append("")
    lines.append(
        "Shape check: positions >> static >= ports — "
        f"{len(bench_world.positions):,} >> {len(bench_world.fleet)} >= "
        f"{len(bench_world.ports)}"
    )
    write_report("table1_dataset", lines)

    assert len(bench_world.positions) > 100 * len(bench_world.fleet)
    assert positions_mb > 100 * static_mb
