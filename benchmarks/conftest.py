"""Shared benchmark fixtures: one medium-scale world and its inventories.

Benchmark scale note (applies to every table/figure): the paper processed
2.7 B reports from 60 k vessels over a year on a 128-vcore Spark cluster;
this harness runs the same pipeline on a synthetic world scaled to a
laptop (~10⁵ reports, tens of vessels, weeks).  Absolute values therefore
differ by construction; each benchmark reports the *shape* the paper
claims (who wins, by what order, which direction the trend runs) and
EXPERIMENTS.md records paper-vs-measured side by side.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset

#: Where benchmark tables are written (versioned artefacts of a run).
RESULTS_DIR = Path(__file__).parent / "results"

#: Quick mode (``REPRO_BENCH_QUICK=1``): CI's benchmark-smoke job runs
#: every benchmark with reduced *measurement* effort (fewer requests per
#: client in the serving benchmark, and so on) so the scripts cannot
#: silently rot without paying the full measurement cost.  The shared
#: world itself stays at full scale: every shape assertion (route-level
#: ETA beating the baseline, raster coverage, course coherence) is
#: calibrated against this world, and shrinking it along any axis —
#: fewer vessels, fewer days, sparser reports — breaks a different one.
#: Timing numbers from quick runs are not comparable to full runs.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: The shared benchmark scale.
BENCH_CONFIG = WorldConfig(
    seed=2022, n_vessels=48, days=24.0, report_interval_s=600.0
)


def write_report(
    name: str, lines: list[str], data: dict | None = None
) -> None:
    """Print a benchmark's paper-style table and persist it under
    benchmarks/results/ — the human table as ``<name>.txt`` and a
    machine-readable twin as ``<name>.json`` (CI's benchmark-smoke job
    uploads the whole directory as a build artifact, so runs can be
    diffed without parsing tables).

    ``data`` adds structured measurements to the JSON payload; the
    rendered lines ride along either way, plus whether the run was a
    quick-mode (CI smoke) pass — quick timings are not comparable to
    full runs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload: dict = {"benchmark": name, "quick_mode": QUICK, "lines": lines}
    if data is not None:
        payload["data"] = data
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def bench_world():
    """The shared synthetic archive (~10⁵ reports)."""
    return generate_dataset(BENCH_CONFIG)


@pytest.fixture(scope="session")
def bench_result(bench_world):
    """Pipeline result at the paper's primary resolution (6)."""
    return build_inventory(
        bench_world.positions,
        bench_world.fleet,
        bench_world.ports,
        PipelineConfig(resolution=6),
    )


@pytest.fixture(scope="session")
def bench_inventory(bench_result):
    return bench_result.inventory


@pytest.fixture(scope="session")
def bench_result_res7(bench_world):
    """Pipeline result at the paper's secondary resolution (7)."""
    return build_inventory(
        bench_world.positions,
        bench_world.fleet,
        bench_world.ports,
        PipelineConfig(resolution=7),
    )
