"""Live-ingest benchmark — what the WAL's durability dial costs.

The write path's throughput is fsync-bound by design: with
``sync_every=1`` every ingest batch is durable before it is acked, so
records/s is the price of honesty.  The two relaxations the serve CLI
exposes are measured against it on the identical record stream:

- ``sync_every=N`` — ack batches immediately, fsync every N entries
  (at most N−1 acked-but-volatile records on power loss);
- ``sync_interval_s=S`` — additionally bound the exposure in time.

The shape assertions are counter-based, not timing-based (CI machines
are noisy): the batched policies must issue strictly fewer fsyncs than
the durable one for the same appends, and every policy must end fully
durable after the final explicit sync.

The second half measures what a reader pays while the memtable flushes:
point reads are sampled concurrently with a flush + compaction cycle,
and — the snapshot-isolation contract — the answers must be identical
before, during and after.

The third half is the *stall profile*: the same stream is ingested with
watermark flushes and tier compactions enabled, once with maintenance
inline (the pre-background write path: every Nth ingest pays the table
write) and once on the background scheduler.  Per-batch ingest latency
is bucketed by whether maintenance was running at the time; the
background mode's p99 while maintenance is busy must stay within 2x its
idle p99 (plus a CI noise floor) — the point of moving the work off the
hot path — its throughput must not regress against the inline run, and
both modes must end byte-identical.
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import QUICK, write_report
from repro.engine.metrics import CounterSet
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet
from repro.inventory.live import LiveInventory
from repro.inventory.memtable import IngestRecord
from repro.inventory.wal import COUNTER_FSYNCS

RESOLUTION = 6
N_RECORDS = 2_000 if QUICK else 20_000
BATCH = 64

#: (label, LiveInventory kwargs) — the three fsync policies under test.
POLICIES = [
    ("sync_every=1 (durable acks)", {"sync_every": 1}),
    ("sync_every=256 (batched)", {"sync_every": 256}),
    ("sync_interval=50ms", {"sync_every": 10**9, "sync_interval_s": 0.05}),
]


def _records(n: int) -> list[IngestRecord]:
    """A deterministic stream over a few dozen cells (realistic keys,
    no RNG: every policy ingests byte-identical records)."""
    out = []
    for i in range(n):
        on_trip = i % 3 != 2
        out.append(
            IngestRecord(
                mmsi=200_000_000 + (i % 97),
                ts=1_700_000_000.0 + i * 10.0,
                lat=1.0 + (i % 40) * 0.12,
                lon=103.0 + (i % 25) * 0.15,
                sog=6.0 + (i % 9),
                cog=float((i * 41) % 360),
                vessel_type="cargo" if i % 2 else "tanker",
                origin="SGSIN" if on_trip else None,
                destination="NLRTM" if on_trip else None,
                trip_id=f"t{i % 11}" if on_trip else None,
            )
        )
    return out


def _ingest_run(directory, records, **kwargs):
    """Ingest the stream in batches; return records/s + fsync count."""
    counters = CounterSet()
    with LiveInventory(
        directory,
        resolution=RESOLUTION,
        flush_records=0,
        tier_fanout=0,
        counters=counters,
        **kwargs,
    ) as inventory:
        durable_acks = 0
        batches = 0
        started = time.perf_counter()
        for at in range(0, len(records), BATCH):
            ack = inventory.ingest(records[at : at + BATCH])
            durable_acks += ack.durable
            batches += 1
        wall = time.perf_counter() - started
        inventory.sync()  # every policy ends with nothing volatile
    return {
        "records_per_s": len(records) / wall,
        "wall_s": wall,
        "fsyncs": counters.value(COUNTER_FSYNCS),
        "durable_ack_share": durable_acks / batches,
    }


def _probe_keys(inventory, limit=32):
    ranked = sorted(
        (
            (key, summary.records)
            for key, summary in inventory.items()
            if key.grouping_set is GroupingSet.CELL
        ),
        key=lambda pair: pair[1],
        reverse=True,
    )[:limit]
    return [cell_to_latlng(key.cell) for key, _ in ranked]


def _sample_reads(inventory, probes, stop, latencies, answers):
    """Read the probe cells round-robin until told to stop, recording
    per-read latency and the answers (which must never change)."""
    i = 0
    while not stop.is_set():
        lat, lon = probes[i % len(probes)]
        started = time.perf_counter()
        summary = inventory.summary_at(lat, lon)
        latencies.append(time.perf_counter() - started)
        answers.append(None if summary is None else summary.records)
        i += 1


def _reads_during_flush(directory, records):
    """Point-read latency while the memtable flushes and compacts."""
    with LiveInventory(
        directory,
        resolution=RESOLUTION,
        flush_records=0,
        tier_fanout=0,
    ) as inventory:
        half = len(records) // 2
        inventory.ingest(records[:half])
        inventory.flush()  # one table on disk, so compaction has work
        inventory.ingest(records[half:])
        probes = _probe_keys(inventory)
        baseline = [inventory.summary_at(lat, lon).records for lat, lon in probes]

        steady: list[float] = []
        answers: list[int | None] = []
        stop = threading.Event()
        reader = threading.Thread(
            target=_sample_reads, args=(inventory, probes, stop, steady, answers)
        )
        reader.start()
        time.sleep(0.05 if QUICK else 0.2)  # steady-state sample
        steady_count = len(steady)
        inventory.flush()
        inventory.compact()
        stop.set()
        reader.join()

    during = steady[steady_count:]
    # Snapshot isolation: every sampled answer equals the baseline for
    # its probe — the flush/compaction swap changed nothing a reader saw.
    for i, got in enumerate(answers):
        assert got == baseline[i % len(probes)], (
            f"read answer changed across flush: {got} != {baseline[i % len(probes)]}"
        )
    steady_slice = sorted(steady[:steady_count]) or [0.0]
    during_slice = sorted(during) or steady_slice
    return {
        "steady_p50_us": steady_slice[len(steady_slice) // 2] * 1e6,
        "during_p50_us": during_slice[len(during_slice) // 2] * 1e6,
        "during_max_us": during_slice[-1] * 1e6,
        "samples_steady": len(steady_slice),
        "samples_during": len(during_slice),
    }


def _p99(sorted_samples: list[float]) -> float:
    if not sorted_samples:
        return 0.0
    return sorted_samples[min(len(sorted_samples) - 1, int(len(sorted_samples) * 0.99))]


def _stall_profile(directory, records):
    """Per-batch ingest latency with maintenance busy vs idle, inline
    vs background, on the identical stream with watermark flushes and
    tier compactions enabled.  Returns one result dict per mode; both
    runs' final merged states must be byte-identical (asserted here)."""
    flush_records = max(256, len(records) // 8)
    out = {}
    final_items = {}
    for mode, background in (("inline", False), ("background", True)):
        counters = CounterSet()
        latencies: list[float] = []
        busy: list[bool] = []
        with LiveInventory(
            directory / mode,
            resolution=RESOLUTION,
            sync_every=256,
            flush_records=flush_records,
            tier_fanout=2,
            tier_base_bytes=64 * 1024,
            background_maintenance=background,
            # The profile measures what an ingest batch pays while the
            # worker runs, NOT the (deliberate, bounded) valve wait — so
            # give the valve enough headroom that it never arms here.
            max_frozen_memtables=64,
            counters=counters,
        ) as inventory:
            scheduler = inventory._scheduler
            started = time.perf_counter()
            for at in range(0, len(records), BATCH):
                batch_started = time.perf_counter()
                ack = inventory.ingest(records[at : at + BATCH])
                latencies.append(time.perf_counter() - batch_started)
                # Inline: the sealing batch itself pays the flush (the
                # old hot-path stall).  Background: a batch is "busy"
                # when it ran while maintenance was queued or running.
                busy.append(
                    ack.flushed if not background else scheduler.queue_depth() > 0
                )
            wall = time.perf_counter() - started
            inventory.wait_maintenance()
            stats = inventory.ingest_stats()
            final_items[mode] = {
                key: summary.to_dict() for key, summary in inventory.items()
            }
        idle = sorted(l for l, b in zip(latencies, busy) if not b)
        during = sorted(l for l, b in zip(latencies, busy) if b)
        out[mode] = {
            "records_per_s": len(records) / wall,
            "wall_s": wall,
            "idle_p99_us": _p99(idle) * 1e6,
            "during_p99_us": _p99(during) * 1e6,
            "busy_batches": len(during),
            "idle_batches": len(idle),
            "flushes": stats["flushes"],
            "compactions": stats["compactions"],
            "backpressure_waits": stats["backpressure_waits"],
            "backpressure_timeouts": stats["backpressure_timeouts"],
        }
    # Byte-identical reads: backgrounding the maintenance changed when
    # tables were written, never what any query answers.
    assert final_items["inline"] == final_items["background"], (
        "background maintenance changed the merged state"
    )
    return out


def test_ingest_throughput(tmp_path_factory):
    base = tmp_path_factory.mktemp("ingest")
    records = _records(N_RECORDS)

    runs = []
    for label, kwargs in POLICIES:
        result = _ingest_run(base / label.split()[0].replace("=", "-"), records, **kwargs)
        runs.append((label, result))

    durable = runs[0][1]
    for label, result in runs[1:]:
        # The whole point of relaxing the policy: strictly fewer fsyncs
        # for the same appends (counter-based — immune to CI noise).
        assert result["fsyncs"] < durable["fsyncs"], (
            f"{label} issued {result['fsyncs']} fsyncs >= "
            f"durable policy's {durable['fsyncs']}"
        )
    assert durable["durable_ack_share"] == 1.0

    flush = _reads_during_flush(base / "reads", records)

    stall = _stall_profile(base / "stall", records)
    bg, inline = stall["background"], stall["inline"]
    # The tentpole claim: with maintenance off the hot path, an ingest
    # batch that lands while a flush/compaction runs pays at most 2x the
    # idle p99 — it shares the interpreter with the worker but never
    # pays the table write itself.  The floor is half the inline mode's
    # busy p99 (the stall being eliminated): on a machine where a flush
    # costs 500ms, "within 2x of a 1ms idle batch" would measure GIL
    # scheduling noise, not the write path.  Per this module's
    # convention, timing bounds are enforced only in the full run: QUICK
    # mode has so few busy batches that its p99 is one sample of shared-
    # runner disk jitter.  QUICK keeps the structural assertions below.
    if not QUICK and bg["busy_batches"]:
        floor = max(5_000.0, 0.5 * inline["during_p99_us"])
        assert bg["during_p99_us"] <= 2 * bg["idle_p99_us"] + floor, (
            f"background ingest stalled: p99 {bg['during_p99_us']:.0f}us "
            f"during maintenance vs {bg['idle_p99_us']:.0f}us idle "
            f"(inline flush stall: {inline['during_p99_us']:.0f}us)"
        )
        # And it must not cost throughput against the inline write path
        # (0.7 factor: machines are noisy, the direction is what matters).
        assert bg["records_per_s"] >= 0.7 * inline["records_per_s"], (
            "background maintenance lost throughput vs the inline write path"
        )
    # The valve never armed (headroom was configured), so no batch's
    # latency above is a deliberate backpressure wait.
    assert bg["backpressure_waits"] == 0 and bg["backpressure_timeouts"] == 0
    # Both modes really exercised the maintenance pipeline.
    assert bg["flushes"] >= 1 and inline["flushes"] >= 1
    assert bg["compactions"] >= 1 and inline["compactions"] >= 1

    lines = [
        "Live-ingest throughput: the WAL durability dial "
        f"({N_RECORDS:,} records, batches of {BATCH}"
        f"{', QUICK mode' if QUICK else ''})",
        "",
        f"{'Policy':<28} {'records/s':>12} {'fsyncs':>8} {'durable acks':>13}",
    ]
    for label, result in runs:
        lines.append(
            f"{label:<28} {result['records_per_s']:>12,.0f} "
            f"{result['fsyncs']:>8,} {result['durable_ack_share']:>12.0%}"
        )
    lines += [
        "",
        "Point reads concurrent with flush + compaction (snapshot "
        "isolation held: every answer identical across the swap):",
        f"  steady-state p50 {flush['steady_p50_us']:>8.1f}us  "
        f"({flush['samples_steady']} samples)",
        f"  during flush p50 {flush['during_p50_us']:>8.1f}us  "
        f"max {flush['during_max_us']:,.1f}us  "
        f"({flush['samples_during']} samples)",
        "",
        "Stall profile: per-batch ingest latency with watermark flushes "
        "+ tier compactions (byte-identical final state asserted):",
        f"{'Maintenance':<14} {'records/s':>12} {'idle p99':>11} "
        f"{'busy p99':>11} {'busy/idle batches':>18} {'flushes':>8}",
    ]
    for mode in ("inline", "background"):
        result = stall[mode]
        lines.append(
            f"{mode:<14} {result['records_per_s']:>12,.0f} "
            f"{result['idle_p99_us']:>9,.0f}us {result['during_p99_us']:>9,.0f}us "
            f"{result['busy_batches']:>8}/{result['idle_batches']:<9} "
            f"{result['flushes']:>8}"
        )
    write_report(
        "ingest_throughput",
        lines,
        data={
            "records": N_RECORDS,
            "batch": BATCH,
            "policies": {label: result for label, result in runs},
            "reads_during_flush": flush,
            "stall_profile": stall,
        },
    )
