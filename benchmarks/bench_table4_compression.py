"""Table 4 — Coverage and compression.

Paper (2.7 B records, a full year, 60 k vessels):
    res 6:  7.30 M cells   compression 99.73 %   utilization 51.69 %
    res 7: 42.47 M cells   compression 98.44 %   utilization 42.96 %

Compression = 1 − cells/records, so it is a *density* statement: the paper
averages ~370 records per res-6 cell.  A laptop-scale world cannot reach
that absolute density, so this benchmark reproduces the two shapes that
make Table 4 meaningful:

  1. at any fixed dataset, the coarser resolution compresses more and the
     finer one uses a smaller fraction of available cells ("gaps appear");
  2. compression grows monotonically with data volume — the trajectory
     that reaches 99.7 % at the paper's 2.7 B-record scale.

The dedicated workload is reporting-dense (180 s cadence) so per-cell
revisit counts are meaningful at 10⁵ records.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.hexgrid import cells_count, grid_disk


@pytest.fixture(scope="module")
def dense_world():
    return generate_dataset(
        WorldConfig(seed=44, n_vessels=22, days=24.0, report_interval_s=120.0)
    )


def _corridor_utilization(cells: set[int]) -> float:
    corridor: set[int] = set()
    for cell in cells:
        corridor.update(grid_disk(cell, 1))
    return len(cells) / len(corridor) if corridor else 0.0


def test_table4_compression_and_coverage(benchmark, dense_world):
    results = {}
    for resolution in (6, 7):
        results[resolution] = build_inventory(
            dense_world.positions, dense_world.fleet, dense_world.ports,
            PipelineConfig(resolution=resolution),
        )

    rows = []
    for resolution in (6, 7):
        result = results[resolution]
        records = result.funnel["with_trip_semantics"]
        cells = result.inventory.cells()
        compression = 1.0 - len(cells) / records
        global_util = len(cells) / cells_count(resolution)
        corridor_util = _corridor_utilization(cells)
        rows.append(
            (resolution, len(cells), records, compression, global_util,
             corridor_util)
        )

    def query_metrics():
        cells = results[6].inventory.cells()
        return len(cells), _corridor_utilization(cells)

    benchmark(query_metrics)

    # Scale sweep: compression grows with data volume (prefixes of the
    # archive at 25/50/100 %).
    sweep = []
    positions = dense_world.positions
    for share in (0.25, 0.5, 1.0):
        subset = positions[: int(len(positions) * share)]
        result = build_inventory(
            subset, dense_world.fleet, dense_world.ports,
            PipelineConfig(resolution=6),
        )
        records = result.funnel["with_trip_semantics"]
        cells = result.funnel["inventory_cells"]
        if records:
            sweep.append((share, records, cells, 1.0 - cells / records))

    lines = [
        "Table 4: Coverage and compression "
        "(paper: res6 99.73%/51.69%, res7 98.44%/42.96%)",
        f"{'Res':>4} {'#Cells':>9} {'Records':>9} {'Compression':>12} "
        f"{'GlobalUtil':>11} {'CorridorUtil':>13}",
    ]
    for resolution, n_cells, records, compression, glob, corr in rows:
        lines.append(
            f"{resolution:>4} {n_cells:>9,} {records:>9,} {compression:>11.2%} "
            f"{glob:>10.4%} {corr:>12.2%}"
        )
    lines.append("")
    lines.append("Compression vs data volume (res 6) — the paper's 99.7% is "
                 "this curve's limit at 2.7B records:")
    lines.append(f"{'Share':>7} {'Records':>9} {'Cells':>8} {'Compression':>12}")
    for share, records, cells, compression in sweep:
        lines.append(
            f"{share:>6.0%} {records:>9,} {cells:>8,} {compression:>11.2%}"
        )
    res6, res7 = rows
    lines.append("")
    lines.append(
        f"Shape checks: compression res6 {res6[3]:.2%} > res7 {res7[3]:.2%}; "
        f"utilization drops with resolution (corridor {res6[5]:.1%} > "
        f"{res7[5]:.1%}); compression monotone in volume."
    )
    write_report("table4_compression", lines)

    assert res6[3] > res7[3] > 0.0           # coarser compresses more
    assert res6[3] > 0.80                    # high compression at res 6
    assert res6[1] < res7[1]                 # finer resolution → more cells
    assert res6[5] > res7[5]                 # utilization drops with res
    compressions = [compression for *_rest, compression in sweep]
    assert compressions == sorted(compressions)  # grows with volume
