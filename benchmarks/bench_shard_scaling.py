"""Shard-scaling benchmark — the sharded serving tier's capacity claim,
measured, plus the price of a failover.

**Methodology (single-machine honesty).**  This harness runs on one
machine, so co-running N shard *processes* would just time-slice one
CPU and show nothing.  Capacity is therefore measured the way it
accrues in a real deployment — per node — and aggregated:

- the combined inventory is split into N shard tables (the same
  ``publish_split`` the router serves from);
- each shard server is measured **in isolation** with the closed-loop
  workload restricted to the keys that shard owns (one shard ≙ one
  node, so its solo throughput is that node's capacity);
- aggregate qps at N shards = the sum over its shards — the cluster's
  capacity when every shard runs on its own node, the deployment the
  placement manifest describes.

Scaling is near-linear to the extent the split is balanced and a shard
of 1/N of the data is no slower per request than the whole — both
properties this benchmark (and the sharding test suites) pin.

**Failover price.**  Against a 4-shard router with a replica per shard,
the p99 of point lookups on keys owned by one shard is measured through
the router before and after killing that shard's primary.  The trip
wire converts the primary's death into a bounded number of fast
connection failures, after which the replica serves every request — so
the after-kill p99 on *affected* keys must stay under 2x the baseline,
and unaffected shards must not regress (asserted in full runs; quick
CI runs only smoke the path).
"""

from __future__ import annotations

import contextlib
import threading
import time

from benchmarks.conftest import QUICK, write_report
from repro.hexgrid import cell_to_latlng
from repro.inventory import SSTableInventory, write_inventory
from repro.inventory.keys import GroupingSet
from repro.server import (
    InventoryClient,
    InventoryService,
    ServerConfig,
    ServerThread,
    ShardedInventory,
)
from repro.server.sharding import split_inventory

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 30 if QUICK else 150
SHARD_COUNTS = (1, 2, 4)
#: Point lookups per key-set in each failover measurement pass.
FAILOVER_REQUESTS = 60 if QUICK else 400


def _probes(inventory, limit=96):
    """(cell, lat, lon) probes over the busiest plain cells."""
    ranked = sorted(
        (
            (key, summary)
            for key, summary in inventory.items()
            if key.grouping_set is GroupingSet.CELL
        ),
        key=lambda pair: pair[1].records,
        reverse=True,
    )[:limit]
    out = []
    for key, _ in ranked:
        lat, lon = cell_to_latlng(key.cell)
        out.append((key.cell, lat, lon))
    return out


def _owned(probes, placement, index):
    """The probe subset the ring assigns to shard ``index``."""
    ring = placement.ring()
    return [
        (lat, lon) for cell, lat, lon in probes if ring.primary(cell) == index
    ]


def _client_loop(host, port, probes, offset, latencies, failures):
    """One closed-loop client: next request only after the last answer."""
    requests = ("summary_at", "top_destinations_at", "eta")
    with InventoryClient(host, port) as client:
        for i in range(REQUESTS_PER_CLIENT):
            lat, lon = probes[(offset + i) % len(probes)]
            kind = requests[(offset + i) % len(requests)]
            started = time.perf_counter()
            try:
                if kind == "summary_at":
                    client.summary_at(lat, lon)
                elif kind == "top_destinations_at":
                    client.top_destinations_at(lat, lon)
                else:
                    client.eta(lat, lon)
            except Exception as exc:  # noqa: BLE001 - tallied, then asserted
                failures.append(exc)
                return
            latencies.append(time.perf_counter() - started)


def _measure_capacity(host, port, probes):
    """Warm closed-loop qps of one server over its own key subset."""
    warm_failures: list[Exception] = []
    _client_loop(host, port, probes, 0, [], warm_failures)  # warm pass
    assert not warm_failures, f"warm-up failures: {warm_failures[:3]}"
    latencies: list[float] = []
    failures: list[Exception] = []
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, probes, worker * 7, latencies, failures),
        )
        for worker in range(N_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    assert not failures, f"client failures: {failures[:3]}"
    assert len(latencies) == N_CLIENTS * REQUESTS_PER_CLIENT
    return len(latencies) / wall


def _p99_of_lookups(client, probes, n):
    latencies = []
    for i in range(n):
        lat, lon = probes[i % len(probes)]
        started = time.perf_counter()
        client.summary_at(lat, lon)
        latencies.append(time.perf_counter() - started)
    latencies.sort()
    return latencies[int(len(latencies) * 0.99)] * 1e3


def test_shard_scaling(tmp_path_factory, bench_inventory):
    tmp = tmp_path_factory.mktemp("shards")
    source = tmp / "inventory.sst"
    write_inventory(bench_inventory, source)
    probes = _probes(bench_inventory)

    # -- capacity: each shard measured in isolation, summed per N ----------
    capacity: dict[int, float] = {}
    balance: dict[int, list[int]] = {}
    for version, n_shards in enumerate(SHARD_COUNTS, start=1):
        # Distinct versions keep the three generations of shard tables
        # side by side under version-tagged names.
        placement = split_inventory(
            source, resolution=6, shards=n_shards, version=version
        )
        balance[n_shards] = [spec.entries for spec in placement.shards]
        total = 0.0
        for index, spec in enumerate(placement.shards):
            owned = _owned(probes, placement, index)
            assert owned, f"shard {spec.name} owns none of the busy probes"
            with SSTableInventory(
                tmp / spec.table, resolution=6, cache_blocks=256
            ) as backend:
                config = ServerConfig(
                    max_concurrency=N_CLIENTS, request_timeout_s=30.0
                )
                with ServerThread(InventoryService(backend), config) as handle:
                    total += _measure_capacity(*handle.address, owned)
        capacity[n_shards] = total

    # -- failover price: p99 through the router, before and after ---------
    placement = split_inventory(source, resolution=6, shards=4, version=4)
    with contextlib.ExitStack() as stack:
        addresses = {}
        primaries = {}
        for spec in placement.shards:
            servers = []
            for _ in range(2):  # primary + replica over the same table
                backend = stack.enter_context(
                    SSTableInventory(tmp / spec.table, resolution=6)
                )
                servers.append(
                    stack.enter_context(
                        ServerThread(InventoryService(backend), ServerConfig())
                    )
                )
            primaries[spec.name] = servers[0]
            addresses[spec.name] = [s.address for s in servers]
        sharded = stack.enter_context(
            ShardedInventory(
                placement,
                addresses,
                timeout=5.0,
                connect_timeout=0.5,
                failure_threshold=3,
            )
        )
        front = stack.enter_context(
            ServerThread(
                InventoryService(sharded),
                ServerConfig(max_concurrency=N_CLIENTS, request_timeout_s=30.0),
            )
        )
        victim = placement.shards[0]
        affected = _owned(probes, placement, 0)
        unaffected = [
            pair
            for index in range(1, len(placement.shards))
            for pair in _owned(probes, placement, index)
        ]
        with InventoryClient(*front.address) as client:
            _p99_of_lookups(client, affected, len(affected))  # warm
            _p99_of_lookups(client, unaffected, len(unaffected))
            base_affected = _p99_of_lookups(client, affected, FAILOVER_REQUESTS)
            base_other = _p99_of_lookups(client, unaffected, FAILOVER_REQUESTS)
            primaries[victim.name].stop()
            # The measured pass includes the trip-wire window: the first
            # few lookups pay the fast connection failure, then the
            # replica serves — that cost is the price being reported.
            fail_affected = _p99_of_lookups(client, affected, FAILOVER_REQUESTS)
            fail_other = _p99_of_lookups(client, unaffected, FAILOVER_REQUESTS)
        counters = sharded.counters.as_dict()

    speedups = {n: capacity[n] / capacity[1] for n in SHARD_COUNTS}
    lines = [
        "Shard scaling: per-shard capacity in isolation, summed per N",
        f"(one shard = one node; {N_CLIENTS} closed-loop clients x "
        f"{REQUESTS_PER_CLIENT} requests per shard, warm"
        f"{', QUICK mode' if QUICK else ''})",
        "",
        f"{'Shards':<8} {'aggregate qps':>14} {'vs 1 shard':>11} "
        f"{'entries per shard':>26}",
        *(
            f"{n:<8} {capacity[n]:>14,.0f} {speedups[n]:>10.2f}x "
            f"{str(balance[n]):>26}"
            for n in SHARD_COUNTS
        ),
        "",
        "Failover price (4 shards, primary+replica, p99 through the "
        "router over",
        f"{FAILOVER_REQUESTS} point lookups per key-set; failure "
        "threshold 3):",
        f"{'':<2}{'key set':<22} {'baseline':>10} {'primary killed':>15}",
        f"{'':<2}{'affected shard':<22} {base_affected:>8.2f}ms "
        f"{fail_affected:>13.2f}ms",
        f"{'':<2}{'unaffected shards':<22} {base_other:>8.2f}ms "
        f"{fail_other:>13.2f}ms",
        "",
        f"Router counters: {counters}",
    ]
    write_report(
        "shard_scaling",
        lines,
        data={
            "aggregate_qps": {str(n): capacity[n] for n in SHARD_COUNTS},
            "speedup_vs_one_shard": {
                str(n): speedups[n] for n in SHARD_COUNTS
            },
            "entries_per_shard": {
                str(n): balance[n] for n in SHARD_COUNTS
            },
            "failover_p99_ms": {
                "affected_baseline": base_affected,
                "affected_after_kill": fail_affected,
                "unaffected_baseline": base_other,
                "unaffected_after_kill": fail_other,
            },
            "router_counters": counters,
        },
    )

    # Shape assertions (every run): the failover actually happened and
    # was transparent — zero client-visible errors, replica answered.
    assert counters.get("router.failover", 0) > 0
    assert counters.get("router.unavailable", 0) == 0
    assert all(capacity[n] > 0 for n in SHARD_COUNTS)
    if not QUICK:
        # Near-linear capacity: 4 shards buy at least 2.5x one shard.
        assert speedups[4] >= 2.5, (
            f"4-shard aggregate only {speedups[4]:.2f}x one shard "
            f"({capacity[4]:,.0f} vs {capacity[1]:,.0f} qps)"
        )
        # Failover taxes only the affected shard, and boundedly: under
        # 2x the baseline p99 on its keys.
        assert fail_affected < 2 * base_affected, (
            f"failover p99 {fail_affected:.2f}ms exceeds 2x baseline "
            f"{base_affected:.2f}ms on affected keys"
        )
