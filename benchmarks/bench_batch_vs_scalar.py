"""Columnar funnel vs the scalar reference — the batch layer's win, measured.

Runs the identical world through ``build_inventory`` twice, once with
``vectorized=False`` (the scalar per-record funnel, kept as the readable
reference implementation) and once with ``vectorized=True`` (the
default: columnar :class:`~repro.pipeline.batches.RecordBatch` kernels),
and compares the per-stage ``pipeline.*`` spans.  The two builds are
asserted byte-identical first — a speedup over a *different* answer
would be meaningless — then the aggregate stage, the funnel's dominant
cost, must clear a conservative floor.

The floor is intentionally far below the measured gap: the scalar path
shares this PR's sketch/hashing optimisations (deferred t-digest merge
compression, memoised stable hashing, inlined HLL updates), so the
in-run ratio understates the win over the pre-batch baseline.  Against
the seed revision's scalar funnel the aggregate stage measured ~14.9 s
on this world; the batched path lands at ~4.5 s (≥3x) — see
``results/batch_vs_scalar.json`` for the numbers of record.

The same contract covers ingest: batch NMEA decode
(:func:`repro.ais.batch.decode_lines`) against the streaming codec over
an identical sentence block, message-for-message equal and faster.
"""

from __future__ import annotations

import gc
import time

from benchmarks.conftest import QUICK, write_report
from repro import PipelineConfig, build_inventory
from repro.ais import decode_sentences, encode_message
from repro.ais.batch import decode_lines
from repro.ais.messages import PositionReport
from repro.inventory.codec import encode
from repro.obs import RingBufferSink, configure, disable

#: Funnel stages reported span-by-span (the aggregate floor is asserted).
STAGES = ("clean", "enrich", "trips", "project", "aggregate")

#: Conservative in-run floors (see module docstring for why these sit
#: far below the measured ratios).  Quick mode keeps the full world but
#: a single trial on shared CI hardware, so it only smoke-asserts a win.
AGGREGATE_FLOOR = 1.2 if QUICK else 1.5
DECODE_FLOOR = 1.1 if QUICK else 1.5

N_NMEA_MESSAGES = 5_000 if QUICK else 30_000


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _stage_seconds(world, vectorized: bool) -> tuple[dict[str, float], object]:
    """One full funnel build; returns ({stage: wall_s}, inventory)."""
    sink = RingBufferSink(capacity=4096)
    configure(sink)
    try:
        result = build_inventory(
            world.positions,
            world.fleet,
            world.ports,
            PipelineConfig(resolution=6, vectorized=vectorized),
        )
    finally:
        disable()
    stages = {}
    for span in sink.spans(4096):
        name = span["name"]
        if name.startswith("pipeline."):
            stage = name.split(".", 1)[1]
            stages[stage] = stages.get(stage, 0.0) + span["wall_s"]
    return stages, result.inventory


def _inventory_bytes(inventory) -> dict:
    """Every group's codec encoding, keyed for exact comparison."""
    return {
        key.to_tuple(): encode(summary.to_dict())
        for key, summary in inventory.items()
    }


def _nmea_corpus(world) -> list[str]:
    lines: list[str] = []
    for i, report in enumerate(world.positions):
        if len(lines) >= N_NMEA_MESSAGES:
            break
        lines.extend(
            encode_message(
                PositionReport(
                    mmsi=report.mmsi,
                    epoch_ts=report.epoch_ts,
                    lat=max(-89.9, min(89.9, report.lat)),
                    lon=max(-179.9, min(179.9, report.lon)),
                    sog=max(0.0, min(102.2, report.sog)),
                    cog=max(0.0, min(359.9, report.cog)),
                    heading=report.heading
                    if report.heading is not None else 511,
                    status=report.status,
                )
            )
        )
    return lines


def test_batch_vs_scalar(bench_world):
    # Decode first, while the heap is small: after two funnel builds two
    # full inventories are live, and collector pressure (including the
    # deferred gen-2 collection the batched aggregate postpones) would
    # poison a sub-second measurement.  Best-of-3 screens scheduler noise.
    lines = _nmea_corpus(bench_world)
    scalar_decode_s = min(
        _timed(lambda: list(decode_sentences(lines, epoch_ts=0.0)))
        for _ in range(3)
    )
    batched_decode_s = min(
        _timed(lambda: decode_lines(lines, epoch_ts=0.0)) for _ in range(3)
    )
    scalar_messages = list(decode_sentences(lines, epoch_ts=0.0))
    batched_messages = decode_lines(lines, epoch_ts=0.0)
    assert batched_messages == scalar_messages
    decode_ratio = scalar_decode_s / batched_decode_s

    # Each build is encoded and freed before the next one starts: a live
    # inventory is millions of sketch objects, and leaving the scalar
    # one on the heap measurably drags the batched build (gen-2 sweeps
    # scale with live objects).  A bytes dict is cheap to keep.
    scalar_stages, scalar_inventory = _stage_seconds(
        bench_world, vectorized=False
    )
    scalar_bytes = _inventory_bytes(scalar_inventory)
    del scalar_inventory
    gc.collect()

    batched_stages, batched_inventory = _stage_seconds(
        bench_world, vectorized=True
    )
    batched_bytes = _inventory_bytes(batched_inventory)
    del batched_inventory
    gc.collect()

    # Equivalence before speed: the batched funnel must produce the
    # byte-identical inventory.
    assert set(scalar_bytes) == set(batched_bytes)
    mismatched = sum(
        1 for key in scalar_bytes if scalar_bytes[key] != batched_bytes[key]
    )
    assert mismatched == 0, f"{mismatched} groups differ between paths"

    aggregate_ratio = (
        scalar_stages["aggregate"] / batched_stages["aggregate"]
    )
    rows = [
        f"{'Stage':<12} {'scalar':>9} {'batched':>9} {'speedup':>8}"
    ]
    for stage in STAGES:
        scalar_s = scalar_stages.get(stage, 0.0)
        batched_s = batched_stages.get(stage, 0.0)
        ratio = scalar_s / batched_s if batched_s else float("inf")
        rows.append(
            f"{stage:<12} {scalar_s:>8.2f}s {batched_s:>8.2f}s "
            f"{ratio:>7.1f}x"
        )
    lines_out = [
        "Columnar batches vs scalar funnel (identical world, identical "
        "output — the",
        f"{len(scalar_bytes):,} result groups are byte-equal; "
        f"pipeline.* span wall time"
        f"{', QUICK mode' if QUICK else ''})",
        "",
        *rows,
        "",
        f"Batch NMEA decode: {len(lines):,} lines, "
        f"{len(batched_messages):,} messages — scalar "
        f"{scalar_decode_s:.2f}s, batched {batched_decode_s:.2f}s "
        f"({decode_ratio:.1f}x)",
        "",
        "Note: the scalar funnel shares this revision's sketch/hashing",
        "optimisations, so these in-run ratios understate the win over "
        "the seed",
        "revision (seed scalar aggregate on this world: ~14.9s).",
    ]
    write_report(
        "batch_vs_scalar",
        lines_out,
        data={
            "groups": len(scalar_bytes),
            "stages_scalar_s": scalar_stages,
            "stages_batched_s": batched_stages,
            "aggregate_speedup": aggregate_ratio,
            "nmea_lines": len(lines),
            "nmea_scalar_s": scalar_decode_s,
            "nmea_batched_s": batched_decode_s,
            "nmea_speedup": decode_ratio,
        },
    )

    assert aggregate_ratio >= AGGREGATE_FLOOR, (
        f"aggregate stage speedup {aggregate_ratio:.2f}x under the "
        f"{AGGREGATE_FLOOR}x floor "
        f"(scalar {scalar_stages['aggregate']:.2f}s, "
        f"batched {batched_stages['aggregate']:.2f}s)"
    )
    assert decode_ratio >= DECODE_FLOOR, (
        f"batch NMEA decode speedup {decode_ratio:.2f}x under the "
        f"{DECODE_FLOOR}x floor"
    )
