"""§4.1.2 use case — estimated time of arrival from ATA statistics.

Paper: "there is no previously published work of a global scale inventory
that relies on the ATA of historical trips to estimate the expected time
to destination" — the claim is specifically about the per-route
(origin, destination, vessel-type) ATA statistics.

Reproduced with a *temporal holdout* (inventory from the first 70 % of
the archive, live probes from the final 30 %), reporting accuracy per
grouping tier.  Expected shape — and a finding that directly validates
the paper's grouping-set design: the route-level key beats the
great-circle baseline by an order of magnitude, while the coarse
cell-only fallback (which mixes every route crossing the cell) degrades
badly; that degradation is exactly why the paper computes the
CELL_OD_TYPE grouping at all.

The inventory is built at resolution 5: the paper selects the resolution
"so that cells … capture enough AIS messages and preserve statistical
significance" (§3.3.3), and at 10⁵-record scale that is one level coarser
than the paper's 2.7 B-record choice of 6.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import write_report
from repro import PipelineConfig, build_inventory
from repro.apps import EtaEstimator, great_circle_baseline_s
from repro.pipeline import PortIndex, cleaning
from repro.pipeline.trips import annotate_trips
from repro.world.ports import port_by_id


@pytest.fixture(scope="module")
def temporal_split(bench_world):
    """(history inventory, probe records after the split)."""
    positions = bench_world.positions
    split_ts = positions[int(len(positions) * 0.7)].epoch_ts
    history = [r for r in positions if r.epoch_ts < split_ts]
    inventory = build_inventory(
        history, bench_world.fleet, bench_world.ports,
        PipelineConfig(resolution=5),
    ).inventory

    # Ground-truth trips come from the *full* archive (so trips spanning
    # the split keep their endpoints); probes are their post-split records.
    static = bench_world.static_by_mmsi()
    index = PortIndex(bench_world.ports)
    by_vessel: dict = {}
    for report in positions:
        by_vessel.setdefault(report.mmsi, []).append(report)
    probes = []
    for mmsi, track in by_vessel.items():
        track = cleaning.feasibility_filter(cleaning.sort_and_dedupe(track))
        enriched = cleaning.enrich_track(mmsi, track, static)
        if not enriched:
            continue
        for record in annotate_trips(enriched, index)[::4]:
            if record.ts >= split_ts:
                probes.append(record)
    return inventory, probes


def test_usecase_eta_accuracy(benchmark, temporal_split):
    inventory, probes = temporal_split
    assert probes, "temporal holdout produced no probes"
    estimator = EtaEstimator(inventory)

    def estimate_all():
        return [
            (
                estimator.estimate(
                    record.lat, record.lon, vessel_type=record.vessel_type,
                    origin=record.origin, destination=record.destination,
                ),
                record,
            )
            for record in probes
        ]

    answers = benchmark.pedantic(estimate_all, rounds=1, iterations=1)

    # (inventory error, baseline error, interval covered) per grouping tier.
    tiers: dict[str, list[tuple[float, float, bool]]] = {}
    unmatched = 0
    for estimate, record in answers:
        if estimate is None:
            continue
        if not estimate.destination_matched:
            unmatched += 1
            continue
        port = port_by_id(record.destination)
        baseline = great_circle_baseline_s(
            record.lat, record.lon, port.lat, port.lon
        )
        tiers.setdefault(estimate.grouping, []).append(
            (
                abs(estimate.p50_s - record.ata_s) / 3600.0,
                abs(baseline - record.ata_s) / 3600.0,
                estimate.interval_contains(record.ata_s),
            )
        )

    lines = [
        "ETA use case (temporal holdout: first 70% history, last 30% live; "
        "inventory at res 5)",
        f"probes: {len(probes)} live positions; destination-matched "
        f"answers: {sum(len(rows) for rows in tiers.values())}; "
        f"low-confidence unmatched: {unmatched}",
        f"{'Grouping tier':<16} {'N':>5} {'Inv MAE h':>10} {'Base MAE h':>11} "
        f"{'p10-p90 cover':>14}",
    ]
    for grouping in ("cell_od_type", "cell_type", "cell"):
        rows = tiers.get(grouping, [])
        if not rows:
            continue
        inv_mae = statistics.fmean(r[0] for r in rows)
        base_mae = statistics.fmean(r[1] for r in rows)
        coverage = sum(1 for r in rows if r[2]) / len(rows)
        lines.append(
            f"{grouping:<16} {len(rows):>5} {inv_mae:>10.1f} "
            f"{base_mae:>11.1f} {coverage:>13.0%}"
        )
    od_rows = tiers.get("cell_od_type", [])
    od_inv = statistics.fmean(r[0] for r in od_rows)
    od_base = statistics.fmean(r[1] for r in od_rows)
    od_cover = sum(1 for r in od_rows if r[2]) / len(od_rows)
    lines.append("")
    lines.append(
        f"Shape checks: the paper's route-level key beats the physics "
        f"baseline by ~{od_base / max(od_inv, 1e-9):.0f}x "
        f"({od_inv:.1f} h vs {od_base:.1f} h); the coarse cell-only tier "
        "degrades — the degradation that motivates computing the "
        "CELL_OD_TYPE grouping set in the first place."
    )
    write_report("usecase_eta", lines)

    assert len(od_rows) >= 20
    assert od_inv < od_base            # route-level key beats the baseline
    # Interval coverage is small-sample-bound at this scale (1-3 trips per
    # OD cell make [p10, p90] nearly a point); only smoke-check it.
    assert od_cover > 0.0
    if "cell" in tiers and len(tiers["cell"]) >= 10:
        cell_inv = statistics.fmean(r[0] for r in tiers["cell"])
        # The paper's design rationale, measured: OD-level is far more
        # accurate than the all-routes cell fallback.
        assert od_inv < cell_inv
