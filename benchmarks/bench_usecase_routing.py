"""§4.1.3 use case — route forecasting over the transition graph.

Paper: build the per-(origin, destination, type) cell graph from the
transitions feature, run A*, forecast the route.

Reproduced experiment: for routes with inventory history, forecast from
the origin to the destination and compare the predicted cell sequence with
the cells an actual vessel visited (precision against the route key's
observed cell set, plus continuity of the forecast).
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import write_report
from repro.apps import RouteForecaster, TransitionGraph
from repro.hexgrid import grid_distance
from repro.inventory.keys import GroupingSet
from repro.world.routing import SeaRouter


def _route_keys(inventory, minimum_cells=30):
    routes = {}
    for key, _summary in inventory.items():
        if key.grouping_set is GroupingSet.CELL_OD_TYPE:
            route = (key.origin, key.destination, key.vessel_type)
            routes[route] = routes.get(route, 0) + 1
    return [route for route, count in routes.items() if count >= minimum_cells]


def test_usecase_route_forecast(benchmark, bench_inventory):
    routes = _route_keys(bench_inventory)
    assert routes, "no transition-rich routes in the benchmark inventory"
    router = SeaRouter()
    forecaster = RouteForecaster(bench_inventory)

    def forecast_all():
        outcomes = []
        for origin, destination, vessel_type in routes[:12]:
            observed = set(
                bench_inventory.route_cells(origin, destination, vessel_type)
            )
            origin_pos = router.node_position(origin)
            dest_pos = router.node_position(destination)
            path = forecaster.forecast(
                origin_pos[0], origin_pos[1], origin, destination,
                vessel_type, dest_pos[0], dest_pos[1],
            )
            outcomes.append((origin, destination, observed, path))
        return outcomes

    outcomes = benchmark.pedantic(forecast_all, rounds=1, iterations=1)

    precisions = []
    continuities = []
    lengths = []
    forecast_count = 0
    for origin, destination, observed, path in outcomes:
        if path is None or len(path) < 2:
            continue
        forecast_count += 1
        lengths.append(len(path))
        precisions.append(
            sum(1 for cell in path if cell in observed) / len(path)
        )
        gaps = [
            grid_distance(a, b) for a, b in zip(path, path[1:])
        ]
        continuities.append(statistics.fmean(gaps))

    lines = [
        "Route forecasting: A* over per-route transition graphs",
        f"routes with >=30 inventoried cells: {len(routes)}; "
        f"forecasts produced: {forecast_count}",
        f"mean forecast length: {statistics.fmean(lengths):.0f} cells",
        f"mean precision vs observed route cells: "
        f"{statistics.fmean(precisions):.1%}",
        f"mean inter-step grid distance: {statistics.fmean(continuities):.2f} "
        "(1.0 = perfectly contiguous neighbor steps)",
        "",
        "Shape checks: forecasts exist for most dense routes, stay on the "
        "observed corridor, and advance in near-neighbor steps.",
    ]
    write_report("usecase_routing", lines)

    assert forecast_count >= max(1, len(routes[:12]) // 2)
    assert statistics.fmean(precisions) > 0.9
    assert statistics.fmean(continuities) < 4.0


def test_transition_graph_build_speed(benchmark, bench_inventory):
    routes = _route_keys(bench_inventory, minimum_cells=10)
    origin, destination, vessel_type = routes[0]
    graph = benchmark(
        lambda: TransitionGraph.from_inventory(
            bench_inventory, origin, destination, vessel_type
        )
    )
    assert graph.edge_count() > 0
