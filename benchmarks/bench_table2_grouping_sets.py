"""Table 2 — The grouping set (GS).

Paper: three group identifiers are computed — (H3-index),
(H3-index, vessel-type), (H3-index, origin, destination, vessel-type).

Reproduced: one pipeline pass populates all three grouping sets; the
benchmark times the aggregation stage in isolation and reports the group
counts per set.  Expected shape: |CELL| ≤ |CELL_TYPE| ≤ |CELL_OD_TYPE|
group counts (each breakdown refines the previous) while each set's record
total stays the same.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.inventory.keys import GroupingSet
from repro.inventory.summary import SummaryConfig
from repro.pipeline.features import fan_out, make_create, make_update


def _aggregate(records):
    config = SummaryConfig()
    create = make_create(config)
    update = make_update(config)
    groups: dict = {}
    for record in records:
        for key, value in fan_out(record):
            if key in groups:
                groups[key] = update(groups[key], value)
            else:
                groups[key] = create(value)
    return groups


def test_table2_grouping_sets(benchmark, bench_world, bench_inventory):
    # Re-derive a slice of cell records to time the aggregation itself.
    from repro.pipeline.geofence import PortIndex
    from repro.pipeline import cleaning
    from repro.pipeline.projection import project_trip
    from repro.pipeline.trips import annotate_trips

    static = bench_world.static_by_mmsi()
    index = PortIndex(bench_world.ports)
    by_vessel: dict = {}
    for report in bench_world.positions[:60_000]:
        by_vessel.setdefault(report.mmsi, []).append(report)
    cell_records = []
    for mmsi, track in by_vessel.items():
        track = cleaning.feasibility_filter(cleaning.sort_and_dedupe(track))
        enriched = cleaning.enrich_track(mmsi, track, static)
        if not enriched:
            continue
        trips = annotate_trips(enriched, index)
        current: list = []
        for record in trips:
            if current and record.trip_id != current[-1].trip_id:
                cell_records.extend(project_trip(current, 6))
                current = []
            current.append(record)
        cell_records.extend(project_trip(current, 6))

    groups = benchmark.pedantic(
        lambda: _aggregate(cell_records), rounds=3, iterations=1
    )

    lines = [
        "Table 2: Grouping set (GS) — groups per group identifier",
        f"{'Group identifier':<50} {'Groups':>8} {'Records':>9}",
    ]
    full_counts = {}
    for grouping_set, label in [
        (GroupingSet.CELL, "(H3-index)"),
        (GroupingSet.CELL_TYPE, "(H3-index, vessel-type)"),
        (GroupingSet.CELL_OD_TYPE,
         "(H3-index, origin, destination, vessel-type)"),
    ]:
        count = bench_inventory.group_count(grouping_set)
        records = sum(
            summary.records for key, summary in bench_inventory.items()
            if key.grouping_set is grouping_set
        )
        full_counts[grouping_set] = (count, records)
        lines.append(f"{label:<50} {count:>8,} {records:>9,}")
    write_report("table2_grouping_sets", lines)

    cell_count, cell_records_total = full_counts[GroupingSet.CELL]
    type_count, type_records = full_counts[GroupingSet.CELL_TYPE]
    od_count, _ = full_counts[GroupingSet.CELL_OD_TYPE]
    assert cell_count <= type_count <= od_count
    # Refining by type re-buckets the same records.
    assert type_records == cell_records_total
    assert len(groups) > 0
