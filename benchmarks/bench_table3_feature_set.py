"""Table 3 — Feature set (FS) and statistics.

Paper: a matrix of features × statistics (count, distinct, mean, std,
percentiles, bins, top-N).  Reproduced: verify every marked matrix cell is
materialized in the built inventory and time the per-statistic query cost
on the busiest cell.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.inventory.keys import GroupingSet


def _busiest(inventory):
    return max(
        (
            summary
            for key, summary in inventory.items()
            if key.grouping_set is GroupingSet.CELL
        ),
        key=lambda summary: summary.records,
    )


def test_table3_feature_statistics(benchmark, bench_inventory):
    summary = _busiest(bench_inventory)

    def query_all_statistics():
        quantile = summary.speed_quantiles.quantile
        return (
            summary.records,
            summary.ships.cardinality(),
            summary.course.mean_deg,
            summary.course_bins.mode_bin(),
            summary.heading.mean_deg,
            summary.heading_bins.mode_bin(),
            summary.speed.mean,
            summary.speed.std,
            (quantile(0.1), quantile(0.5), quantile(0.9)),
            summary.trips.cardinality(),
            summary.eto.mean,
            summary.eto.std,
            summary.ata.mean,
            summary.ata_quantiles.quantile(0.5),
            summary.origins.top(3),
            summary.destinations.top(3),
            summary.transitions.top(3),
        )

    results = benchmark(query_all_statistics)

    matrix = [
        # feature, Cnt, Dist, Mean, Std, Perc, Bins, TopN — paper's marks
        ("Records", summary.records > 0, None, None, None, None, None, None),
        ("Ships", None, summary.ships.cardinality() > 0, None, None, None, None, None),
        ("Course", None, None, summary.course.mean_deg is not None, None,
         None, summary.course_bins.total > 0, None),
        ("Heading", None, None, summary.heading.count > 0, None, None,
         summary.heading_bins.total > 0, None),
        ("Speed", None, None, summary.speed.count > 0, summary.speed.std >= 0,
         summary.speed_percentiles() is not None, None, None),
        ("Trips", None, summary.trips.cardinality() > 0, None, None, None,
         None, None),
        ("ETO", None, None, summary.eto.count > 0, True,
         summary.eto.count > 0, None, None),
        ("ATA", None, None, summary.ata.count > 0, True,
         summary.ata.count > 0, None, None),
        ("Origin", None, None, None, None, None, None,
         len(summary.origins.top()) > 0),
        ("Destination", None, None, None, None, None, None,
         len(summary.destinations.top()) > 0),
        ("Transitions", None, None, None, None, None, None,
         len(summary.transitions.top()) > 0),
    ]
    headers = ["Cnt", "Dist", "Mean", "Std", "Perc", "Bins", "Top-N"]
    lines = [
        "Table 3: Feature set (FS) and statistics — X = materialized & "
        "non-empty on the busiest cell",
        f"{'Feature':<14}" + "".join(f"{h:>7}" for h in headers),
    ]
    all_marked_present = True
    for name, *cells in matrix:
        row = f"{name:<14}"
        for cell in cells:
            if cell is None:
                row += f"{'':>7}"
            else:
                row += f"{'X' if cell else 'MISSING':>7}"
                all_marked_present &= bool(cell)
        lines.append(row)
    lines.append("")
    lines.append(f"Busiest cell: {summary.records} records; all 17 statistics "
                 f"queried in one call (see benchmark timing).")
    write_report("table3_feature_set", lines)

    assert all_marked_present
    assert len(results) == 17
