"""Ablation — execution-framework parallelism (§3.2.2).

The paper "capitalizes on the parallelization capabilities of Apache
Spark" (128 vcores).  This benchmark measures our engine's analogue: the
same aggregation job across partition counts and scheduler backends,
reporting throughput.  Expected honest shapes on CPython: the serial and
thread backends are GIL-bound and roughly flat; the fork-based process
backend gains on CPU-bound stages; partitioning itself costs little.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_report
from repro.engine import Engine, EngineConfig
from repro.hexgrid import latlng_to_cell


def _job(engine, reports):
    return (
        engine.parallelize(reports)
        .map(lambda r: (latlng_to_cell(r.lat, r.lon, 6), r.sog))
        .combine_by_key(
            create=lambda v: (1, v),
            merge_value=lambda acc, v: (acc[0] + 1, acc[1] + v),
            merge_combiners=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        .count()
    )


def test_ablation_engine_scaling(benchmark, bench_world):
    reports = bench_world.positions[:40_000]
    configurations = [
        ("serial", 1), ("serial", 8),
        ("threads", 4), ("threads", 8),
        ("processes", 4), ("processes", 8),
    ]

    rows = []
    reference = None
    for scheduler, partitions in configurations:
        with Engine(
            EngineConfig(num_partitions=partitions, scheduler=scheduler,
                         max_workers=4)
        ) as engine:
            start = time.perf_counter()
            count = _job(engine, reports)
            seconds = time.perf_counter() - start
        if reference is None:
            reference = count
        assert count == reference  # every backend computes the same answer
        rows.append((scheduler, partitions, seconds,
                     len(reports) / seconds))

    benchmark.pedantic(
        lambda: _job(Engine(EngineConfig(num_partitions=8)), reports),
        rounds=1, iterations=1,
    )

    lines = [
        f"Engine scaling ablation: cell aggregation of {len(reports):,} "
        "reports (identical results asserted across all backends)",
        f"{'Scheduler':<12} {'Partitions':>10} {'Seconds':>9} "
        f"{'Records/s':>11}",
    ]
    for scheduler, partitions, seconds, throughput in rows:
        lines.append(
            f"{scheduler:<12} {partitions:>10} {seconds:>9.2f} "
            f"{throughput:>11,.0f}"
        )
    serial8 = next(s for sch, p, s, _ in rows if sch == "serial" and p == 8)
    process8 = next(s for sch, p, s, _ in rows if sch == "processes" and p == 8)
    lines.append("")
    lines.append(
        f"Shape notes: CPython's GIL keeps threads ≈ serial; the fork-based "
        f"process backend changes the picture ({serial8:.2f}s serial vs "
        f"{process8:.2f}s processes at 8 partitions). The paper's Spark "
        "cluster exploits exactly this map-side parallelism at 128 vcores."
    )
    write_report("ablation_engine_scaling", lines)

    # Determinism across backends is the hard requirement; speedups are
    # hardware-dependent, so only sanity-bound them.
    for _scheduler, _partitions, seconds, _throughput in rows:
        assert seconds < 120.0
