"""§1/§2 motivation — the model of normalcy detecting disruptions.

Paper: "we build a model of normalcy that can then be used to identify any
outliers from this, e.g. Covid-19 or Suez Canal."

Reproduced experiment: build the inventory from an *undisrupted* 2022
world (the normalcy model), then replay (a) normal Suez-transiting
voyages and (b) the same voyages during a simulated canal blockage (Cape
diversions).  The detector's off-lane fraction must separate the two
populations — high recall on diverted tracks at a low false-positive rate
on normal ones.
"""

from __future__ import annotations

import statistics

import random

from benchmarks.conftest import write_report
from repro.apps import AnomalyDetector
from repro.inventory.keys import GroupingSet
from repro.world.routing import SeaRouter
from repro.world.simulator import TrackSimulator
from repro.world.voyages import VoyagePlan


def _dense_track(router, origin, destination, rng):
    """A realistic dense AIS track along the routed path."""
    simulator = TrackSimulator(router, report_interval_s=1800.0)
    plan = VoyagePlan(
        mmsi=999_000_002, origin=origin, destination=destination,
        depart_ts=0.0, speed_kn=13.0,
        route_nodes=tuple(router.route_nodes(origin, destination)),
    )
    return [
        (r.lat, r.lon, r.sog, r.cog)
        for r in simulator.voyage_track(plan, end_ts=1e12, rng=rng)
    ]


def _suez_routes(inventory, router, minimum_cells=20):
    routes = {}
    for key, _ in inventory.items():
        if key.grouping_set is GroupingSet.CELL_OD_TYPE:
            route = (key.origin, key.destination, key.vessel_type)
            routes[route] = routes.get(route, 0) + 1
    return [
        route for route, count in routes.items()
        if count >= minimum_cells
        and router.uses_canal(route[0], route[1], "suez")
    ]


def test_usecase_suez_anomaly(benchmark, bench_inventory):
    router = SeaRouter()
    blocked = SeaRouter(blocked_canals={"suez", "panama"})
    routes = _suez_routes(bench_inventory, router)
    if not routes:
        import pytest

        pytest.skip("benchmark world has no Suez-transiting dense routes")
    detector = AnomalyDetector(bench_inventory)

    rng = random.Random(314)

    def score_populations():
        normal_scores = []
        diverted_scores = []
        for origin, destination, vessel_type in routes[:8]:
            normal_scores.append(
                detector.score_track(
                    _dense_track(router, origin, destination, rng),
                    vessel_type=vessel_type,
                    origin=origin, destination=destination,
                )
            )
            try:
                diverted = _dense_track(blocked, origin, destination, rng)
            except Exception:
                continue
            diverted_scores.append(
                detector.score_track(
                    diverted, vessel_type=vessel_type,
                    origin=origin, destination=destination,
                )
            )
        return normal_scores, diverted_scores

    normal_scores, diverted_scores = benchmark.pedantic(
        score_populations, rounds=1, iterations=1
    )
    assert diverted_scores

    threshold = 0.5
    false_positives = sum(1 for s in normal_scores if s > threshold)
    detections = sum(1 for s in diverted_scores if s > threshold)
    lines = [
        "Anomaly use case: Suez diversion vs normalcy model",
        f"Suez-transiting dense routes evaluated: {len(normal_scores)}",
        f"mean off-lane fraction, normal voyages:   "
        f"{statistics.fmean(normal_scores):.1%}",
        f"mean off-lane fraction, diverted voyages: "
        f"{statistics.fmean(diverted_scores):.1%}",
        f"at threshold {threshold:.0%}: detections "
        f"{detections}/{len(diverted_scores)}, false positives "
        f"{false_positives}/{len(normal_scores)}",
        "",
        "Shape check: the two populations separate — diversions score far "
        "above normal traffic, as the paper's Suez/Covid motivation claims.",
    ]
    write_report("usecase_anomaly", lines)

    assert statistics.fmean(diverted_scores) > statistics.fmean(normal_scores) + 0.2
    assert detections / len(diverted_scores) >= 0.7
    assert false_positives / len(normal_scores) <= 0.3
