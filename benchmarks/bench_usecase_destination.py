"""§4.1.3 use case — streaming destination prediction.

Paper: query the inventory for each live AIS message, accumulate the
top-N destination lists, "decide on the most probable destination".

Reproduced experiment: simulate *dense live tracks* for held-out voyages
whose routes have history in the inventory, stream them through the
predictor, and report top-1/top-3 accuracy against the fraction of the
voyage observed, plus candidate recall (how often the truth appears in
the vote set at all).  Expected shapes: accuracy far above the random
1/#ports baseline and improving toward arrival (final-approach cells vote
almost unanimously for their port).
"""

from __future__ import annotations

import random

from benchmarks.conftest import write_report
from repro.apps import DestinationPredictor
from repro.inventory.keys import GroupingSet
from repro.world.ports import PORTS
from repro.world.routing import SeaRouter
from repro.world.simulator import TrackSimulator
from repro.world.voyages import VoyagePlan


def _dense_routes(inventory, minimum_cells=25):
    routes: dict = {}
    for key, _ in inventory.items():
        if key.grouping_set is GroupingSet.CELL_OD_TYPE:
            route = (key.origin, key.destination, key.vessel_type)
            routes[route] = routes.get(route, 0) + 1
    return [r for r, count in routes.items() if count >= minimum_cells]


def test_usecase_destination_prediction(benchmark, bench_inventory):
    router = SeaRouter()
    simulator = TrackSimulator(router, report_interval_s=1800.0)
    rng = random.Random(777)
    routes = _dense_routes(bench_inventory)
    assert routes, "no dense routes in the benchmark inventory"

    tracks = []
    for origin, destination, vessel_type in routes[:20]:
        plan = VoyagePlan(
            mmsi=999_000_000, origin=origin, destination=destination,
            depart_ts=0.0, speed_kn=14.0,
            route_nodes=tuple(router.route_nodes(origin, destination)),
        )
        reports = simulator.voyage_track(plan, end_ts=1e12, rng=rng)
        positions = [(r.lat, r.lon) for r in reports]
        if len(positions) >= 8:
            tracks.append((positions, vessel_type, destination))
    assert tracks

    predictor = DestinationPredictor(bench_inventory)
    fractions = (0.25, 0.5, 0.75, 1.0)

    def evaluate():
        scores = {fraction: [0, 0, 0, 0] for fraction in fractions}
        for positions, vessel_type, truth in tracks:
            for fraction in fractions:
                cut = max(2, int(len(positions) * fraction))
                state = predictor.predict_track(
                    positions[:cut], vessel_type=vessel_type
                )
                ranking = [dest for dest, _ in state.ranking()]
                if not ranking:
                    continue
                scored, top1, top3, recall = scores[fraction]
                scores[fraction] = [
                    scored + 1,
                    top1 + (ranking[0] == truth),
                    top3 + (truth in ranking[:3]),
                    recall + (truth in ranking),
                ]
        return scores

    scores = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    random_baseline = 1.0 / len(PORTS)
    lines = [
        "Destination prediction: accuracy vs fraction of voyage observed",
        f"live tracks over inventory-dense routes: {len(tracks)}; "
        f"random top-1 baseline: {random_baseline:.1%}",
        f"{'Observed':>9} {'Scored':>7} {'Top-1':>7} {'Top-3':>7} "
        f"{'InVotes':>8}",
    ]
    top1_curve = []
    for fraction in fractions:
        scored, top1, top3, recall = scores[fraction]
        rates = [
            value / scored if scored else 0.0 for value in (top1, top3, recall)
        ]
        top1_curve.append(rates[0])
        lines.append(
            f"{fraction:>8.0%} {scored:>7} {rates[0]:>6.1%} {rates[1]:>6.1%} "
            f"{rates[2]:>7.1%}"
        )
    lines.append("")
    lines.append(
        "Shape checks: top-1 accuracy many multiples of the random "
        "baseline and rising toward arrival; the true port almost always "
        "present in the vote set."
    )
    write_report("usecase_destination", lines)

    scored_full, top1_full, top3_full, recall_full = scores[1.0]
    assert scored_full > 0
    assert top1_full / scored_full > 10 * random_baseline
    assert top3_full >= top1_full
    assert recall_full / scored_full > 0.6
    assert top1_curve[-1] >= top1_curve[0]
