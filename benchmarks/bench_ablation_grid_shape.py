"""Ablation — hexagonal vs square grids (§3.2.1).

"The choice of hexagonal grids is advantageous for neighborhood analysis
at scale.  The neighborhood for H3 corresponds to six adjacent neighbours
at a fixed distance for each cell … square grids have more neighbours and
multiple distances per cell."

Reproduced: measure, for our hex grid and an equal-area square grid of the
same cell area, (a) the spread of neighbor center distances (hex: one
distance; square 8-neighborhood: two, ~41 % apart) and (b) the transition
fan-out a moving vessel generates (hex transitions concentrate on fewer
distinct neighbors).
"""

from __future__ import annotations

import math
import statistics

from benchmarks.conftest import write_report
from repro.geo import destination_point
from repro.hexgrid import grid_ring, latlng_to_cell
from repro.hexgrid.lattice import cell_area_km2, cell_spacing_m
from repro.hexgrid.projection import project


class _SquareGrid:
    """An equal-area square grid with the same cell area as hex res 6."""

    def __init__(self, resolution: int = 6) -> None:
        self.side_m = math.sqrt(cell_area_km2(resolution) * 1e6)

    def cell(self, lat: float, lon: float) -> tuple[int, int]:
        x, y = project(lat, lon)
        return int(x // self.side_m), int(y // self.side_m)

    def neighbor_distances(self, cell: tuple[int, int]) -> list[float]:
        cx = (cell[0] + 0.5) * self.side_m
        cy = (cell[1] + 0.5) * self.side_m
        distances = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == dy == 0:
                    continue
                nx = cx + dx * self.side_m
                ny = cy + dy * self.side_m
                distances.append(math.hypot(nx - cx, ny - cy))
        return distances


def _coefficient_of_variation(values: list[float]) -> float:
    mean = statistics.fmean(values)
    return statistics.pstdev(values) / mean if mean else 0.0


def test_ablation_hex_vs_square(benchmark):
    resolution = 6
    square = _SquareGrid(resolution)

    # (a) neighbor distance uniformity.
    hex_spacing = cell_spacing_m(resolution)
    hex_distances = [hex_spacing] * 6  # by construction: one lattice distance
    square_distances = square.neighbor_distances((100, 100))
    hex_cv = _coefficient_of_variation(hex_distances)
    square_cv = _coefficient_of_variation(square_distances)

    # (b) transition fan-out along synthetic great-circle tracks.
    def transition_fanout():
        hex_targets: dict[int, set[int]] = {}
        square_targets: dict[tuple, set[tuple]] = {}
        for bearing in range(0, 360, 15):
            lat, lon = 30.0, -40.0
            prev_hex = latlng_to_cell(lat, lon, resolution)
            prev_sq = square.cell(lat, lon)
            for _ in range(120):
                lat, lon = destination_point(lat, lon, bearing, 2_000.0)
                cur_hex = latlng_to_cell(lat, lon, resolution)
                cur_sq = square.cell(lat, lon)
                if cur_hex != prev_hex:
                    hex_targets.setdefault(prev_hex, set()).add(cur_hex)
                    prev_hex = cur_hex
                if cur_sq != prev_sq:
                    square_targets.setdefault(prev_sq, set()).add(cur_sq)
                    prev_sq = cur_sq
        hex_fan = statistics.fmean(
            len(targets) for targets in hex_targets.values()
        )
        square_fan = statistics.fmean(
            len(targets) for targets in square_targets.values()
        )
        return hex_fan, square_fan

    hex_fan, square_fan = benchmark(transition_fanout)

    # Hex ring-1 sanity: exactly six neighbors, all at one distance.
    center = latlng_to_cell(30.0, -40.0, resolution)
    assert len(grid_ring(center, 1)) == 6

    lines = [
        "Grid-shape ablation: hexagonal vs equal-area square cells (res 6)",
        f"{'Metric':<44} {'Hex':>8} {'Square':>8}",
        f"{'neighbors per cell':<44} {6:>8} {8:>8}",
        f"{'distinct neighbor distances':<44} {1:>8} {2:>8}",
        f"{'neighbor-distance coeff. of variation':<44} "
        f"{hex_cv:>8.3f} {square_cv:>8.3f}",
        f"{'mean transition fan-out (synthetic tracks)':<44} "
        f"{hex_fan:>8.2f} {square_fan:>8.2f}",
        "",
        "Shape check: hexagons give one neighbor distance (CV 0) and more "
        "concentrated transitions — the paper's stated reason for H3.",
    ]
    write_report("ablation_grid_shape", lines)

    assert hex_cv == 0.0
    assert square_cv > 0.15
    assert len(set(round(d) for d in square.neighbor_distances((5, 5)))) == 2
