"""Figure 3 — execution flow of the patterns-of-life calculation.

Paper: a flow diagram of the stages executed on Spark (cleaning →
enrichment → trips → projection → feature extraction).

Reproduced: run the pipeline with stage instrumentation and report the
wall-time breakdown per operator, which is the quantitative counterpart of
the flow diagram.  Shape check: the aggregation (reduce) and the per-vessel
grouping (shuffle) dominate, exactly the stages the paper parallelizes.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro import PipelineConfig, build_inventory
from repro.engine import Engine, EngineConfig


def test_fig3_stage_timing(benchmark, bench_world):
    def run():
        with Engine(EngineConfig(num_partitions=8, collect_metrics=True)) as engine:
            return build_inventory(
                bench_world.positions[:50_000],
                bench_world.fleet,
                bench_world.ports,
                PipelineConfig(resolution=6),
                engine=engine,
            )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    total = sum(result.stage_seconds.values())
    lines = [
        "Figure 3: execution-flow stage timing (50k-record slice)",
        f"{'Stage':<34} {'Seconds':>8} {'Share':>7}",
    ]
    for label, seconds in sorted(
        result.stage_seconds.items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"{label:<34} {seconds:>8.3f} {seconds/total:>6.1%}")
    lines.append(f"{'TOTAL':<34} {total:>8.3f}")
    write_report("fig3_stage_timing", lines)

    assert "aggregate_summaries" in result.stage_seconds
    heavy = max(result.stage_seconds, key=result.stage_seconds.get)
    # The map-reduce heart of the methodology is the expensive part
    # (aggregate_kernel is its columnar form on the batched path).
    assert heavy in (
        "aggregate_summaries", "aggregate_kernel", "group_by_key",
        "map_side_combine",
    ) or "map(" in heavy
