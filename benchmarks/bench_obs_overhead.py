"""Observability overhead — the no-op guarantee, measured.

``repro.obs`` instrumentation lives permanently in the hot paths (block
reads, server requests, pipeline stages), which is only tenable if the
disabled path is genuinely free.  This benchmark times the three states
a ``with obs.span(...)`` call site can be in:

- **disabled** (the default): ``span()`` must return the shared
  ``NOOP_SPAN`` after one attribute read — no allocation beyond the call
  itself, no locks, no clock reads;
- **enabled, counting sink**: the full span lifecycle (ids from
  ``os.urandom``, two clock pairs, record assembly, sink dispatch) with
  the cheapest possible sink;
- **enabled, profile sink**: the realistic aggregation cost
  (:class:`~repro.obs.sinks.ProfileSink` folding into a t-digest).

Asserted: the disabled path is at least 10x cheaper than the enabled
one (the structural no-op claim, robust to machine speed), and
``span()`` really does hand back the one shared no-op object.
"""

from __future__ import annotations

import time

from benchmarks.conftest import QUICK, write_report
from repro.obs import trace as obs
from repro.obs.sinks import ProfileSink

ITERATIONS = 20_000 if QUICK else 200_000


class _CountingSink:
    """The cheapest sink: counts records, keeps nothing."""

    def __init__(self):
        self.count = 0

    def record(self, record):
        self.count += 1


def _time_span_calls(iterations: int) -> float:
    """Per-call seconds for one ``with obs.span(...)`` in the current
    tracer state."""
    started = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench.obs", kind="probe") as sp:
            sp.set("k", 1)
    return (time.perf_counter() - started) / iterations


def test_obs_overhead():
    obs.disable()
    try:
        # the structural guarantee first: disabled means the shared no-op
        assert obs.span("bench.obs") is obs.NOOP_SPAN
        disabled = _time_span_calls(ITERATIONS)

        counting = _CountingSink()
        obs.configure(counting)
        enabled_null = _time_span_calls(ITERATIONS)
        assert counting.count == ITERATIONS, "every span must reach the sink"

        profile = ProfileSink()
        obs.configure(profile)
        enabled_profile = _time_span_calls(ITERATIONS)
        (row,) = profile.rows()
        assert row.count == ITERATIONS
    finally:
        obs.disable()

    ratio = enabled_null / disabled
    lines = [
        "Observability overhead: per-call cost of `with obs.span(...)`",
        f"({ITERATIONS:,} iterations per state"
        f"{', QUICK mode' if QUICK else ''})",
        "",
        f"{'state':<26} {'per call':>12} {'vs disabled':>12}",
        f"{'disabled (default)':<26} {disabled * 1e9:>10,.0f}ns {'1.0x':>12}",
        f"{'enabled, counting sink':<26} {enabled_null * 1e9:>10,.0f}ns "
        f"{ratio:>11.1f}x",
        f"{'enabled, profile sink':<26} {enabled_profile * 1e9:>10,.0f}ns "
        f"{enabled_profile / disabled:>11.1f}x",
        "",
        "The disabled path is the permanent cost of leaving instrumentation",
        "in the hot paths; the enabled costs are paid only when an operator",
        "turns tracing on (--trace / --trace-ring).",
    ]
    write_report("obs_overhead", lines)

    # The no-op claim: enabling tracing costs an order of magnitude more
    # than the disabled call site — i.e. the disabled path does nothing.
    assert ratio > 10.0, (
        f"disabled span path too slow: {disabled * 1e9:.0f}ns vs "
        f"{enabled_null * 1e9:.0f}ns enabled ({ratio:.1f}x)"
    )
