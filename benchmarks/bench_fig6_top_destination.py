"""Figure 6 — cells whose most frequent destination is Singapore,
Shanghai or Rotterdam.

Paper: filtering the inventory by top-1 destination reveals the route
corridors feeding each mega-port — sparse but clearly structured.

Reproduced: the same top-1-destination filter.  At laptop scale the
busiest hubs depend on which home routes the sampled fleet drew, so the
benchmark renders the *three dominant hubs of this world* (reporting where
the paper's trio ranks) and checks the figure's structural claims: each
hub owns a corridor of cells, sparse relative to the inventory, oriented
toward the hub.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import RESULTS_DIR, write_report
from repro.geo import haversine_m
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet
from repro.world.ports import port_by_id

#: The ports the paper's figure shows.
PAPER_PORTS = ("SGSIN", "CNSHA", "NLRTM")
_COLORS = [(255, 140, 20), (150, 40, 200), (40, 200, 90)]


def test_fig6_top_destination_cells(benchmark, bench_inventory):
    def classify():
        owned: dict[str, list[int]] = {}
        for key, summary in bench_inventory.items():
            if key.grouping_set is not GroupingSet.CELL:
                continue
            top = summary.top_destination()
            if top is not None:
                owned.setdefault(top, []).append(key.cell)
        return owned

    owned = benchmark(classify)
    ranked = sorted(owned, key=lambda port: -len(owned[port]))
    hubs = ranked[:3]

    # Composite raster: colour each hub's cells.
    width, height = 360, 170
    pixels = [[(8, 12, 24)] * width for _ in range(height)]
    for index, port_id in enumerate(hubs):
        for cell in owned[port_id]:
            lat, lon = cell_to_latlng(cell)
            row = int((72.0 - lat) / (72.0 + 65.0) * (height - 1))
            col = int((lon + 180.0) / 360.0 * (width - 1))
            if 0 <= row < height and 0 <= col < width:
                pixels[row][col] = _COLORS[index]
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "fig6_top_destinations.ppm", "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode())
        for row in pixels:
            handle.write(bytes(value for pixel in row for value in pixel))

    total_cells = len(bench_inventory.cells())
    lines = [
        "Figure 6: cells by most frequent destination "
        "(paper: Singapore / Shanghai / Rotterdam)",
        f"this world's dominant hubs (top-1-destination cells owned):",
    ]
    medians = []
    for index, port_id in enumerate(hubs):
        port = port_by_id(port_id)
        cells = owned[port_id]
        distances = [
            haversine_m(*cell_to_latlng(cell), port.lat, port.lon) / 1000.0
            for cell in cells
        ]
        median_km = statistics.median(distances)
        medians.append(median_km)
        lines.append(
            f"  {index+1}. {port.name:<22} {len(cells):>6,} cells "
            f"({len(cells)/total_cells:.1%} of inventory); "
            f"median corridor distance {median_km:,.0f} km"
        )
    lines.append("")
    lines.append("the paper's trio at this scale:")
    for port_id in PAPER_PORTS:
        port = port_by_id(port_id)
        rank = ranked.index(port_id) + 1 if port_id in ranked else None
        count = len(owned.get(port_id, []))
        lines.append(
            f"  {port.name:<22} {count:>6,} cells"
            + (f" (rank {rank} of {len(ranked)})" if rank else " (no cells)")
        )
    lines.append("")
    lines.append(
        "raster: fig6_top_destinations.ppm; shape checks: three hubs own "
        "sparse corridors (<15% of cells each) oriented toward the hub."
    )
    write_report("fig6_top_destination", lines)

    assert len(hubs) == 3
    for port_id in hubs:
        share = len(owned[port_id]) / total_cells
        assert 20 <= len(owned[port_id])
        # Corridors are a minority of the inventory.  (At 48-vessel scale
        # a single long home route can own a fifth of all cells; the paper's
        # 60k-vessel version dilutes every corridor much further.)
        assert share < 0.35
    # Corridors point at their hub, not the antipode.
    for median_km in medians:
        assert median_km < 12_000
