"""Ablation — on-disk format tuning: SSTable block size and checksums.

The query-vs-scan experiment's "hits" depend on how the inventory is laid
out on disk.  This ablation sweeps the block size: small blocks minimise
bytes touched per point lookup but inflate the sparse index; large blocks
amortise the index but drag more cold bytes through each read.  The
classic storage-engine trade, measured on a real inventory.

It also measures what format v3's integrity machinery (per-block CRCs +
checksummed footer) costs against v2: write time, cold per-get latency
(every get verifies its block), and warm-cache per-get latency (cache
hits skip verification, so the overhead must be within noise — the
report asserts < 10 %).
"""

from __future__ import annotations

import time

from benchmarks.conftest import QUICK, write_report
from repro.inventory.backend import SSTableInventory
from repro.inventory.checksum import DEFAULT_ALGO, algo_name
from repro.inventory.keys import GroupingSet
from repro.inventory.sstable import SSTableReader, SSTableWriter, _key_bytes


def test_ablation_sstable_block_size(benchmark, tmp_path_factory,
                                     bench_inventory):
    directory = tmp_path_factory.mktemp("blocks")
    entries = sorted(
        bench_inventory.items(), key=lambda kv: _key_bytes(kv[0])
    )
    probe_keys = [
        key for key, _ in entries if key.grouping_set is GroupingSet.CELL
    ][::37][:100]

    rows = []
    for block_size in (4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024):
        path = directory / f"inv-{block_size}.sst"
        with SSTableWriter(path, block_size=block_size) as writer:
            for key, summary in entries:
                writer.add(key, summary)
        reader = SSTableReader(path)
        start = time.perf_counter()
        touched = 0
        for key in probe_keys:
            assert reader.get(key) is not None
            touched += reader.last_read_bytes
        seconds = time.perf_counter() - start
        rows.append(
            (
                block_size,
                reader.block_count,
                touched / len(probe_keys),
                seconds / len(probe_keys) * 1e3,
                path.stat().st_size,
            )
        )
        reader.close()

    def lookup_default():
        reader = SSTableReader(directory / "inv-16384.sst")
        for key in probe_keys[:10]:
            reader.get(key)
        reader.close()

    benchmark(lookup_default)

    lines = [
        f"SSTable block-size ablation ({len(entries):,} entries, "
        f"{len(probe_keys)} point lookups)",
        f"{'Block':>8} {'Blocks':>8} {'Bytes/get':>10} {'ms/get':>8} "
        f"{'FileMB':>7}",
    ]
    for block_size, blocks, bytes_per_get, ms, size in rows:
        lines.append(
            f"{block_size//1024:>6}KB {blocks:>8,} {bytes_per_get:>10,.0f} "
            f"{ms:>8.3f} {size/1e6:>7.1f}"
        )
    lines.append("")
    lines.append(
        "Shape checks: bytes touched per lookup grows with block size; "
        "block count (index weight) shrinks; file size is ~constant."
    )

    # -- v2 vs v3: what do the checksums cost? ---------------------------------
    repeats = 2 if QUICK else 5
    version_rows = {}
    for version in (2, 3):
        path = directory / f"inv-v{version}.sst"
        write_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            with SSTableWriter(path, version=version) as writer:
                for key, summary in entries:
                    writer.add(key, summary)
            write_times.append(time.perf_counter() - start)
        # Cold gets: every v3 get verifies its block's CRC on the way in.
        cold_times = []
        for _ in range(repeats):
            with SSTableReader(path) as reader:
                start = time.perf_counter()
                for key in probe_keys:
                    reader.get(key)
                cold_times.append(time.perf_counter() - start)
        # Warm gets: the block cache serves verified blocks, so checksum
        # work happens once per block, not once per lookup.
        warm_times = []
        with SSTableInventory(path, cache_blocks=512) as backend:
            for key in probe_keys:  # warm the cache
                backend.get(key)
            for _ in range(repeats):
                start = time.perf_counter()
                for key in probe_keys:
                    backend.get(key)
                warm_times.append(time.perf_counter() - start)
        version_rows[version] = (
            min(write_times),
            min(cold_times) / len(probe_keys) * 1e3,
            min(warm_times) / len(probe_keys) * 1e3,
            path.stat().st_size,
        )

    lines.append("")
    lines.append(
        f"Format v2 vs v3 checksum overhead ({algo_name(DEFAULT_ALGO)}, "
        f"16KB blocks, min of {repeats} repeats)"
    )
    lines.append(
        f"{'Version':>8} {'Write s':>9} {'Cold ms/get':>12} "
        f"{'Warm ms/get':>12} {'FileMB':>7}"
    )
    for version, (write_s, cold_ms, warm_ms, size) in version_rows.items():
        lines.append(
            f"{version:>8} {write_s:>9.3f} {cold_ms:>12.4f} {warm_ms:>12.4f} "
            f"{size/1e6:>7.1f}"
        )
    warm_overhead = version_rows[3][2] / version_rows[2][2] - 1.0
    lines.append("")
    lines.append(
        f"Warm-cache overhead of v3 over v2: {warm_overhead:+.1%} "
        "(cache hits skip verification; must stay < +10%)"
    )
    write_report("ablation_sstable", lines)

    bytes_col = [bytes_per_get for _, _, bytes_per_get, _, _ in rows]
    blocks_col = [blocks for _, blocks, _, _, _ in rows]
    sizes = [size for *_ignore, size in rows]
    assert bytes_col == sorted(bytes_col)
    assert blocks_col == sorted(blocks_col, reverse=True)
    assert max(sizes) < 1.1 * min(sizes)
    assert warm_overhead < 0.10
