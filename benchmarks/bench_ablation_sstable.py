"""Ablation — on-disk format tuning: SSTable block size.

The query-vs-scan experiment's "hits" depend on how the inventory is laid
out on disk.  This ablation sweeps the block size: small blocks minimise
bytes touched per point lookup but inflate the sparse index; large blocks
amortise the index but drag more cold bytes through each read.  The
classic storage-engine trade, measured on a real inventory.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_report
from repro.inventory.keys import GroupingSet
from repro.inventory.sstable import SSTableReader, SSTableWriter, _key_bytes


def test_ablation_sstable_block_size(benchmark, tmp_path_factory,
                                     bench_inventory):
    directory = tmp_path_factory.mktemp("blocks")
    entries = sorted(
        bench_inventory.items(), key=lambda kv: _key_bytes(kv[0])
    )
    probe_keys = [
        key for key, _ in entries if key.grouping_set is GroupingSet.CELL
    ][::37][:100]

    rows = []
    for block_size in (4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024):
        path = directory / f"inv-{block_size}.sst"
        with SSTableWriter(path, block_size=block_size) as writer:
            for key, summary in entries:
                writer.add(key, summary)
        reader = SSTableReader(path)
        start = time.perf_counter()
        touched = 0
        for key in probe_keys:
            assert reader.get(key) is not None
            touched += reader.last_read_bytes
        seconds = time.perf_counter() - start
        rows.append(
            (
                block_size,
                reader.block_count,
                touched / len(probe_keys),
                seconds / len(probe_keys) * 1e3,
                path.stat().st_size,
            )
        )
        reader.close()

    def lookup_default():
        reader = SSTableReader(directory / "inv-16384.sst")
        for key in probe_keys[:10]:
            reader.get(key)
        reader.close()

    benchmark(lookup_default)

    lines = [
        f"SSTable block-size ablation ({len(entries):,} entries, "
        f"{len(probe_keys)} point lookups)",
        f"{'Block':>8} {'Blocks':>8} {'Bytes/get':>10} {'ms/get':>8} "
        f"{'FileMB':>7}",
    ]
    for block_size, blocks, bytes_per_get, ms, size in rows:
        lines.append(
            f"{block_size//1024:>6}KB {blocks:>8,} {bytes_per_get:>10,.0f} "
            f"{ms:>8.3f} {size/1e6:>7.1f}"
        )
    lines.append("")
    lines.append(
        "Shape checks: bytes touched per lookup grows with block size; "
        "block count (index weight) shrinks; file size is ~constant."
    )
    write_report("ablation_sstable", lines)

    bytes_col = [bytes_per_get for _, _, bytes_per_get, _, _ in rows]
    blocks_col = [blocks for _, blocks, _, _, _ in rows]
    sizes = [size for *_ignore, size in rows]
    assert bytes_col == sorted(bytes_col)
    assert blocks_col == sorted(blocks_col, reverse=True)
    assert max(sizes) < 1.1 * min(sizes)
