"""Figure 2 — the methodology illustrated on an English-Channel subset.

Paper: a pictorial walk of the stages (clean → exclude non-trip → enrich →
project → summarize → transitions) on a small Channel dataset.

Reproduced: generate a Channel-region world, run the pipeline, and report
the per-stage record funnel.  Shape checks: each filter stage removes
records, the injected defects are removed by the cleaning stages, and the
summaries/transitions exist at the end.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.geo.polygon import BoundingBox

#: English Channel & approaches (Le Havre, Southampton, London Gateway,
#: Felixstowe, Antwerp, Rotterdam, Dover strait...).
CHANNEL = BoundingBox(48.0, 53.5, -6.0, 6.0)


def test_fig2_stage_funnel(benchmark):
    config = WorldConfig(
        seed=7, n_vessels=14, days=12.0, report_interval_s=300.0,
        region=CHANNEL,
    )
    data = generate_dataset(config)

    result = benchmark.pedantic(
        lambda: build_inventory(
            data.positions, data.fleet, data.ports,
            PipelineConfig(resolution=7),
        ),
        rounds=1, iterations=1,
    )

    funnel = result.funnel
    lines = [
        "Figure 2: methodology stage funnel on an English-Channel subset",
        f"{'Stage':<24} {'Records':>10}  {'Kept':>7}",
    ]
    previous = funnel["raw"]
    for stage in ["raw", "valid_fields", "feasible", "commercial",
                  "with_trip_semantics"]:
        count = funnel[stage]
        lines.append(
            f"{stage:<24} {count:>10,}  {count/funnel['raw']:>6.1%}"
        )
        previous = count
    lines.append(f"{'inventory groups':<24} {funnel['inventory_groups']:>10,}")
    lines.append(f"{'inventory cells':<24} {funnel['inventory_cells']:>10,}")
    lines.append("")
    lines.append(
        f"Injected defects: bad_field={data.defects.bad_field}, "
        f"teleport={data.defects.teleport}, dup={data.defects.duplicate}, "
        f"ooo={data.defects.out_of_order} — all removed by cleaning"
    )
    write_report("fig2_stage_funnel", lines)

    assert funnel["raw"] > funnel["valid_fields"] >= funnel["feasible"]
    assert funnel["raw"] - funnel["valid_fields"] >= data.defects.bad_field
    assert funnel["with_trip_semantics"] > 0
    assert funnel["inventory_cells"] > 50
    del previous
