"""Enforce the benchmark-results contract: every benchmark has twins.

Every ``bench_<name>.py`` writes its table through
:func:`benchmarks.conftest.write_report`, which persists the
human-readable ``results/<name>.txt`` **and** a machine-readable
``results/<name>.json`` twin.  CI's benchmark-smoke job runs this
checker after the quick-mode pass, so a benchmark that stops calling
``write_report`` — or a results file edited by hand until the pair
diverges — fails the build instead of silently shipping a table no
tool can diff.

Checked, per ``bench_*.py`` module:

- both ``results/<name>.txt`` and ``results/<name>.json`` exist;
- the JSON parses and self-identifies (``payload["benchmark"]`` matches
  the file stem);
- the twins agree: the JSON's ``lines`` render exactly the text file.

Exits non-zero listing every violation.  Figure sidecars (``*.ppm``)
ride along unchecked — they are pixel artefacts, not tables.

Usage::

    PYTHONPATH=src python benchmarks/check_results_twins.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"


def expected_names() -> list[str]:
    """One result stem per benchmark module: bench_<name>.py -> <name>."""
    return sorted(
        path.stem[len("bench_"):]
        for path in BENCH_DIR.glob("bench_*.py")
    )


def check(names: list[str] | None = None) -> list[str]:
    """Return every twin violation (empty means the contract holds)."""
    problems: list[str] = []
    for name in names if names is not None else expected_names():
        txt = RESULTS_DIR / f"{name}.txt"
        twin = RESULTS_DIR / f"{name}.json"
        if not txt.exists():
            problems.append(f"{name}: missing {txt.name} (did the run fail?)")
            continue
        if not twin.exists():
            problems.append(
                f"{name}: {txt.name} has no {twin.name} twin — "
                f"write results through write_report()"
            )
            continue
        try:
            payload = json.loads(twin.read_text())
        except json.JSONDecodeError as exc:
            problems.append(f"{name}: {twin.name} is not valid JSON ({exc})")
            continue
        if payload.get("benchmark") != name:
            problems.append(
                f"{name}: {twin.name} self-identifies as "
                f"{payload.get('benchmark')!r}"
            )
            continue
        lines = payload.get("lines")
        if not isinstance(lines, list):
            problems.append(f"{name}: {twin.name} lacks a 'lines' list")
            continue
        if "\n".join(lines) + "\n" != txt.read_text():
            problems.append(
                f"{name}: {txt.name} and {twin.name} disagree — "
                f"regenerate both by re-running the benchmark"
            )
    return problems


def main() -> int:
    problems = check()
    names = expected_names()
    if problems:
        print(f"results-twin check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"results-twin check passed: {len(names)} benchmarks, "
        f"each with a .txt/.json pair in {RESULTS_DIR.relative_to(BENCH_DIR.parent)}/"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
