"""Ablation — resolution selection (§3.3.3 and the paper's future work).

"The resolution level is selected so that cells are large enough to
capture enough AIS messages and preserve statistical significance of the
summaries and at the same time preserve the sense of locality."

Reproduced: sweep resolutions 4–8 on the same archive and report the
trade-off the paper describes — cells (storage) grow ~7× per level while
records-per-cell (statistical mass) shrink ~7×; compression falls with
resolution.  This is the quantitative basis for choosing 6/7.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro import PipelineConfig, build_inventory
from repro.hexgrid import cell_area_km2


def test_ablation_resolution_sweep(benchmark, bench_world):
    resolutions = (4, 5, 6, 7, 8)
    subset = bench_world.positions[:60_000]

    def run_sweep():
        sweep = {}
        for resolution in resolutions:
            result = build_inventory(
                subset, bench_world.fleet, bench_world.ports,
                PipelineConfig(resolution=resolution),
            )
            records = result.funnel["with_trip_semantics"]
            cells = result.funnel["inventory_cells"]
            sweep[resolution] = (records, cells)
        return sweep

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [
        "Resolution ablation: storage vs statistical mass",
        f"{'Res':>4} {'CellArea':>10} {'Cells':>8} {'Rec/Cell':>9} "
        f"{'Compression':>12}",
    ]
    rows = []
    for resolution in resolutions:
        records, cells = sweep[resolution]
        density = records / cells if cells else 0.0
        compression = 1.0 - cells / records if records else 0.0
        rows.append((resolution, cells, density, compression))
        lines.append(
            f"{resolution:>4} {cell_area_km2(resolution):>7.1f}km2 "
            f"{cells:>8,} {density:>9.1f} {compression:>11.2%}"
        )
    lines.append("")
    lines.append(
        "Shape checks: cells grow and records/cell shrink monotonically "
        "with resolution; the 6/7 band balances locality vs mass, as the "
        "paper selects."
    )
    write_report("ablation_resolution", lines)

    cell_counts = [cells for _, cells, _, _ in rows]
    densities = [density for _, _, density, _ in rows]
    compressions = [compression for _, _, _, compression in rows]
    assert cell_counts == sorted(cell_counts)
    assert densities == sorted(densities, reverse=True)
    assert compressions == sorted(compressions, reverse=True)
    # Aperture-7: cell growth per level is bounded by the aperture.
    for coarse, fine in zip(cell_counts, cell_counts[1:]):
        assert fine / coarse < 7.5
