"""Figure 1 — Patterns of Life for global traffic: average speed (left)
and average course (right) per cell.

Paper: 7.3 M res-6 cells rendered as two global maps; speed shows slow
zones near ports/canals vs fast open water, course shows coherent
directional lanes.

Reproduced: the same two rasters from the laptop-scale inventory, written
as PPM images plus shape checks — open-water cells are faster than
port-adjacent cells, and along-lane course coherence is high (cells'
circular course spread is small where traffic is dense).
"""

from __future__ import annotations

import statistics
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_report
from repro.apps import raster_from_inventory, write_ppm
from repro.geo import haversine_m
from repro.geo.polygon import BoundingBox
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet
from repro.world.ports import PORTS

WORLD = BoundingBox(-65.0, 72.0, -180.0, 180.0)


def _near_any_port(lat: float, lon: float, radius_m: float) -> bool:
    return any(
        haversine_m(lat, lon, port.lat, port.lon) < radius_m for port in PORTS
    )


def test_fig1_global_speed_and_course(benchmark, bench_inventory):
    speed_raster = benchmark.pedantic(
        lambda: raster_from_inventory(
            bench_inventory, lambda s: s.mean_speed_kn(), WORLD,
            width=360, height=170,
        ),
        rounds=1, iterations=1,
    )
    course_raster = raster_from_inventory(
        bench_inventory, lambda s: s.mean_course_deg(), WORLD,
        width=360, height=170,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    speed_path = write_ppm(speed_raster, RESULTS_DIR / "fig1_speed.ppm",
                           colormap="speed")
    course_path = write_ppm(course_raster, RESULTS_DIR / "fig1_course.ppm",
                            colormap="course")

    port_speeds = []
    open_speeds = []
    coherent = 0
    dense = 0
    for key, summary in bench_inventory.items():
        if key.grouping_set is not GroupingSet.CELL:
            continue
        lat, lon = cell_to_latlng(key.cell)
        mean_speed = summary.mean_speed_kn()
        if mean_speed is None:
            continue
        if _near_any_port(lat, lon, 60_000.0):
            port_speeds.append(mean_speed)
        else:
            open_speeds.append(mean_speed)
        if summary.records >= 5:
            dense += 1
            if (summary.course.std_deg or 180.0) < 45.0:
                coherent += 1

    lines = [
        "Figure 1: global per-cell average speed & course",
        f"rasters: {Path(speed_path).name}, {Path(course_path).name}",
        f"cells rendered: {len(bench_inventory.cells()):,}",
        f"mean speed near ports (<60 km): "
        f"{statistics.fmean(port_speeds):.1f} kn (n={len(port_speeds)})",
        f"mean speed open water:          "
        f"{statistics.fmean(open_speeds):.1f} kn (n={len(open_speeds)})",
        f"course coherence (spread < 45° in dense cells): "
        f"{coherent}/{dense} = {coherent/dense:.1%}",
        "",
        "Shape checks: open water faster than port zones; majority of dense "
        "cells directionally coherent (the figure's visible lanes).",
    ]
    write_report("fig1_global_patterns", lines)

    assert statistics.fmean(open_speeds) > statistics.fmean(port_speeds)
    assert coherent / dense > 0.5
    assert speed_raster.coverage() > 0.001
