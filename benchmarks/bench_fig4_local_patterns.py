"""Figure 4 — patterns of life in the Baltic Sea.

Paper: three regional maps — trip frequency (routes), average speed
(loitering areas) and average course (traffic separation) — for the
Baltic, 2022.

Reproduced: a Baltic-region world, the same three rasters as PPMs, and the
shape checks the paper's prose makes: routes are sparse corridors (most of
the box is empty), speeds bimodal (slow near ports / fast on lanes), and
opposing traffic directions both present (the separation-scheme pattern).
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR, write_report
from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.apps import raster_from_inventory, write_ppm
from repro.geo.polygon import BoundingBox
from repro.inventory.keys import GroupingSet

BALTIC = BoundingBox(53.5, 61.0, 9.0, 30.5)


def test_fig4_baltic_patterns(benchmark):
    data = generate_dataset(
        WorldConfig(seed=40, n_vessels=24, days=18.0, report_interval_s=300.0,
                    region=BALTIC)
    )
    result = build_inventory(
        data.positions, data.fleet, data.ports, PipelineConfig(resolution=7)
    )
    inventory = result.inventory

    def render_all():
        frequency = raster_from_inventory(
            inventory, lambda s: float(s.trips.cardinality()), BALTIC,
            width=300, height=140,
        )
        speed = raster_from_inventory(
            inventory, lambda s: s.mean_speed_kn(), BALTIC,
            width=300, height=140,
        )
        course = raster_from_inventory(
            inventory, lambda s: s.mean_course_deg(), BALTIC,
            width=300, height=140,
        )
        return frequency, speed, course

    frequency, speed, course = benchmark.pedantic(render_all, rounds=1,
                                                  iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_ppm(frequency, RESULTS_DIR / "fig4_baltic_tripfreq.ppm", "count")
    write_ppm(speed, RESULTS_DIR / "fig4_baltic_speed.ppm", "speed")
    write_ppm(course, RESULTS_DIR / "fig4_baltic_course.ppm", "course")

    slow_cells = 0
    fast_cells = 0
    northish = 0
    southish = 0
    for key, summary in inventory.items():
        if key.grouping_set is not GroupingSet.CELL:
            continue
        mean_speed = summary.mean_speed_kn()
        if mean_speed is not None:
            if mean_speed < 6.0:
                slow_cells += 1
            elif mean_speed > 10.0:
                fast_cells += 1
        mean_course = summary.mean_course_deg()
        if mean_course is not None and summary.records >= 3:
            if mean_course < 90.0 or mean_course > 270.0:
                northish += 1
            elif 90.0 < mean_course < 270.0:
                southish += 1

    lines = [
        "Figure 4: Baltic local patterns (trip frequency / speed / course)",
        f"records: {result.funnel['raw']:,}; "
        f"cells at res 7: {result.funnel['inventory_cells']:,}",
        f"raster lane coverage (trip frequency): {frequency.coverage():.2%} "
        "of the box — routes are thin corridors",
        f"slow cells (<6 kn, loitering/port): {slow_cells}; "
        f"fast lane cells (>10 kn): {fast_cells}",
        f"northbound-ish cells: {northish}; southbound-ish cells: {southish} "
        "— both directions present (traffic separation)",
    ]
    write_report("fig4_local_patterns", lines)

    assert 0.0 < frequency.coverage() < 0.5
    assert slow_cells > 0 and fast_cells > 0
    assert northish > 0 and southish > 0
