"""§4 claim — "99.7 % (res 6) / 98.4 % (res 7) fewer hits than a full
table scan".

Paper: computing Table 3's statistics for one location online requires a
full scan of the archive; the inventory answers from one cell summary.

Reproduced: measure *records touched* and wall time for
  (a) the baseline — recompute the busiest cell's statistics by scanning
      every archived report, and
  (b) the inventory — a point lookup in the persisted SSTable.
Expected shape: hits reduced by ≳99 %, latency by orders of magnitude.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_report
from repro.hexgrid import latlng_to_cell
from repro.inventory import GroupKey, open_inventory, write_inventory
from repro.inventory.keys import GroupingSet
from repro.sketches import MomentsSketch


def _busiest_key(inventory):
    return max(
        (
            (key, summary)
            for key, summary in inventory.items()
            if key.grouping_set is GroupingSet.CELL
        ),
        key=lambda pair: pair[1].records,
    )[0]


def _full_scan_statistics(positions, cell, resolution):
    """The online baseline: scan the archive, keep reports in the cell."""
    speed = MomentsSketch()
    touched = 0
    for report in positions:
        touched += 1
        if latlng_to_cell(report.lat, report.lon, resolution) == cell:
            speed.update(report.sog)
    return speed, touched


def test_query_vs_full_scan(benchmark, tmp_path_factory, bench_world,
                            bench_inventory):
    key = _busiest_key(bench_inventory)
    path = tmp_path_factory.mktemp("inv") / "inventory.sst"
    write_inventory(bench_inventory, path)
    reader = open_inventory(path)

    # Baseline: one full scan, timed once (it is the slow path by design).
    start = time.perf_counter()
    _scan_stats, scan_hits = _full_scan_statistics(
        bench_world.positions, key.cell, bench_inventory.resolution
    )
    scan_seconds = time.perf_counter() - start

    summary = benchmark(lambda: reader.get(key))
    assert summary is not None

    lookup_hits_estimate = max(
        1, reader.last_read_bytes // 600
    )  # entries touched in the one block read
    reduction = 1.0 - lookup_hits_estimate / scan_hits

    start = time.perf_counter()
    for _ in range(100):
        reader.get(key)
    lookup_seconds = (time.perf_counter() - start) / 100

    lines = [
        "Query-vs-scan (paper claim: inventory needs 99.7% fewer hits at res 6)",
        f"{'Path':<26} {'RecordsTouched':>15} {'Latency':>12}",
        f"{'full archive scan':<26} {scan_hits:>15,} {scan_seconds:>10.3f}s",
        f"{'inventory point lookup':<26} {lookup_hits_estimate:>15,} "
        f"{lookup_seconds*1e3:>10.3f}ms",
        "",
        f"Hit reduction: {reduction:.2%} (paper: 99.73%); "
        f"speedup: {scan_seconds / lookup_seconds:,.0f}x",
    ]
    write_report("query_vs_scan", lines)
    reader.close()

    assert reduction > 0.99
    assert lookup_seconds < scan_seconds / 100
