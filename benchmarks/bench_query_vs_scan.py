"""§4 claim — "99.7 % (res 6) / 98.4 % (res 7) fewer hits than a full
table scan".

Paper: computing Table 3's statistics for one location online requires a
full scan of the archive; the inventory answers from one cell summary.

Reproduced as a three-way serving comparison — measure *records touched*
and wall time for
  (a) the baseline — recompute the busiest cell's statistics by scanning
      every archived report;
  (b) the in-memory inventory — a dict lookup in the materialized store
      (fast, but requires the whole store resident);
  (c) SSTable serving — a point lookup straight from the persisted table
      through :class:`SSTableInventory`, cold cache (one block read from
      disk) and warm cache (zero disk reads).
Expected shape: hits reduced by ≳99 % on every inventory path; the warm
cache closes most of the gap between disk and memory serving.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_report
from repro.hexgrid import latlng_to_cell
from repro.inventory import SSTableInventory, write_inventory
from repro.inventory.backend import BlockCache
from repro.inventory.keys import GroupingSet
from repro.sketches import MomentsSketch


def _busiest_key(inventory):
    return max(
        (
            (key, summary)
            for key, summary in inventory.items()
            if key.grouping_set is GroupingSet.CELL
        ),
        key=lambda pair: pair[1].records,
    )[0]


def _full_scan_statistics(positions, cell, resolution):
    """The online baseline: scan the archive, keep reports in the cell."""
    speed = MomentsSketch()
    touched = 0
    for report in positions:
        touched += 1
        if latlng_to_cell(report.lat, report.lon, resolution) == cell:
            speed.update(report.sog)
    return speed, touched


def _timed_lookups(lookup, repeats=100):
    start = time.perf_counter()
    for _ in range(repeats):
        lookup()
    return (time.perf_counter() - start) / repeats


def test_query_vs_full_scan(benchmark, tmp_path_factory, bench_world,
                            bench_inventory):
    key = _busiest_key(bench_inventory)
    path = tmp_path_factory.mktemp("inv") / "inventory.sst"
    write_inventory(bench_inventory, path)
    backend = SSTableInventory(path)

    # (a) Baseline: one full scan, timed once (it is the slow path by design).
    start = time.perf_counter()
    _scan_stats, scan_hits = _full_scan_statistics(
        bench_world.positions, key.cell, bench_inventory.resolution
    )
    scan_seconds = time.perf_counter() - start

    # (b) In-memory inventory point lookup.
    memory_seconds = _timed_lookups(lambda: bench_inventory.get(key))
    assert bench_inventory.get(key) is not None

    # (c1) SSTable, cold cache: every lookup re-reads its one block.
    def cold_lookup():
        backend.cache.clear()
        return backend.get(key)

    cold_counters = backend.cache.counters
    cold_counters.clear()
    cold_seconds = _timed_lookups(cold_lookup)
    cold_misses = cold_counters.value(BlockCache.MISSES)
    assert cold_misses == 100  # exactly one block read per cold lookup
    assert cold_counters.value(BlockCache.HITS) == 0

    # (c2) SSTable, warm cache: the block is already resident.
    summary = benchmark(lambda: backend.get(key))
    assert summary is not None
    cold_counters.clear()
    warm_seconds = _timed_lookups(lambda: backend.get(key))
    assert cold_counters.value(BlockCache.MISSES) == 0
    assert cold_counters.value(BlockCache.HITS) == 100

    from repro.inventory.sstable import _key_bytes

    block_index = backend.reader.find_block(_key_bytes(key))
    block_bytes = len(backend.reader.read_block(block_index))
    lookup_hits_estimate = max(
        1, block_bytes // 600
    )  # entries touched in the one block read
    reduction = 1.0 - lookup_hits_estimate / scan_hits

    lines = [
        "Query-vs-scan (paper claim: inventory needs 99.7% fewer hits at res 6)",
        f"{'Path':<28} {'RecordsTouched':>15} {'Latency':>12}",
        f"{'full archive scan':<28} {scan_hits:>15,} {scan_seconds:>10.3f}s",
        f"{'in-memory inventory':<28} {1:>15,} {memory_seconds*1e6:>10.3f}us",
        f"{'sstable lookup (cold cache)':<28} {lookup_hits_estimate:>15,} "
        f"{cold_seconds*1e3:>10.3f}ms",
        f"{'sstable lookup (warm cache)':<28} {lookup_hits_estimate:>15,} "
        f"{warm_seconds*1e6:>10.3f}us",
        "",
        f"Hit reduction: {reduction:.2%} (paper: 99.73%); "
        f"speedup over scan: memory {scan_seconds / memory_seconds:,.0f}x, "
        f"sstable cold {scan_seconds / cold_seconds:,.0f}x, "
        f"warm {scan_seconds / warm_seconds:,.0f}x",
        f"Warm-cache speedup over cold: {cold_seconds / warm_seconds:.1f}x "
        f"(block cache: 1 miss per cold lookup, 0 per warm)",
    ]
    write_report("query_vs_scan", lines)
    backend.close()

    assert reduction > 0.99
    assert cold_seconds < scan_seconds / 100
    # The cache counters above already prove the mechanism (cold = one
    # block miss per lookup, warm = zero); wall time only smoke-checks it
    # with headroom, because with the OS page cache absorbing the cold
    # read both paths sit at ~microseconds and raw jitter flips a strict
    # comparison.
    assert warm_seconds <= cold_seconds * 1.5
