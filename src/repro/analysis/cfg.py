"""Per-function control-flow graphs for the interprocedural rules.

The PR-5 rules are syntactic: they can see *that* a lock is taken or a
file is opened, but not *which paths* reach the end of the function.
The flow-aware rules (REP008's exception-path leak check) need exactly
that, so this module builds a statement-granularity CFG for one
``def``/``async def``:

- every simple statement is one node; ``if``/``while``/``for``/
  ``with``/``try``/``match`` headers are nodes with structured edges;
- **normal successors** (:attr:`Node.succ`) model fall-through,
  branching, loops, ``return``/``break``/``continue``;
- **exceptional successors** (:attr:`Node.exc`) model "this statement
  raised": the edge leads to the innermost enclosing handler dispatch,
  through any ``finally`` blocks, and ultimately to :attr:`CFG.exit` —
  so "every path out of the function" includes every raise site;
- ``finally`` bodies are built once and shared by all continuations
  (fall-through, exception, ``return``, ``break``, ``continue``).  The
  merge over-approximates — a path-*insensitive* reading of ``finally``
  — which keeps may-analyses sound: merging only ever adds paths;
- ``with contextlib.suppress(...)`` (resolved through the module's
  :class:`~repro.analysis.project.ImportMap`) additionally routes body
  exceptions to the statement *after* the ``with`` — the one context
  manager in the tree that genuinely swallows exceptions.

The graph never leaves the function: calls are plain statements here
(interprocedural effects ride on :mod:`repro.analysis.callgraph`), and
nested ``def``/``class``/``lambda`` bodies are opaque single nodes —
their code does not run where it is written.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.project import ImportMap

#: Dotted names of context managers that swallow body exceptions.
_SUPPRESSORS = ("contextlib.suppress",)

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(slots=True)
class Node:
    """One CFG node: a statement, or a synthetic entry/exit/join point."""

    index: int
    #: The statement this node models (``None`` for synthetic nodes).
    stmt: ast.stmt | None
    #: ``entry``/``exit``/``join`` for synthetic nodes, else the
    #: statement's class name (``Assign``, ``If``, ``Try``…).
    label: str
    #: 1-based source line (0 for synthetic nodes).
    line: int
    #: Normal-flow successors.
    succ: set[int] = field(default_factory=set)
    #: Exceptional successors ("this statement raised").
    exc: set[int] = field(default_factory=set)


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.nodes: list[Node] = []
        self.entry = self._synthetic("entry")
        self.exit = self._synthetic("exit")

    def _synthetic(self, label: str) -> int:
        node = Node(index=len(self.nodes), stmt=None, label=label, line=0)
        self.nodes.append(node)
        return node.index

    def _statement(self, stmt: ast.stmt) -> int:
        node = Node(
            index=len(self.nodes),
            stmt=stmt,
            label=type(stmt).__name__,
            line=stmt.lineno,
        )
        self.nodes.append(node)
        return node.index

    # -- queries -------------------------------------------------------------------

    def statement_nodes(self) -> list[Node]:
        """The non-synthetic nodes, in creation (roughly source) order."""
        return [node for node in self.nodes if node.stmt is not None]

    def predecessors(self) -> dict[int, set[tuple[int, bool]]]:
        """node → set of ``(pred, via_exception)`` edges into it."""
        preds: dict[int, set[tuple[int, bool]]] = {n.index: set() for n in self.nodes}
        for node in self.nodes:
            for succ in node.succ:
                preds[succ].add((node.index, False))
            for succ in node.exc:
                preds[succ].add((node.index, True))
        return preds

    def reachable(self) -> set[int]:
        """Node indices reachable from the entry (normal or exceptional)."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            node = self.nodes[stack.pop()]
            for succ in node.succ | node.exc:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


@dataclass(frozen=True, slots=True)
class _Ctx:
    """Where the non-local control transfers of the current body lead."""

    #: Target of "this statement raised".
    exc: int
    #: Target of ``return`` (the exit, or an enclosing ``finally``).
    ret: int
    #: Target of ``break`` / ``continue`` (``None`` outside loops).
    brk: int | None = None
    cont: int | None = None


class _Builder:
    def __init__(self, cfg: CFG, imports: ImportMap | None) -> None:
        self.cfg = cfg
        self.imports = imports

    def build(self) -> None:
        """Wire the whole function body between entry and exit."""
        ctx = _Ctx(exc=self.cfg.exit, ret=self.cfg.exit)
        frontier = self._stmts(self.cfg.func.body, [self.cfg.entry], ctx)
        self._link(frontier, self.cfg.exit)

    # -- wiring helpers ------------------------------------------------------------

    def _link(self, preds: list[int], target: int) -> None:
        for pred in preds:
            self.cfg.nodes[pred].succ.add(target)

    def _stmts(self, body: list[ast.stmt], preds: list[int], ctx: _Ctx) -> list[int]:
        """Build a statement list; returns the fall-through frontier."""
        for stmt in body:
            preds = self._stmt(stmt, preds, ctx)
        return preds

    def _plain(self, stmt: ast.stmt, preds: list[int], ctx: _Ctx) -> int:
        node = self.cfg._statement(stmt)
        self._link(preds, node)
        self.cfg.nodes[node].exc.add(ctx.exc)
        return node

    # -- the dispatch --------------------------------------------------------------

    def _stmt(self, stmt: ast.stmt, preds: list[int], ctx: _Ctx) -> list[int]:
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, preds, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, ctx)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt, preds, ctx)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds, ctx)
        if isinstance(stmt, ast.Return):
            node = self._plain(stmt, preds, ctx)
            self.cfg.nodes[node].succ.add(ctx.ret)
            return []
        if isinstance(stmt, ast.Raise):
            node = self.cfg._statement(stmt)
            self._link(preds, node)
            self.cfg.nodes[node].exc.add(ctx.exc)
            return []
        if isinstance(stmt, ast.Break):
            node = self._plain(stmt, preds, ctx)
            if ctx.brk is not None:
                self.cfg.nodes[node].succ.add(ctx.brk)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._plain(stmt, preds, ctx)
            if ctx.cont is not None:
                self.cfg.nodes[node].succ.add(ctx.cont)
            return []
        # Everything else — assignments, expressions, nested defs (their
        # bodies are opaque), assert, del, import — is one plain node.
        return [self._plain(stmt, preds, ctx)]

    def _if(self, stmt: ast.If, preds: list[int], ctx: _Ctx) -> list[int]:
        head = self._plain(stmt, preds, ctx)
        then_frontier = self._stmts(stmt.body, [head], ctx)
        if stmt.orelse:
            else_frontier = self._stmts(stmt.orelse, [head], ctx)
        else:
            else_frontier = [head]
        return then_frontier + else_frontier

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, preds: list[int], ctx: _Ctx
    ) -> list[int]:
        head = self._plain(stmt, preds, ctx)
        after = self.cfg._synthetic("join")
        body_ctx = _Ctx(exc=ctx.exc, ret=ctx.ret, brk=after, cont=head)
        body_frontier = self._stmts(stmt.body, [head], body_ctx)
        self._link(body_frontier, head)
        # The loop ends (condition false / iterator exhausted): through
        # the ``else`` clause when there is one.  A ``while True`` still
        # gets the exit edge — conservative, and harmless to may-analyses.
        orelse_frontier = self._stmts(stmt.orelse, [head], ctx) if stmt.orelse else [head]
        self._link(orelse_frontier, after)
        return [after]

    def _with(
        self, stmt: ast.With | ast.AsyncWith, preds: list[int], ctx: _Ctx
    ) -> list[int]:
        head = self._plain(stmt, preds, ctx)
        after = self.cfg._synthetic("join")
        body_ctx = ctx
        if self._suppresses(stmt):
            # ``with contextlib.suppress(...)``: a body exception lands
            # *after* the with as well as (conservatively) propagating.
            supp = self.cfg._synthetic("join")
            self.cfg.nodes[supp].succ.add(after)
            self.cfg.nodes[supp].succ.add(ctx.exc)
            body_ctx = _Ctx(exc=supp, ret=ctx.ret, brk=ctx.brk, cont=ctx.cont)
        body_frontier = self._stmts(stmt.body, [head], body_ctx)
        self._link(body_frontier, after)
        return [after]

    def _suppresses(self, stmt: ast.With | ast.AsyncWith) -> bool:
        if self.imports is None:
            return False
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                resolved = self.imports.resolve(expr.func)
                if resolved is not None and resolved.endswith(_SUPPRESSORS):
                    return True
        return False

    def _try(self, stmt: ast.stmt, preds: list[int], ctx: _Ctx) -> list[int]:
        handlers = getattr(stmt, "handlers", [])
        finalbody = getattr(stmt, "finalbody", [])
        after = self.cfg._synthetic("join")

        if finalbody:
            # One shared ``finally`` subgraph.  Its continuations are
            # over-approximated: normal fall-through, the outer exception
            # target, and every non-local target the protected region can
            # ask for — path-insensitive but sound for may-analyses.
            fin_entry = self.cfg._synthetic("join")
            fin_frontier = self._stmts(finalbody, [fin_entry], ctx)
            self._link(fin_frontier, after)
            self._link(fin_frontier, ctx.exc)
            self._link(fin_frontier, ctx.ret)
            if ctx.brk is not None:
                self._link(fin_frontier, ctx.brk)
            if ctx.cont is not None:
                self._link(fin_frontier, ctx.cont)
            outer_exc: int = fin_entry
            outer_ret: int = fin_entry
            outer_brk = fin_entry if ctx.brk is not None else None
            outer_cont = fin_entry if ctx.cont is not None else None
            normal_exit: int = fin_entry
        else:
            outer_exc = ctx.exc
            outer_ret = ctx.ret
            outer_brk = ctx.brk
            outer_cont = ctx.cont
            normal_exit = after

        if handlers:
            dispatch = self.cfg._synthetic("join")
            body_exc: int = dispatch
        else:
            body_exc = outer_exc

        body_ctx = _Ctx(exc=body_exc, ret=outer_ret, brk=outer_brk, cont=outer_cont)
        body_frontier = self._stmts(stmt.body, preds, body_ctx)

        # ``else`` runs only when the body completed; its exceptions skip
        # the handlers and go straight out (through ``finally``).
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            orelse_ctx = _Ctx(
                exc=outer_exc, ret=outer_ret, brk=outer_brk, cont=outer_cont
            )
            body_frontier = self._stmts(orelse, body_frontier, orelse_ctx)
        self._link(body_frontier, normal_exit)

        if handlers:
            handler_ctx = _Ctx(
                exc=outer_exc, ret=outer_ret, brk=outer_brk, cont=outer_cont
            )
            catch_all = False
            for handler in handlers:
                head = Node(
                    index=len(self.cfg.nodes),
                    stmt=None,
                    label="except",
                    line=handler.lineno,
                )
                self.cfg.nodes.append(head)
                self.cfg.nodes[dispatch].succ.add(head.index)
                handler_frontier = self._stmts(handler.body, [head.index], handler_ctx)
                self._link(handler_frontier, normal_exit)
                catch_all = catch_all or _catches_everything(handler)
            if not catch_all:
                # No handler matched: the exception keeps propagating.
                self.cfg.nodes[dispatch].succ.add(outer_exc)

        return [after]

    def _match(self, stmt: ast.Match, preds: list[int], ctx: _Ctx) -> list[int]:
        head = self._plain(stmt, preds, ctx)
        frontier: list[int] = [head]  # no case matched: fall through
        for case in stmt.cases:
            frontier.extend(self._stmts(case.body, [head], ctx))
        return frontier


def _catches_everything(handler: ast.excepthandler) -> bool:
    """Whether a handler swallows every exception reaching the ``try``.

    Bare ``except:``, ``except BaseException:`` and — pragmatically —
    ``except Exception:`` all count: the CFG drops the "no handler
    matched" propagation edge for them.  (``Exception`` misses
    ``KeyboardInterrupt``; treating an interrupt-triggered leak as a
    finding would make every broad handler in the tree a false
    positive, so the analysis accepts that blind spot.)
    """
    kind = handler.type
    if kind is None:
        return True
    name = kind.attr if isinstance(kind, ast.Attribute) else (
        kind.id if isinstance(kind, ast.Name) else None
    )
    return name in {"BaseException", "Exception"}


def build_cfg(func: FunctionNode, imports: ImportMap | None = None) -> CFG:
    """Build the CFG of one function definition."""
    cfg = CFG(func)
    _Builder(cfg, imports).build()
    return cfg
