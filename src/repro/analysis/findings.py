"""The unit of output: one typed violation of a project invariant.

Every rule emits :class:`Finding`\\ s; the runner sorts, de-duplicates,
suppresses (pragmas), ratchets (baseline) and reports them.  A finding
is frozen and ordered so reports are deterministic regardless of rule
execution order — the same tree always lints identically.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The pseudo-rule id for meta problems the runner itself detects
#: (unparseable modules, malformed pragmas).  Not suppressible.
META_RULE = "REP000"


@dataclass(frozen=True, order=True, slots=True)
class Finding:
    """One invariant violation at a specific source line.

    The message participates in equality: one line can legitimately
    violate the same rule twice (``random.random() + time.time()``) and
    de-duplication must not merge distinct problems.
    """

    #: Path of the offending module, POSIX-style, relative to the
    #: analysis root (e.g. ``inventory/export.py``).
    path: str
    #: 1-based source line the violation anchors to.
    line: int
    #: Rule identifier (``REP001`` … ``REP006``, or ``REP000``).
    rule: str
    #: Human explanation: what is wrong and what the fix direction is.
    message: str

    def render(self) -> str:
        """The canonical one-line text form (``path:line: RULE message``)."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """A JSON-ready view of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
