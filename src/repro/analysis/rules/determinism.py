"""REP004 — the synthetic world and the pipeline stay deterministic.

The whole test and benchmark story rests on ``generate_dataset(seed)``
being a pure function of its config: byte-identical archives, resumable
builds verified by checksums, cross-backend equivalence suites.  One
``time.time()`` or module-level ``random.random()`` in ``world/`` or
``pipeline/`` silently breaks reproducibility *sometimes* — the worst
kind of bug.  The contract: randomness comes from seeded
``random.Random(seed)`` instances threaded through call signatures;
wall-clock time comes from the simulated timeline, never the host.

Flagged inside ``world/`` and ``pipeline/``:

- wall/CPU clocks: ``time.time``/``time_ns``/``monotonic``/
  ``perf_counter`` (+ ``_ns`` forms), ``datetime.now``/``utcnow``,
  ``date.today``;
- calls through the ``random`` *module* (the hidden shared global
  ``Random``): ``random.random()``, ``random.shuffle()``, … —
  constructing a seeded ``random.Random(...)``/instance is the fix, so
  ``random.Random``/``random.getrandbits`` on an *instance* are fine.

The module's ``symtable`` backs the name resolution: a call through a
local variable or parameter that merely shadows the name ``random`` or
``time`` (e.g. ``def sample(random: Random)``) is not a violation.
"""

from __future__ import annotations

import ast
import symtable
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ImportMap, Module, Project
from repro.analysis.rules.base import Rule

_CLOCKS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}
#: ``random.Random`` / ``random.SystemRandom`` *construction* sites: the
#: class object itself is deterministic to reference; an unseeded
#: ``SystemRandom`` instance is still caught by its method calls if one
#: is ever used inline.
_RANDOM_OK = {"random.Random"}


class _ScopeIndex:
    """Maps a function's (name, lineno) to its locally-bound names."""

    def __init__(self, module: Module) -> None:
        self._locals: dict[tuple[str, int], frozenset[str]] = {}
        self._collect(module.table())

    def _collect(self, table: symtable.SymbolTable) -> None:
        if table.get_type() == "function":
            bound = frozenset(
                symbol.get_name()
                for symbol in table.get_symbols()
                if symbol.is_local() and not symbol.is_imported()
            )
            self._locals[(table.get_name(), table.get_lineno())] = bound
        for child in table.get_children():
            self._collect(child)

    def shadows(self, stack: list[ast.AST], name: str) -> bool:
        """Whether the innermost enclosing function rebinds ``name``."""
        for node in reversed(stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound = self._locals.get((node.name, node.lineno), frozenset())
                return name in bound
        return False


class DeterminismRule(Rule):
    """Wall clocks and the global ``random`` module in deterministic code."""

    id = "REP004"
    title = "world/pipeline code must stay seeded and clock-free"

    SCOPE = ("world/", "pipeline/")

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Yield this rule's findings for one module."""
        if not module.rel.startswith(self.SCOPE):
            return
        imports = module.import_map()
        scopes = _ScopeIndex(module)
        yield from self._visit(module, imports, scopes, module.tree.body, [])

    def _visit(
        self,
        module: Module,
        imports: ImportMap,
        scopes: _ScopeIndex,
        body: list[ast.stmt],
        stack: list[ast.AST],
    ) -> Iterator[Finding]:
        pending: list[ast.AST] = list(body)
        while pending:
            node = pending.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # The body is a new scope (shadowing applies there);
                # decorators and defaults evaluate in the current one.
                yield from self._visit(
                    module, imports, scopes, node.body, stack + [node]
                )
                pending.extend(node.decorator_list)
                pending.extend(node.args.defaults)
                pending.extend(d for d in node.args.kw_defaults if d is not None)
                continue
            if isinstance(node, ast.Call):
                yield from self._check_call(module, imports, scopes, node, stack)
            pending.extend(ast.iter_child_nodes(node))

    def _check_call(
        self,
        module: Module,
        imports: ImportMap,
        scopes: _ScopeIndex,
        node: ast.Call,
        stack: list[ast.AST],
    ) -> Iterator[Finding]:
        dotted = imports.resolve(node.func)
        if dotted is None:
            return
        root = dotted.partition(".")[0]
        if dotted in _CLOCKS and not scopes.shadows(stack, root):
            yield self.finding(
                module, node,
                f"{dotted}() reads the host clock; deterministic code takes "
                "its timeline from the simulation inputs",
            )
        elif (
            root == "random"
            and dotted.count(".") == 1
            and dotted not in _RANDOM_OK
            and not scopes.shadows(stack, "random")
        ):
            yield self.finding(
                module, node,
                f"{dotted}() uses the process-global Random; thread a seeded "
                "random.Random(seed) instance through instead",
            )
