"""REP009 — the wire-error code registry, raise sites and docs stay in sync.

The protocol's failure envelope carries a *closed* set of error codes
(``ERR_* = "literal"`` constants in ``server/protocol.py``).  Three
parties depend on that set staying closed and synchronised: server raise
sites (typed ``ProtocolError`` subclasses and ``error_response``
envelopes), client dispatch (retry/backoff decisions keyed on the
code), and the operator triage table in ``docs/OPERATIONS.md`` — every
code must have a "what to do at 3am" row.  Like REP003 (the metric
registry), the sync is checked in **both** directions:

- a declared ``ERR_*`` constant nobody reads is a dead code path (or a
  raise site that regressed to a literal);
- a raw string literal where a code belongs (``ProtocolError("bad_frme",
  …)``) bypasses the registry — typos ship, clients can't dispatch;
- a declared code with no ``` `code` (code) ``` triage row in
  docs/OPERATIONS.md leaves operators blind;
- a triage row for a code that no longer exists documents a ghost.

The docs direction is checked only when ``docs/OPERATIONS.md`` exists
relative to the analysis root's repository (two levels up, same anchor
as the baseline file) — fixture trees without docs check the code-side
invariants alone.  Modules with no ``ERR_*`` declarations contribute
nothing, so the rule is silent on projects without a wire protocol.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project
from repro.analysis.rules.base import Rule, string_literal, terminal_name

#: Call targets whose string-literal code argument is registry-checked:
#: the raw envelope builder (code is argument #2) and the error base
#: class (code is argument #1).
_CODE_CALLS = {"error_response": 1, "ProtocolError": 0}

#: One triage row in docs/OPERATIONS.md: ``| `bad_frame` (code) | … |``.
_DOC_ROW = re.compile(r"`(?P<code>[a-z_]+)`\s*\(code\)")


@dataclass(frozen=True, slots=True)
class _Declaration:
    rel: str
    name: str
    code: str
    line: int


class WireErrorSyncRule(Rule):
    """Error-code registry ⇄ raise sites ⇄ client dispatch ⇄ docs."""

    id = "REP009"
    title = "wire error codes, raise sites and OPERATIONS triage stay in sync"

    def __init__(self) -> None:
        self._declarations: list[_Declaration] = []
        #: Constant names read somewhere other than their declaration.
        self._reads: set[str] = set()
        #: ``(module rel, line, literal)`` at registry-checked call sites.
        self._literals: list[tuple[str, int, str]] = []

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Collect declarations, reads and call-site literals per module."""
        declared_lines: dict[str, int] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                code = string_literal(stmt.value)
                if (
                    isinstance(target, ast.Name)
                    and target.id.startswith("ERR_")
                    and code is not None
                ):
                    self._declarations.append(
                        _Declaration(
                            rel=module.rel,
                            name=target.id,
                            code=code,
                            line=stmt.lineno,
                        )
                    )
                    declared_lines[target.id] = stmt.lineno
        for node in module.walk():
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id.startswith("ERR_"):
                    if node.lineno != declared_lines.get(node.id):
                        self._reads.add(node.id)
            elif isinstance(node, ast.Attribute) and node.attr.startswith("ERR_"):
                self._reads.add(node.attr)
            elif isinstance(node, ast.Call):
                position = _CODE_CALLS.get(terminal_name(node.func) or "")
                if position is not None and len(node.args) > position:
                    literal = string_literal(node.args[position])
                    if literal is not None:
                        self._literals.append(
                            (module.rel, node.args[position].lineno, literal)
                        )
        return iter(())

    def finalize(self, project: Project) -> Iterator[Finding]:
        """Judge the collected registry once every module is in."""
        if not self._declarations:
            return
        codes = {decl.code for decl in self._declarations}
        by_code = {decl.code: decl for decl in self._declarations}

        def _finding(rel: str, line: int, message: str) -> Finding:
            return Finding(path=rel, line=line, rule=self.id, message=message)

        # Registry → code: every constant is read somewhere (a raise site,
        # the client's dispatch, a sibling module).
        for decl in sorted(self._declarations, key=lambda d: (d.rel, d.line)):
            if decl.name not in self._reads:
                yield _finding(
                    decl.rel,
                    decl.line,
                    f"{decl.name} is declared but never raised or dispatched "
                    "on — a dead error code (or a raise site regressed to a "
                    "raw literal); delete it or use the constant",
                )

        # Code → registry: literals at protocol call sites must be declared
        # codes — and should be spelled as the constant regardless.
        for rel, line, literal in sorted(self._literals):
            if literal not in codes:
                yield _finding(
                    rel,
                    line,
                    f"error code literal {literal!r} is not a declared ERR_* "
                    "constant — a typo here ships to clients that cannot "
                    "dispatch on it; add it to the registry or fix the spelling",
                )
            else:
                constant = next(
                    d.name for d in self._declarations if d.code == literal
                )
                yield _finding(
                    rel,
                    line,
                    f"raw error code literal {literal!r} bypasses the "
                    f"registry — use {constant} so renames and audits see "
                    "this site",
                )

        # Docs directions, when the triage table exists.
        docs = _operations_doc(project)
        if docs is None:
            return
        doc_path, documented = docs
        for code in sorted(codes - set(documented)):
            decl = by_code[code]
            yield _finding(
                decl.rel,
                decl.line,
                f"error code {code!r} has no triage row in {doc_path} — "
                "operators hitting it at 3am have no playbook; add a "
                f"`{code}` (code) row",
            )
        anchor = min(self._declarations, key=lambda d: (d.rel, d.line))
        for code in sorted(set(documented) - codes):
            yield _finding(
                anchor.rel,
                1,
                f"{doc_path} documents error code {code!r} (line "
                f"{documented[code]}) but no ERR_* constant declares it — "
                "the triage table describes a ghost; remove the row or "
                "restore the code",
            )


def _operations_doc(project: Project) -> tuple[str, dict[str, int]] | None:
    """``(display path, code → line)`` from the triage table, if present."""
    parents = list(project.root.parents)
    if len(parents) < 2:
        return None
    path = parents[1] / "docs" / "OPERATIONS.md"
    if not path.is_file():
        return None
    documented: dict[str, int] = {}
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _DOC_ROW.finditer(line):
            documented.setdefault(match.group("code"), lineno)
    return "docs/OPERATIONS.md", documented
