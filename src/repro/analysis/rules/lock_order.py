"""REP007 — lock acquisitions must respect the declared order, everywhere.

PR 9's live-ingest backend holds three locks with a documented
hierarchy — ``_maint_lock`` → ``_write_lock`` → ``_mem_lock`` — and the
scheduler deadlock risk it analysed in prose is exactly the bug class
this rule machine-checks: thread A holding lock X while (possibly three
calls deep) acquiring lock Y, while thread B does the reverse.

The rule builds an interprocedural *lock-acquisition graph*:

- a lock is a ``self`` attribute whose name contains ``lock``, acquired
  with ``with self._x_lock:`` (the shared REP002 notion, per item —
  ``with self._a_lock, self._b_lock:`` acquires two locks in order);
- an edge A → B means "B was acquired while A was held": directly via
  nesting or multi-item ``with``, or interprocedurally — a call made
  under A whose callee (transitively, through the
  :mod:`~repro.analysis.callgraph`) acquires B;
- lock identity is ``(module, class, attribute)``, so two classes'
  ``_lock`` attributes never alias.

Findings:

- any **cycle** in the graph (a potential deadlock), reported once per
  cycle at its first edge;
- any edge that **contradicts a declared order** — the
  ``# repro: lock-order outer -> inner`` comment documented in
  docs/STORAGE.md, applied to every class in the declaring module;
- a declaration naming a lock the module never acquires (the
  declaration rotted).

Re-acquiring the *same* lock under itself is not an edge: the tree's
outer locks are ``RLock`` by design.  ``threading.Condition`` members
(``_valve``, ``_cond``) do not match the naming convention and are out
of scope — their wait/notify protocol is REP006's territory, not an
ordering problem this graph can see.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, FuncRef
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project
from repro.analysis.rules.base import Rule, lock_item_attr


@dataclass(frozen=True, slots=True)
class LockId:
    """One lock attribute, addressed project-wide."""

    rel: str
    cls: str
    attr: str

    def label(self) -> str:
        """The human name of this lock, ``Class.attr``."""
        return f"{self.cls}.{self.attr}"


@dataclass(frozen=True, slots=True)
class LockEdge:
    """``dst`` was acquired while ``src`` was held."""

    src: LockId
    dst: LockId
    #: Module and line of the acquisition that closed the edge.
    rel: str
    line: int
    #: Human-readable provenance (direct nesting vs. via a call chain).
    via: str


@dataclass(slots=True)
class LockGraph:
    """The project's lock-acquisition relation (exposed for tests)."""

    edges: list[LockEdge] = field(default_factory=list)
    #: Locks acquired anywhere, keyed by module for declaration checks.
    acquired: dict[str, set[LockId]] = field(default_factory=dict)

    def edge_pairs(self) -> set[tuple[str, str]]:
        """``(src.label, dst.label)`` pairs — the test-friendly view."""
        return {(edge.src.label(), edge.dst.label()) for edge in self.edges}


class LockOrderRule(Rule):
    """Interprocedural lock-order and deadlock-cycle checking."""

    id = "REP007"
    title = "lock acquisition must be acyclic and respect declared lock-order"

    def finalize(self, project: Project) -> Iterator[Finding]:
        """Judge the assembled lock graph once per project."""
        graph = self.collect(project)
        yield from self._check_declarations(project, graph)
        yield from self._check_cycles(graph)

    # -- graph construction --------------------------------------------------------

    def collect(self, project: Project) -> LockGraph:
        """Build the acquisition graph (also used directly by tests)."""
        callgraph = CallGraph.of(project)
        graph = LockGraph()
        # Pass 1: every method's *direct* acquisitions, for transitive sets.
        direct: dict[FuncRef, set[LockId]] = {}
        methods: list[tuple[Module, str, FuncRef, ast.stmt]] = []
        for module in project.modules:
            for stmt in module.tree.body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        ref = FuncRef(
                            rel=module.rel, qualname=f"{stmt.name}.{item.name}"
                        )
                        acquired = _direct_acquisitions(module, stmt.name, item)
                        direct[ref] = acquired
                        graph.acquired.setdefault(module.rel, set()).update(acquired)
                        methods.append((module, stmt.name, ref, item))
        # Pass 2: transitive acquisition set of every function.
        transitive: dict[FuncRef, set[LockId]] = {}
        for ref in callgraph.functions:
            locks = set(direct.get(ref, ()))
            for callee in callgraph.reachable(ref):
                locks |= direct.get(callee, set())
            transitive[ref] = locks
        # Pass 3: walk each method with the held-lock stack, emitting edges.
        for module, cls_name, ref, item in methods:
            _Scanner(
                module, cls_name, callgraph, transitive, graph
            ).scan(item.body, [])
        return graph

    # -- judgements ----------------------------------------------------------------

    def _check_declarations(
        self, project: Project, graph: LockGraph
    ) -> Iterator[Finding]:
        for module in project.modules:
            if not module.lock_orders:
                continue
            known = {lock.attr for lock in graph.acquired.get(module.rel, ())}
            for decl in module.lock_orders:
                missing = sorted(set(decl.names) - known)
                if missing:
                    yield self.finding(
                        module,
                        decl.line,
                        "lock-order declaration names locks this module never "
                        f"acquires: {', '.join(missing)} — the declaration or "
                        "the code has rotted; update whichever is wrong",
                    )
                rank = {name: pos for pos, name in enumerate(decl.names)}
                for edge in graph.edges:
                    if edge.src.rel != module.rel or edge.dst.rel != module.rel:
                        continue
                    src_rank = rank.get(edge.src.attr)
                    dst_rank = rank.get(edge.dst.attr)
                    if src_rank is None or dst_rank is None:
                        continue
                    if src_rank > dst_rank:
                        order = " -> ".join(decl.names)
                        yield Finding(
                            path=edge.rel,
                            line=edge.line,
                            rule=self.id,
                            message=(
                                f"{edge.dst.label()} acquired while holding "
                                f"{edge.src.label()} ({edge.via}) contradicts "
                                f"the declared lock-order {order} — a deadlock "
                                "with any thread locking in the declared "
                                "direction; restructure to acquire "
                                f"{edge.dst.attr} first or release "
                                f"{edge.src.attr} before this call"
                            ),
                        )

    def _check_cycles(self, graph: LockGraph) -> Iterator[Finding]:
        adjacency: dict[LockId, set[LockId]] = {}
        for edge in graph.edges:
            adjacency.setdefault(edge.src, set()).add(edge.dst)
        for cycle in _cycles(adjacency):
            members = set(cycle)
            anchor = min(
                (e for e in graph.edges if e.src in members and e.dst in members),
                key=lambda e: (e.rel, e.line),
            )
            chain = " <-> ".join(lock.label() for lock in cycle)
            yield Finding(
                path=anchor.rel,
                line=anchor.line,
                rule=self.id,
                message=(
                    f"lock acquisition cycle among {chain} — two threads "
                    "entering the cycle at different points deadlock; pick "
                    "one order and declare it (# repro: lock-order …)"
                ),
            )


def _direct_acquisitions(
    module: Module, cls_name: str, method: ast.FunctionDef | ast.AsyncFunctionDef
) -> set[LockId]:
    found: set[LockId] = set()
    stack: list[ast.AST] = list(method.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = lock_item_attr(item)
                if attr is not None:
                    found.add(LockId(rel=module.rel, cls=cls_name, attr=attr))
        stack.extend(ast.iter_child_nodes(node))
    return found


class _Scanner:
    """Walks one method, tracking the held-lock stack and emitting edges."""

    def __init__(
        self,
        module: Module,
        cls_name: str,
        callgraph: CallGraph,
        transitive: dict[FuncRef, set[LockId]],
        graph: LockGraph,
    ) -> None:
        self.module = module
        self.cls_name = cls_name
        self.callgraph = callgraph
        self.transitive = transitive
        self.graph = graph

    def scan(self, body: list[ast.stmt], held: list[LockId]) -> None:
        """Walk a statement list with ``held`` as the acquisition stack."""
        for stmt in body:
            self._stmt(stmt, held)

    def _edge(self, src: LockId, dst: LockId, line: int, via: str) -> None:
        if src == dst:
            return  # re-entrant acquisition of the same (R)Lock
        self.graph.edges.append(
            LockEdge(src=src, dst=dst, rel=self.module.rel, line=line, via=via)
        )

    def _stmt(self, stmt: ast.stmt, held: list[LockId]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scope: does not run under our locks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                self._calls_in(item.context_expr, held)
                attr = lock_item_attr(item)
                if attr is None:
                    continue
                lock = LockId(rel=self.module.rel, cls=self.cls_name, attr=attr)
                for outer in held:
                    self._edge(outer, lock, stmt.lineno, "acquired directly")
                held.append(lock)
                pushed += 1
            self.scan(stmt.body, held)
            if pushed:
                del held[len(held) - pushed:]
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child, held)
            elif isinstance(child, ast.expr):
                self._calls_in(child, held)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                for grandchild in ast.iter_child_nodes(child):
                    if isinstance(grandchild, ast.stmt):
                        self._stmt(grandchild, held)
                    elif isinstance(grandchild, ast.expr):
                        self._calls_in(grandchild, held)

    def _calls_in(self, expr: ast.expr, held: list[LockId]) -> None:
        if not held:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                continue
            if not isinstance(node, ast.Call):
                continue
            ref = self.callgraph.resolve_call(self.module, self.cls_name, node.func)
            if ref is None:
                continue
            for lock in sorted(
                self.transitive.get(ref, ()), key=lambda l: (l.rel, l.cls, l.attr)
            ):
                for outer in held:
                    self._edge(
                        outer,
                        lock,
                        node.lineno,
                        f"via call to {ref.qualname}()",
                    )


def _cycles(adjacency: dict[LockId, set[LockId]]) -> list[tuple[LockId, ...]]:
    """Elementary cycles, one representative per strongly-connected set."""
    # Tarjan SCCs (iterative); any SCC with ≥2 nodes contains a cycle —
    # report the SCC's nodes in a deterministic rotation.
    index: dict[LockId, int] = {}
    low: dict[LockId, int] = {}
    on_stack: set[LockId] = set()
    stack: list[LockId] = []
    counter = [0]
    sccs: list[list[LockId]] = []

    def strongconnect(root: LockId) -> None:
        """Iterative Tarjan visit rooted at ``root``."""
        work = [(root, iter(sorted(adjacency.get(root, ()), key=_lock_key)))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ, iter(sorted(adjacency.get(succ, ()), key=_lock_key)))
                    )
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: list[LockId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    sccs.append(scc)

    for node in sorted(adjacency, key=_lock_key):
        if node not in index:
            strongconnect(node)

    cycles: list[tuple[LockId, ...]] = []
    for scc in sccs:
        ordered = sorted(scc, key=_lock_key)
        cycles.append(tuple(ordered))
    return cycles


def _lock_key(lock: LockId) -> tuple[str, str, str]:
    return (lock.rel, lock.cls, lock.attr)
