"""The rule plugin interface and shared AST helpers.

A rule is a class with an ``id``, a ``title`` and two hooks:

- :meth:`Rule.check` runs once per module and yields findings local to
  that module;
- :meth:`Rule.finalize` runs once per project, after every module has
  been checked — cross-module rules (the registry-sync check) collect
  state in ``check`` and judge it here.

Rules never import or execute project code; everything they know comes
from the parsed trees in :class:`~repro.analysis.project.Project`.  New
rules register by appending to ``repro.analysis.runner.DEFAULT_RULES``
(see ``docs/ANALYSIS.md`` for a worked example).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project


class Rule:
    """Base class every invariant check derives from."""

    #: Stable identifier, ``REPnnn`` — what pragmas and baselines key on.
    id: ClassVar[str] = "REP999"
    #: One-line summary shown in reports and ``docs/ANALYSIS.md``.
    title: ClassVar[str] = ""

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Yield this rule's findings for one module (default: none)."""
        return iter(())

    def finalize(self, project: Project) -> Iterator[Finding]:
        """Yield project-wide findings after all modules ran (default: none)."""
        return iter(())

    def finding(self, module: Module, node: ast.AST | int, message: str) -> Finding:
        """Build a finding anchored at an AST node (or explicit line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(path=module.rel, line=line, rule=self.id, message=message)


def terminal_name(func: ast.expr) -> str | None:
    """The rightmost identifier of a call target (``a.b.c`` → ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def attribute_base(node: ast.expr) -> str | None:
    """For ``self.attr`` (possibly wrapped in subscripts/attributes),
    the ``self``-attribute being touched, else ``None``.

    ``self._blocks`` → ``_blocks``; ``self._blocks[i]`` → ``_blocks``;
    ``self._aggregates[name][0]`` → ``_aggregates``; ``other.x`` → ``None``.
    """
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    if not isinstance(current, ast.Attribute):
        return None
    value = current.value
    while isinstance(value, (ast.Attribute, ast.Subscript)):
        if isinstance(value, ast.Subscript):
            value = value.value
            continue
        current = value
        value = current.value
    if isinstance(value, ast.Name) and value.id == "self":
        return current.attr
    return None


def walk_excluding_nested_defs(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class defs.

    Code inside a nested ``def`` does not run where it is written — lock
    context and async-ness do not carry into it — so structural rules
    scan each definition's own body only.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def lock_item_attr(item: ast.withitem) -> str | None:
    """The ``self`` lock attribute one ``with``-item acquires, else ``None``.

    Matches ``with self.<attr containing "lock">:`` — optionally called,
    e.g. ``self._lock.acquire_read()`` styles are out of scope.  Shared by
    REP002 (lock discipline) and REP007 (lock order) so both rules agree
    on what counts as a lock, *per item*: ``with self._a_lock,
    self._b_lock:`` names two distinct locks, in acquisition order.
    """
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    ):
        return expr.attr
    return None


def string_literal(node: ast.expr) -> str | None:
    """The value of a plain string-literal expression, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def fstring_prefix(node: ast.expr) -> str | None:
    """The leading literal text of an f-string, else ``None``.

    ``f"server.requests.{kind}"`` → ``"server.requests."`` — enough to
    match a dynamically-registered metric-name family.
    """
    if not isinstance(node, ast.JoinedStr):
        return None
    head: list[str] = []
    for part in node.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            head.append(part.value)
        else:
            break
    prefix = "".join(head)
    return prefix or None
