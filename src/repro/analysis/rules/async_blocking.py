"""REP006 — no blocking calls on the server's event loop.

The server's architecture note (PR 2) is explicit: the event loop owns
sockets and nothing else; anything that blocks — file I/O, sleeps, sync
clients — runs on the worker pool via ``run_in_executor``.  One stray
``time.sleep`` or ``open()`` inside an ``async def`` stalls *every*
connection, which is exactly the class of regression a reviewer is
worst at spotting (the code still works, just not concurrently).

Flagged inside ``async def`` bodies in ``server/`` modules:

- ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
- ``open(...)`` / ``io.open`` / ``Path.open`` / ``fsio.open_file`` —
  blocking file I/O belongs on the executor;
- constructing or calling the sync :class:`InventoryClient` — it speaks
  blocking sockets; inside the server process use the service directly;
- ``os.system`` / ``subprocess.*`` — processes block the loop.

Nested ``def``\\ s inside an ``async def`` are skipped: they execute
wherever they are *called* (typically handed to the executor), not on
the loop.

The scope is every module under ``server/`` — including the sharding
tier (``server/sharding.py``, ``server/router.py``).  The router runs
its blocking :class:`InventoryClient` fan-out on the fronting server's
*worker pool* (plain ``def`` methods the service calls via
``run_in_executor``), which is exactly why its modules contain no
``async def`` at all; should one grow an ``async def`` that speaks the
sync client or the filesystem directly, this rule flags it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ImportMap, Module, Project
from repro.analysis.rules.base import Rule, terminal_name, walk_excluding_nested_defs

_BLOCKING_DOTTED = {
    "time.sleep": "use `await asyncio.sleep(...)` instead",
    "os.system": "run it on the executor (or not at all in the server)",
}
_BLOCKING_MODULES = {"subprocess"}
_OPENERS = {"open", "io.open", "builtins.open"}
_SYNC_CLIENT = "InventoryClient"


class AsyncBlockingRule(Rule):
    """Blocking calls inside ``async def`` in the serving layer."""

    id = "REP006"
    title = "async server code must not block the event loop"

    SCOPE = ("server/",)

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Yield this rule's findings for one module."""
        if not module.rel.startswith(self.SCOPE):
            return
        imports = module.import_map()
        for node in module.walk():
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(module, imports, node)

    def _check_coroutine(
        self, module: Module, imports: ImportMap, coroutine: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        where = f"in async def {coroutine.name}()"
        for node in walk_excluding_nested_defs(coroutine.body):
            if isinstance(node, ast.Name) and node.id == _SYNC_CLIENT:
                yield self.finding(
                    module, node,
                    f"sync {_SYNC_CLIENT} used {where}: it blocks on sockets; "
                    "call the service directly or use the executor",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted is None:
                continue
            if dotted in _BLOCKING_DOTTED:
                yield self.finding(
                    module, node,
                    f"{dotted}() blocks the event loop {where}; "
                    f"{_BLOCKING_DOTTED[dotted]}",
                )
            elif dotted in _OPENERS or dotted.endswith(".open_file") or (
                terminal_name(node.func) == "open"
                and isinstance(node.func, ast.Attribute)
            ):
                yield self.finding(
                    module, node,
                    f"blocking file I/O ({dotted}) {where}; "
                    "run it on the executor (run_in_executor)",
                )
            elif dotted.partition(".")[0] in _BLOCKING_MODULES:
                yield self.finding(
                    module, node,
                    f"{dotted}() spawns a process and blocks the loop {where}; "
                    "use asyncio.create_subprocess_* or the executor",
                )
