"""REP003 — span/counter names and the observability registry agree.

PR 4 introduced :mod:`repro.obs.registry`: every span and counter name
is declared once, with a meaning, and ``docs/METRICS.md`` is generated
from the registry.  The runtime half of that contract (doc == registry)
is tested; this rule closes the *static* half in both directions:

- **used ⇒ declared** — every name literal handed to ``obs.span(...)``,
  ``@traced(...)``, ``CounterSet.increment(...)`` or ``Span.add(...)``
  must be declared via ``registry.register_span``/``register_counter``
  somewhere in the tree.  Name families built with f-strings
  (``f"server.requests.{kind}"``) must match a declared dynamic family
  (a registration whose name is itself an f-string with the same
  literal head);
- **declared ⇒ used** — a declared literal must be referenced: either
  its constant (``SPAN_X = register_span(...)``, class attributes
  included) is read somewhere in the project, or the literal itself
  appears at a call site.  Dead metrics rot docs and dashboards.

Resolution is name-based and deliberately conservative: arguments that
are neither string literals, f-strings, nor references to a registered
constant are skipped (``span(label)`` inside the tracer's own decorator
machinery), and ``.add(...)``/``.increment(...)`` literals are only
checked when they look like metric names (contain a dot) so ordinary
``set.add("x")`` calls never trip the rule.

The declaration collector is public (:func:`collect_declarations`):
``tests/test_docs_metrics_sync.py`` uses it to discover the registered
name set statically instead of keeping its own hand-maintained list.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project
from repro.analysis.rules.base import (
    Rule,
    fstring_prefix,
    string_literal,
    terminal_name,
)

_REGISTER_FUNCS = {"register_span", "register_counter"}
_SPAN_FUNCS = {"span", "traced"}
_COUNTER_FUNCS = {"increment", "add"}


@dataclass(frozen=True, slots=True)
class Declaration:
    """One ``register_span``/``register_counter`` call site."""

    #: The literal name, or the f-string head for dynamic families.
    name: str
    #: ``True`` when the registration name is an f-string (a family).
    dynamic: bool
    #: ``span`` or ``counter``.
    kind: str
    #: Module (root-relative POSIX path) and line of the registration.
    path: str
    line: int
    #: The constant the name was assigned to (``SPAN_X = register_…``).
    symbol: str | None


@dataclass(frozen=True, slots=True)
class Usage:
    """One name-bearing call site (span open, counter bump)."""

    path: str
    line: int
    #: Literal name, f-string head, or resolved constant symbol.
    text: str
    #: ``literal`` | ``prefix`` | ``symbol``.
    form: str


def collect_declarations(project: Project) -> list[Declaration]:
    """Every registry registration in the project, statically discovered."""
    declarations: list[Declaration] = []
    for module in project.modules:
        for node in module.walk():
            # Catch both bare registrations and ``X = register_…(...)``.
            value: ast.expr | None = None
            symbol: str | None = None
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    symbol = targets[0].id
            elif isinstance(node, ast.Expr):
                value = node.value
            if not isinstance(value, ast.Call):
                continue
            func_name = terminal_name(value.func)
            if func_name not in _REGISTER_FUNCS or not value.args:
                continue
            kind = "span" if func_name == "register_span" else "counter"
            name_arg = value.args[0]
            literal = string_literal(name_arg)
            if literal is not None:
                declarations.append(
                    Declaration(literal, False, kind, module.rel, value.lineno, symbol)
                )
                continue
            prefix = fstring_prefix(name_arg)
            if prefix is not None:
                declarations.append(
                    Declaration(prefix, True, kind, module.rel, value.lineno, symbol)
                )
    return declarations


def declared_names(project: Project) -> tuple[set[str], set[str]]:
    """(literal names, dynamic family heads) declared across the project."""
    literals, prefixes = set(), set()
    for declaration in collect_declarations(project):
        (prefixes if declaration.dynamic else literals).add(declaration.name)
    return literals, prefixes


def _collect_usages(project: Project) -> list[Usage]:
    usages: list[Usage] = []
    for module in project.modules:
        for node in module.walk():
            call = node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # ``@traced("name")`` — the decorator is the call site.
                for decorator in node.decorator_list:
                    if (
                        isinstance(decorator, ast.Call)
                        and terminal_name(decorator.func) == "traced"
                        and decorator.args
                    ):
                        usages.extend(_usage_of(module, decorator, decorator.args[0]))
                continue
            if not isinstance(call, ast.Call) or not call.args:
                continue
            func_name = terminal_name(call.func)
            if func_name == "span" or func_name == "traced":
                usages.extend(_usage_of(module, call, call.args[0]))
            elif func_name in _COUNTER_FUNCS and isinstance(call.func, ast.Attribute):
                usages.extend(
                    _usage_of(module, call, call.args[0], dotted_literals_only=True)
                )
    return usages


def _usage_of(
    module: Module,
    call: ast.Call,
    arg: ast.expr,
    dotted_literals_only: bool = False,
) -> Iterator[Usage]:
    literal = string_literal(arg)
    if literal is not None:
        if dotted_literals_only and "." not in literal:
            return  # plain set.add("x") / non-metric increment
        yield Usage(module.rel, call.lineno, literal, "literal")
        return
    prefix = fstring_prefix(arg)
    if prefix is not None:
        yield Usage(module.rel, call.lineno, prefix, "prefix")
        return
    symbol = terminal_name(arg) if isinstance(arg, (ast.Name, ast.Attribute)) else None
    if symbol is not None:
        yield Usage(module.rel, call.lineno, symbol, "symbol")


def _symbol_reads(project: Project) -> dict[str, int]:
    """How often each identifier is *read* anywhere in the project."""
    reads: dict[str, int] = {}
    for module in project.modules:
        for node in module.walk():
            name: str | None = None
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                name = node.id
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                name = node.attr
            if name is not None:
                reads[name] = reads.get(name, 0) + 1
    return reads


class RegistrySyncRule(Rule):
    """Span/counter names drifting from the observability registry."""

    id = "REP003"
    title = "metric names must be registered, and registered names used"

    def finalize(self, project: Project) -> Iterator[Finding]:
        """Judge the whole project's declarations against its usages."""
        declarations = collect_declarations(project)
        literals = {d.name for d in declarations if not d.dynamic}
        prefixes = {d.name for d in declarations if d.dynamic}
        symbols = {d.symbol for d in declarations if d.symbol is not None}
        usages = _collect_usages(project)

        # used ⇒ declared
        used_literals: set[str] = set()
        used_symbols: set[str] = set()
        for usage in usages:
            if usage.form == "literal":
                used_literals.add(usage.text)
                if usage.text not in literals and not any(
                    usage.text.startswith(p) for p in prefixes
                ):
                    yield Finding(
                        path=usage.path,
                        line=usage.line,
                        rule=self.id,
                        message=(
                            f"name {usage.text!r} is not declared in the "
                            "observability registry — add a register_span/"
                            "register_counter with a meaning (obs/registry.py "
                            "generates docs/METRICS.md from it)"
                        ),
                    )
            elif usage.form == "prefix":
                if not any(
                    usage.text.startswith(p) or p.startswith(usage.text)
                    for p in prefixes
                ):
                    yield Finding(
                        path=usage.path,
                        line=usage.line,
                        rule=self.id,
                        message=(
                            f"dynamic name family {usage.text!r}* has no "
                            "matching dynamic registration — register the "
                            "family's concrete names (closed sets) or a "
                            "prefix entry"
                        ),
                    )
            elif usage.form == "symbol":
                used_symbols.add(usage.text)

        # declared ⇒ used
        reads = _symbol_reads(project)
        for declaration in declarations:
            if declaration.dynamic:
                continue
            if declaration.name in used_literals:
                continue
            if declaration.symbol is not None:
                # the defining assignment itself reads nothing; any other
                # read of the constant (incl. attribute form) counts.
                if reads.get(declaration.symbol, 0) > 0 or (
                    declaration.symbol in used_symbols
                ):
                    continue
            yield Finding(
                path=declaration.path,
                line=declaration.line,
                rule=self.id,
                message=(
                    f"{declaration.kind} {declaration.name!r} is registered "
                    "but never emitted anywhere — remove the registration "
                    "(and regenerate docs/METRICS.md) or wire it up"
                ),
            )
