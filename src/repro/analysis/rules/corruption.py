"""REP005 — storage corruption is never silently swallowed.

PR 3's fault matrix asserts "typed-error-or-recovered, never silent":
when a checksum fails, the caller gets a :class:`CorruptionError` (or
its :class:`SSTableError` parent), a typed wire error, or an explicit
recovery decision — never a quietly dropped exception that turns disk
rot into wrong answers.  This rule finds ``except`` clauses that catch
either type and then *discard* it.

A handler catching ``CorruptionError``/``SSTableError`` is compliant
when it does at least one of:

- re-raise (bare ``raise`` or raising a new typed error),
- ``return`` (it answered with something deliberate),
- *use the bound exception* (``except SSTableError as exc:`` where
  ``exc`` is read — recording ``str(exc)`` into a report object counts:
  the information survived).

Everything else — ``pass``, logging-free ``continue``, catch-and-fall-
through — is a violation.  Deliberate skip-and-continue loops (salvage)
carry a ``# repro: allow[REP005] <reason>`` pragma so the decision is
visible at the catch site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project
from repro.analysis.rules.base import Rule, terminal_name, walk_excluding_nested_defs

_CORRUPTION_TYPES = {"CorruptionError", "SSTableError"}


def _caught_types(handler: ast.ExceptHandler) -> set[str]:
    """The corruption-taxonomy names this handler catches, if any."""
    node = handler.type
    if node is None:
        return set()
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    caught = set()
    for expr in exprs:
        name = terminal_name(expr)
        if name in _CORRUPTION_TYPES:
            caught.add(name)
    return caught


class SwallowedCorruptionRule(Rule):
    """``except CorruptionError/SSTableError`` that discards the error."""

    id = "REP005"
    title = "corruption errors must be re-raised, returned or recorded"

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Yield this rule's findings for one module."""
        for node in module.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_types(node)
            if not caught:
                continue
            if self._handles_deliberately(node):
                continue
            names = "/".join(sorted(caught))
            yield self.finding(
                module, node,
                f"{names} caught and discarded — re-raise it, return a "
                "typed error, or record the bound exception "
                "(fault contract: typed-error-or-recovered, never silent)",
            )

    @staticmethod
    def _handles_deliberately(handler: ast.ExceptHandler) -> bool:
        uses_binding = False
        for node in walk_excluding_nested_defs(handler.body):
            if isinstance(node, (ast.Raise, ast.Return)):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                uses_binding = True
        return uses_binding
