"""REP001 — every durable write goes through the ``fsio`` seam.

PR 3 made crash safety a protocol (temp → fsync → rename → dir fsync)
and centralised it in :mod:`repro.inventory.fsio`; the fault-injection
harness interposes on that one seam.  A raw ``open(path, "w")`` or
``os.replace`` in the storage or pipeline layers therefore re-opens the
exact torn-write/partial-rename windows the seam closed — *and* hides
the write from the fault matrix, so no test would ever catch it.  PR 8's
write-ahead log raised the stakes: every live-ingest append travels
through ``fsio.open_file(path, "ab")`` / ``fsio.fsync_file`` in
:mod:`repro.inventory.wal`, so a raw append there would silently forfeit
both the durability ack and the crash-matrix coverage at once.

Scope: ``inventory/`` and ``pipeline/`` modules, minus ``fsio.py``
itself (the seam is where the raw calls are supposed to live).  Flagged:

- ``open(..., mode)`` with a writing mode (``w``/``a``/``x``/``+``) or a
  mode the rule cannot prove is read-only;
- ``os.rename`` / ``os.replace`` / ``os.link`` — rename is the commit
  point of the protocol and must come with its fsyncs;
- ``Path.write_text`` / ``Path.write_bytes`` / ``.open(...)`` in a
  writing mode.

Reads (``open(path, "rb")``) are untouched.  A deliberate non-durable
write (scratch/spill files) is allowlisted in place with
``# repro: allow[REP001] <reason>``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ImportMap, Module, Project
from repro.analysis.rules.base import Rule, string_literal, terminal_name

_RENAMES = {"os.rename", "os.replace", "os.link"}
_WRITE_METHODS = {"write_text", "write_bytes"}
_FIX = "route it through repro.inventory.fsio (atomic temp→fsync→rename)"


def _mode_writes(call: ast.Call) -> bool | None:
    """Whether the ``open``-style call's mode writes.

    ``True``/``False`` when the mode is a literal; ``None`` when there is
    a mode argument the rule cannot read statically (treated as writing —
    the seam exists precisely so callers do not have to be trusted).
    """
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False  # default mode "r"
    literal = string_literal(mode)
    if literal is None:
        return None
    return any(flag in literal for flag in "wax+")


class DurableWriteRule(Rule):
    """Raw filesystem writes outside the ``fsio`` seam in storage code."""

    id = "REP001"
    title = "durable writes must go through the fsio seam"

    SCOPE = ("inventory/", "pipeline/")
    EXEMPT = ("inventory/fsio.py",)

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Yield this rule's findings for one module."""
        if not module.rel.startswith(self.SCOPE) or module.rel in self.EXEMPT:
            return
        imports = module.import_map()
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            name = terminal_name(node.func)
            if dotted in ("open", "io.open", "builtins.open") or (
                name == "open" and isinstance(node.func, ast.Attribute)
            ):
                writes = _mode_writes(node)
                if writes is None:
                    yield self.finding(
                        module,
                        node,
                        "file opened with a mode the rule cannot prove is "
                        f"read-only; {_FIX} or pass a literal read mode",
                    )
                elif writes:
                    yield self.finding(
                        module, node,
                        f"raw writing open() outside the fsio seam; {_FIX}",
                    )
            elif dotted in _RENAMES:
                yield self.finding(
                    module, node,
                    f"raw {dotted}() is a commit point without its fsyncs; {_FIX}",
                )
            elif name in _WRITE_METHODS and isinstance(node.func, ast.Attribute):
                yield self.finding(
                    module, node,
                    f".{name}() writes in place, not crash-safely; {_FIX}",
                )
