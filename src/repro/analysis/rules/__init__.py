"""The invariant rules (REP001–REP006) and the :class:`Rule` interface."""

from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.base import Rule
from repro.analysis.rules.corruption import SwallowedCorruptionRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.durability import DurableWriteRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.registry_sync import RegistrySyncRule

__all__ = [
    "Rule",
    "DurableWriteRule",
    "LockDisciplineRule",
    "RegistrySyncRule",
    "DeterminismRule",
    "SwallowedCorruptionRule",
    "AsyncBlockingRule",
]
