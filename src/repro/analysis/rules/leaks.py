"""REP008 — acquired resources must be released on *every* path out.

PR 8's mid-recovery backend leak — an ``SSTableReader`` opened, then an
exception between the open and the ``close`` — was caught only because
the ``-W error`` CI lane turns ``ResourceWarning`` fatal, i.e. at
runtime, on the lucky test.  This rule catches the shape statically: a
resource acquired into a local variable must reach ``close()`` /
``release()`` on **every** CFG path out of the function — including the
exceptional edges the happy-path reviewer never traces — unless
ownership escapes.

What counts as an acquisition (resolved through the import map, so
aliasing cannot hide one): ``open(...)``, ``fsio.open_file(...)``,
``socket.create_connection(...)`` / ``socket.socket(...)``, the
``SSTableReader`` / ``WalWriter`` constructors, and refcount/pool
``*.acquire(...)`` calls — assigned to a plain local name.

Ownership **escapes** (the function is no longer responsible) when the
name is returned or yielded, assigned onward (attribute, container,
another name), or passed as a call argument — e.g. the router hands the
pooled client to ``op(client)``, whose release paths REP008 does not
second-guess.  ``with`` acquisitions are inherently safe and never
tracked; ``with x:`` and guarded ``if x: x.close()`` shapes release.

The analysis is a forward may-leak dataflow over
:mod:`repro.analysis.cfg`: exceptional edges carry the pre-acquisition
state for the acquiring statement itself (if ``open`` raises there is
nothing to close) and the post-release state for releasing statements.
Scope: ``inventory/`` and ``server/`` — the subsystems that own OS
resources; analysis modules hold no file handles past a function call.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.cfg import CFG, FunctionNode, build_cfg
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project
from repro.analysis.rules.base import Rule, terminal_name, walk_excluding_nested_defs

#: Module path prefixes this rule applies to.
_SCOPE = ("inventory/", "server/")

#: Resolved dotted names whose call acquires a resource.
_ACQUIRE_EXACT = {"open", "socket.socket"}
_ACQUIRE_SUFFIX = ("fsio.open_file", "socket.create_connection")
#: Constructor terminal names that acquire (project resource classes).
_ACQUIRE_CLASSES = {"SSTableReader", "WalWriter"}
#: Method terminal names that release the receiver.
_RELEASE_METHODS = {"close", "release"}


@dataclass(slots=True)
class _Acquisition:
    name: str
    line: int
    what: str  # human-readable description of the acquiring call


class ResourceLeakRule(Rule):
    """Resources must reach close/release on every path, or escape."""

    id = "REP008"
    title = "resources must be released on every path, including exceptions"

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Yield leak findings for every function in scope."""
        if not module.rel.startswith(_SCOPE):
            return
        for node in module.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, func: FunctionNode
    ) -> Iterator[Finding]:
        acquisitions = self._acquisitions(module, func)
        if not acquisitions:
            return
        owned = [
            acq
            for acq in acquisitions
            if not _escapes(func, acq.name)
        ]
        if not owned:
            return
        cfg = build_cfg(func, module.import_map())
        leaked = _may_leak_at_exit(cfg, {acq.name for acq in owned})
        for acq in owned:
            if acq.name in leaked:
                yield self.finding(
                    module,
                    acq.line,
                    f"{acq.name} ({acq.what}) may never be closed on some "
                    f"path out of {func.name}() — an exception between this "
                    "acquisition and the release leaks the resource; close "
                    "it in a finally block or acquire it with `with`",
                )

    def _acquisitions(
        self, module: Module, func: FunctionNode
    ) -> list[_Acquisition]:
        found: list[_Acquisition] = []
        for node in walk_excluding_nested_defs(func.body):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            what = _acquiring_call(module, node.value)
            if what is not None:
                found.append(
                    _Acquisition(name=target.id, line=node.lineno, what=what)
                )
        return found


def _acquiring_call(module: Module, value: ast.expr) -> str | None:
    """A description of the acquisition ``value`` performs, else ``None``."""
    if not isinstance(value, ast.Call):
        return None
    resolved = module.import_map().resolve(value.func)
    if resolved is not None:
        if resolved in _ACQUIRE_EXACT or resolved.endswith(_ACQUIRE_SUFFIX):
            return f"from {resolved}()"
        terminal = resolved.rsplit(".", 1)[-1]
        if terminal in _ACQUIRE_CLASSES:
            return f"a {terminal}"
    name = terminal_name(value.func)
    if name in _ACQUIRE_CLASSES:
        return f"a {name}"
    if name == "acquire" and isinstance(value.func, ast.Attribute):
        return "a refcounted/pooled acquire()"
    return None


def _escapes(func: FunctionNode, name: str) -> bool:
    """Whether ownership of ``name`` leaves the function syntactically.

    A bare ``Name`` load escapes unless it is the receiver of an
    attribute access (``x.close()``, ``x.read()`` — receiver use keeps
    ownership) or a release-call argument (``pool.release(x)``).
    """
    parent_of: dict[ast.AST, ast.AST] = {}
    for node in walk_excluding_nested_defs(func.body):
        for child in ast.iter_child_nodes(node):
            parent_of.setdefault(child, node)
    for node in walk_excluding_nested_defs(func.body):
        if not (isinstance(node, ast.Name) and node.id == name):
            continue
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            continue
        parent = parent_of.get(node)
        if parent is None:
            continue
        if isinstance(parent, ast.Attribute) and parent.value is node:
            continue  # receiver use: x.close(), x.fileno()
        if isinstance(parent, ast.Call) and node in parent.args:
            if (
                terminal_name(parent.func) in _RELEASE_METHODS
                and parent.func is not node
            ):
                continue  # pool.release(x) is the release, not an escape
            return True
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            continue  # `with x:` — the with releases it
        if isinstance(parent, (ast.Compare, ast.BoolOp, ast.UnaryOp)):
            continue  # truthiness/None tests don't transfer ownership
        if isinstance(parent, ast.If) and parent.test is node:
            continue
        if isinstance(parent, ast.While) and parent.test is node:
            continue
        return True
    return False


def _may_leak_at_exit(cfg: CFG, names: set[str]) -> set[str]:
    """Forward may-analysis: names still open on some path to the exit."""
    gens: list[set[str]] = [set() for _ in cfg.nodes]
    kills: list[set[str]] = [set() for _ in cfg.nodes]
    for node in cfg.statement_nodes():
        stmt = node.stmt
        assert stmt is not None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and target.id in names:
                if isinstance(stmt.value, ast.Call):
                    gens[node.index].add(target.id)
        kills[node.index] = _released_names(stmt, names)

    preds = cfg.predecessors()
    reachable = cfg.reachable()
    state: list[set[str] | None] = [None] * len(cfg.nodes)
    state[cfg.entry] = set()
    work = [idx for idx in range(len(cfg.nodes)) if idx in reachable]
    while work:
        idx = work.pop(0)
        if idx == cfg.entry:
            incoming: set[str] = set()
        else:
            incoming = set()
            seen_pred = False
            for pred, via_exc in preds[idx]:
                pred_state = state[pred]
                if pred_state is None:
                    continue
                seen_pred = True
                out = (pred_state - kills[pred]) | (
                    set() if via_exc else gens[pred]
                )
                incoming |= out
            if not seen_pred:
                continue
        if state[idx] is not None and incoming <= state[idx]:
            continue
        state[idx] = (state[idx] or set()) | incoming
        for succ_idx in cfg.nodes[idx].succ | cfg.nodes[idx].exc:
            if succ_idx in reachable and succ_idx not in work:
                work.append(succ_idx)

    exit_state = state[cfg.exit]
    return exit_state if exit_state is not None else set()


def _released_names(stmt: ast.stmt, names: set[str]) -> set[str]:
    """Names this statement releases (header-only for compound stmts)."""
    released: set[str] = set()
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # x.close() / x.release()
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _RELEASE_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in names
            ):
                released.add(func.value.id)
            # pool.release(x)
            if terminal_name(func) in _RELEASE_METHODS:
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in names:
                        released.add(arg.id)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id in names:
                released.add(expr.id)  # `with x:` closes x on exit
    if isinstance(stmt, ast.If):
        # Guarded release: `if x: x.close()` / `if x is not None: x.close()`
        # — on the skip path the name was never (successfully) acquired.
        tested = {
            n.id
            for n in ast.walk(stmt.test)
            if isinstance(n, ast.Name) and n.id in names
        }
        if tested:
            closed = {
                f.value.id
                for n in ast.walk(stmt)
                if isinstance(n, ast.Call)
                and isinstance((f := n.func), ast.Attribute)
                and f.attr in _RELEASE_METHODS
                and isinstance(f.value, ast.Name)
                and f.value.id in names
            }
            released |= tested & closed
    return released


def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated *at* a CFG node (not its nested body)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, *((ast.TryStar,) if hasattr(ast, "TryStar") else ()))):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [
        child
        for child in ast.iter_child_nodes(stmt)
        if isinstance(child, ast.expr)
    ]
