"""REP002 — attributes guarded by a lock somewhere are guarded everywhere.

PR 2's thread-safety hardening established the repo's locking
convention: shared mutable state on a class is paired with a
``threading.Lock`` attribute whose name contains ``lock``, and every
mutation happens inside ``with self._lock:``.  The static race
heuristic: if **any** method of a class mutates ``self.attr`` under a
lock, a lock-free mutation of the same attribute in a **different**
method is almost certainly a data race — the author already decided the
attribute is shared, then forgot one site.

What counts as a mutation of ``self.attr``:

- assignment / augmented assignment / deletion (including through
  subscripts: ``self._blocks[k] = v``);
- calls to known container mutators on it (``append``, ``update``,
  ``popitem``, ``move_to_end``, …).

Exemptions: ``__init__``/``__new__``/``__post_init__`` (the object is
not shared while it is being constructed) and the method that holds the
locked mutation itself (a method may intentionally mutate before
exposing, e.g. building a value it then publishes under its lock).
Nested functions and classes are not attributed to the enclosing
method's lock context.  False positives (single-threaded-by-contract
paths) are allowlisted with ``# repro: allow[REP002] <reason>``.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project
from repro.analysis.rules.base import Rule, attribute_base

_MUTATORS = {
    "append", "appendleft", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "popleft", "remove", "discard", "clear", "sort",
    "reverse", "move_to_end",
}
_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__"}

#: ``record(attr, line, locked)`` — one mutation site observed.
_Record = Callable[[str, int, bool], None]
#: ``visit(body, depth)`` — recurse into a statement list.
_Visit = Callable[[list[ast.stmt], int], None]


def _is_lock_item(item: ast.withitem) -> bool:
    """``with self.<something containing 'lock'>:`` (optionally called)."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    )


@dataclass
class _AttrSites:
    """Where one ``self.`` attribute is mutated across a class."""

    locked_methods: set[str] = field(default_factory=set)
    unlocked: list[tuple[str, int]] = field(default_factory=list)  # (method, line)


class LockDisciplineRule(Rule):
    """Lock-free mutation of an attribute that is locked elsewhere."""

    id = "REP002"
    title = "lock-guarded attributes must be mutated under their lock everywhere"

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Yield this rule's findings for one module."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: Module, cls: ast.ClassDef) -> Iterator[Finding]:
        sites: dict[str, _AttrSites] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_method(stmt, sites)
        for attr, attr_sites in sorted(sites.items()):
            if not attr_sites.locked_methods:
                continue
            for method, line in attr_sites.unlocked:
                if method in attr_sites.locked_methods or method in _EXEMPT_METHODS:
                    continue
                locked_in = ", ".join(sorted(attr_sites.locked_methods))
                yield self.finding(
                    module,
                    line,
                    f"self.{attr} is mutated without its lock in {method}() "
                    f"but under a lock in {locked_in}() — a data race; "
                    "take the same lock here",
                )

    def _scan_method(
        self,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        sites: dict[str, _AttrSites],
    ) -> None:
        def _record(attr: str, line: int, locked: bool) -> None:
            attr_sites = sites.setdefault(attr, _AttrSites())
            if locked:
                attr_sites.locked_methods.add(method.name)
            else:
                attr_sites.unlocked.append((method.name, line))

        def _visit(body: list[ast.stmt], depth: int) -> None:
            for stmt in body:
                self._scan_statement(stmt, depth, _record, _visit)

        _visit(method.body, 0)

    def _scan_statement(
        self, stmt: ast.stmt, depth: int, record: _Record, visit: _Visit
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # a nested scope: its body does not run under our locks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            held = any(_is_lock_item(item) for item in stmt.items)
            for item in stmt.items:
                self._scan_expr(item.context_expr, depth, record)
            visit(stmt.body, depth + 1 if held else depth)
            return
        locked = depth > 0
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.Delete):
                targets = stmt.targets
            else:
                targets = [stmt.target]
            for target in targets:
                for element in self._flatten_target(target):
                    attr = attribute_base(element)
                    if attr is not None:
                        record(attr, element.lineno, locked)
        # mutator calls + nested statements anywhere inside this statement
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_statement(child, depth, record, visit)
            elif isinstance(child, ast.expr):
                self._scan_expr(child, depth, record)
            elif hasattr(child, "body") or isinstance(
                child, (ast.excepthandler, ast.match_case)
            ):
                for grandchild in ast.iter_child_nodes(child):
                    if isinstance(grandchild, ast.stmt):
                        self._scan_statement(grandchild, depth, record, visit)
                    elif isinstance(grandchild, ast.expr):
                        self._scan_expr(grandchild, depth, record)

    def _scan_expr(self, expr: ast.expr, depth: int, record: _Record) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                attr = attribute_base(node.func.value)
                if attr is not None:
                    record(attr, node.lineno, depth > 0)

    @staticmethod
    def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from LockDisciplineRule._flatten_target(element)
        elif isinstance(target, ast.Starred):
            yield from LockDisciplineRule._flatten_target(target.value)
        else:
            yield target
