"""REP002 — attributes guarded by a lock somewhere are guarded everywhere.

PR 2's thread-safety hardening established the repo's locking
convention: shared mutable state on a class is paired with a
``threading.Lock`` attribute whose name contains ``lock``, and every
mutation happens inside ``with self._lock:``.  The static race
heuristic: if **any** method of a class mutates ``self.attr`` under a
lock, a lock-free mutation of the same attribute in a **different**
method is almost certainly a data race — the author already decided the
attribute is shared, then forgot one site.

The rule tracks lock *identity*, not just "a lock was held": ``with
self._a_lock, self._b_lock:`` acquires two named locks in item order
(the shared :func:`~repro.analysis.rules.base.lock_item_attr` notion
REP007 uses too), nested ``with`` blocks stack, and findings name the
lock(s) the other sites held — so the fix is "take ``self._mem_lock``
here", not "take some lock".  A **split guard** — the same attribute
mutated under *disjoint* lock sets in different methods — is reported
as well: two sites that each hold "a" lock but never the *same* lock
exclude nobody.

What counts as a mutation of ``self.attr``:

- assignment / augmented assignment / deletion (including through
  subscripts: ``self._blocks[k] = v``);
- calls to known container mutators on it (``append``, ``update``,
  ``popitem``, ``move_to_end``, …).

Exemptions: ``__init__``/``__new__``/``__post_init__`` (the object is
not shared while it is being constructed) and the method that holds the
locked mutation itself (a method may intentionally mutate before
exposing, e.g. building a value it then publishes under its lock).
Nested functions and classes are not attributed to the enclosing
method's lock context.  False positives (single-threaded-by-contract
paths) are allowlisted with ``# repro: allow[REP002] <reason>``.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project
from repro.analysis.rules.base import Rule, attribute_base, lock_item_attr

_MUTATORS = {
    "append", "appendleft", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "popleft", "remove", "discard", "clear", "sort",
    "reverse", "move_to_end",
}
_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__"}

#: ``record(attr, line, held)`` — one mutation site and the locks held there.
_Record = Callable[[str, int, tuple[str, ...]], None]
#: ``visit(body, held)`` — recurse into a statement list.
_Visit = Callable[[list[ast.stmt], list[str]], None]


@dataclass
class _AttrSites:
    """Where one ``self.`` attribute is mutated across a class."""

    #: method name → every lock set held at a locked mutation site.
    locked_methods: dict[str, list[frozenset[str]]] = field(default_factory=dict)
    unlocked: list[tuple[str, int]] = field(default_factory=list)  # (method, line)


class LockDisciplineRule(Rule):
    """Lock-free mutation of an attribute that is locked elsewhere."""

    id = "REP002"
    title = "lock-guarded attributes must be mutated under their lock everywhere"

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Yield this rule's findings for one module."""
        for node in module.walk():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: Module, cls: ast.ClassDef) -> Iterator[Finding]:
        sites: dict[str, _AttrSites] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_method(stmt, sites)
        for attr, attr_sites in sorted(sites.items()):
            if not attr_sites.locked_methods:
                continue
            guards = sorted(
                set().union(*(
                    set().union(*lock_sets)
                    for lock_sets in attr_sites.locked_methods.values()
                ))
            )
            guard_text = ", ".join(f"self.{name}" for name in guards)
            for method, line in attr_sites.unlocked:
                if method in attr_sites.locked_methods or method in _EXEMPT_METHODS:
                    continue
                locked_in = ", ".join(sorted(attr_sites.locked_methods))
                yield self.finding(
                    module,
                    line,
                    f"self.{attr} is mutated without its lock in {method}() "
                    f"but under {guard_text} in {locked_in}() — a data race; "
                    "take the same lock here",
                )
            yield from self._check_split_guard(module, attr, attr_sites)

    def _check_split_guard(
        self, module: Module, attr: str, attr_sites: _AttrSites
    ) -> Iterator[Finding]:
        """Two methods lock the attr — but never with a common lock."""
        per_method: dict[str, set[str]] = {
            method: set().union(*lock_sets)
            for method, lock_sets in attr_sites.locked_methods.items()
        }
        methods = sorted(per_method)
        for i, left in enumerate(methods):
            for right in methods[i + 1 :]:
                if per_method[left] & per_method[right]:
                    continue
                left_locks = ", ".join(sorted(per_method[left]))
                right_locks = ", ".join(sorted(per_method[right]))
                yield self.finding(
                    module,
                    1,
                    f"self.{attr} is guarded by disjoint locks: {left}() "
                    f"holds {left_locks} while {right}() holds {right_locks} "
                    "— the two sites exclude nobody; guard the attribute "
                    "with one lock",
                )
                return  # one split-guard finding per attribute is enough

    def _scan_method(
        self,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        sites: dict[str, _AttrSites],
    ) -> None:
        def _record(attr: str, line: int, held: tuple[str, ...]) -> None:
            attr_sites = sites.setdefault(attr, _AttrSites())
            if held:
                attr_sites.locked_methods.setdefault(method.name, []).append(
                    frozenset(held)
                )
            else:
                attr_sites.unlocked.append((method.name, line))

        def _visit(body: list[ast.stmt], held: list[str]) -> None:
            for stmt in body:
                self._scan_statement(stmt, held, _record, _visit)

        _visit(method.body, [])

    def _scan_statement(
        self, stmt: ast.stmt, held: list[str], record: _Record, visit: _Visit
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # a nested scope: its body does not run under our locks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                # Evaluating item N happens holding items 1..N-1 — a
                # mutator call inside item N's expression is attributed
                # to the locks already acquired, per item.
                self._scan_expr(item.context_expr, held, record)
                attr = lock_item_attr(item)
                if attr is not None:
                    held.append(attr)
                    pushed += 1
            visit(stmt.body, held)
            if pushed:
                del held[len(held) - pushed:]
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.Delete):
                targets = stmt.targets
            else:
                targets = [stmt.target]
            for target in targets:
                for element in self._flatten_target(target):
                    attr = attribute_base(element)
                    if attr is not None:
                        record(attr, element.lineno, tuple(held))
        # mutator calls + nested statements anywhere inside this statement
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_statement(child, held, record, visit)
            elif isinstance(child, ast.expr):
                self._scan_expr(child, held, record)
            elif hasattr(child, "body") or isinstance(
                child, (ast.excepthandler, ast.match_case)
            ):
                for grandchild in ast.iter_child_nodes(child):
                    if isinstance(grandchild, ast.stmt):
                        self._scan_statement(grandchild, held, record, visit)
                    elif isinstance(grandchild, ast.expr):
                        self._scan_expr(grandchild, held, record)

    def _scan_expr(
        self, expr: ast.expr, held: list[str], record: _Record
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                attr = attribute_base(node.func.value)
                if attr is not None:
                    record(attr, node.lineno, tuple(held))

    @staticmethod
    def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from LockDisciplineRule._flatten_target(element)
        elif isinstance(target, ast.Starred):
            yield from LockDisciplineRule._flatten_target(target.value)
        else:
            yield target
