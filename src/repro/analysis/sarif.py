"""SARIF 2.1.0 rendering of lint findings.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
CI surfaces as inline annotations: one ``run`` with a ``tool.driver``
describing the rule catalogue and one ``result`` per finding.  The shape
here is the minimal conforming subset — schema/version header, rules
with ids and short descriptions, results with ``ruleId``, ``level``,
``message`` and a physical location (root-relative URI + start line) —
plus ``baselineState`` so a viewer can distinguish a *new* violation
from one the ratchet still tolerates.

Output is deterministic: results arrive already sorted from the runner
and nothing here depends on time, host or absolute paths.
"""

from __future__ import annotations

import json

from repro.analysis.baseline import Ratchet
from repro.analysis.findings import Finding


def render_sarif(ratchet: Ratchet, rule_titles: dict[str, str]) -> str:
    """The findings as one SARIF 2.1.0 log (a JSON string)."""
    results = [
        _result(finding, baseline_state="new")
        for finding in sorted(ratchet.new)
    ] + [
        _result(finding, baseline_state="unchanged")
        for finding in sorted(ratchet.baselined)
    ]
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": title},
        }
        for rule_id, title in sorted(rule_titles.items())
    ]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def _result(finding: Finding, baseline_state: str) -> dict:
    return {
        "ruleId": finding.rule,
        "level": "error" if baseline_state == "new" else "note",
        "message": {"text": finding.message},
        "baselineState": baseline_state,
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }
