"""Git-diff-aware finding selection for ``repro lint --changed``.

On a pull request only the touched files matter to the author; the
full-tree run still happens on ``main``.  The subtlety: cross-module
rules (REP003's registry, REP007's lock graph, REP009's error codes)
*cannot* analyze a file subset — a constant deleted in one file breaks
an invariant whose finding lands in another.  So ``--changed`` always
**analyzes** the whole tree and then **reports** only findings anchored
in files the diff touched.  A finding in an untouched file caused by a
touched one is the full-tree lane's job; the PR lane optimises feedback
latency, not coverage.

Changed files come from ``git diff --name-only <base>`` (plus untracked
files), resolved against the repository that contains the analysis
root.  Any git failure — not a repo, unknown base, no git binary —
degrades to "everything changed", i.e. a plain full report: the flag
can only ever *hide* noise, never break a run.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from repro.analysis.findings import Finding


def changed_files(root: Path, base: str | None = None) -> set[str] | None:
    """Root-relative POSIX paths the working tree changed, or ``None``.

    ``None`` means "selection unavailable — treat everything as changed".
    ``base`` is a git rev to diff against (CI passes the PR base);
    without one the diff is against ``HEAD`` (uncommitted work).
    """
    diff_cmd = ["git", "diff", "--name-only"]
    if base is not None:
        diff_cmd.append(base)
    listed: list[str] = []
    for cmd in (
        diff_cmd,
        # --full-name: ls-files is cwd-relative by default, but diff is
        # toplevel-relative; normalise both before re-anchoring below.
        ["git", "ls-files", "--others", "--exclude-standard", "--full-name"],
    ):
        try:
            proc = subprocess.run(
                cmd,
                cwd=root,
                capture_output=True,
                text=True,
                timeout=30,
                check=True,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        listed.extend(line.strip() for line in proc.stdout.splitlines())

    # git paths are repo-relative; findings are analysis-root-relative.
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    repo = Path(top)
    resolved_root = root.resolve()
    selected: set[str] = set()
    for entry in listed:
        if not entry:
            continue
        absolute = (repo / entry).resolve()
        try:
            selected.add(absolute.relative_to(resolved_root).as_posix())
        except ValueError:
            continue  # outside the analysis root (docs, CI, tests)
    return selected


def filter_findings(
    findings: list[Finding], selected: set[str] | None
) -> list[Finding]:
    """Keep findings anchored in selected files (``None`` keeps all)."""
    if selected is None:
        return findings
    return [finding for finding in findings if finding.path in selected]
