"""``repro.analysis`` — the project-invariant static checker.

A stdlib-only (``ast`` + ``symtable``) analysis framework that turns the
repo's system-wide contracts into machine-checked invariants:

=======  ==============================================================
REP001   durable writes go through the ``inventory/fsio`` atomic seam
REP002   lock-guarded attributes are mutated under their lock everywhere
REP003   span/counter names and ``obs/registry.py`` agree, both ways
REP004   ``world``/``pipeline`` stay seeded and wall-clock-free
REP005   ``CorruptionError``/``SSTableError`` are never swallowed
REP006   ``async def`` server code never blocks the event loop
=======  ==============================================================

Run it as ``repro lint`` or ``python -m repro.analysis``; the committed
``lint-baseline.json`` ratchet means counts can only ever go down.  Rule
catalogue, pragma workflow and how to write a new rule: ``docs/ANALYSIS.md``.
"""

from repro.analysis.findings import Finding
from repro.analysis.project import ImportMap, Module, Project
from repro.analysis.runner import (
    DEFAULT_RULES,
    analyze,
    lint,
    main,
    rule_titles,
)
from repro.analysis.rules.base import Rule

__all__ = [
    "Finding",
    "Module",
    "Project",
    "ImportMap",
    "Rule",
    "DEFAULT_RULES",
    "analyze",
    "lint",
    "main",
    "rule_titles",
]
