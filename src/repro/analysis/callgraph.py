"""A conservative project-wide call graph for the interprocedural rules.

REP007 needs to know that ``_flush_sealed`` — holding ``_maint_lock`` —
calls ``_retire_wal``, which takes ``_write_lock``: a lock-order edge
that no per-method scan can see.  This module resolves the call edges
that can be resolved *soundly without executing anything*:

- ``self.method(...)`` → the method of the lexically enclosing class
  (single-class resolution; inheritance is not chased — the tree's
  concurrency-bearing classes are flat);
- ``name(...)`` → a top-level function or class of the same module, or
  whatever the module's :class:`~repro.analysis.project.ImportMap` says
  ``name`` was imported as;
- ``mod.func(...)`` / dotted chains → resolved through the import map to
  another project module's top-level function or class;
- ``ClassName(...)`` → that class's ``__init__``.

Everything else — method calls on locals (``reader.close()``), callbacks,
``getattr`` — is *dynamic* and deliberately unresolved: the graph
under-approximates calls, so rules built on it under-report rather than
hallucinate.  Reachability is a memoized depth-first closure over the
edge map; visited-set cut-off makes recursive and mutually-recursive
call chains terminate with the (correct, conservative) cyclic answer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.cfg import FunctionNode
from repro.analysis.project import Module, Project
from repro.analysis.rules.base import walk_excluding_nested_defs


@dataclass(frozen=True, slots=True)
class FuncRef:
    """A function or method, addressed project-wide."""

    #: Root-relative POSIX path of the defining module.
    rel: str
    #: ``function`` for top-level defs, ``Class.method`` for methods.
    qualname: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.rel}:{self.qualname}"


class CallGraph:
    """Definitions, resolved call edges, and memoized reachability."""

    def __init__(
        self,
        project: Project,
        package: str,
        functions: dict[FuncRef, FunctionNode],
        edges: dict[FuncRef, frozenset[FuncRef]],
    ) -> None:
        self._project = project
        self._package = package
        self.functions = functions
        self.edges = edges
        self._reach: dict[FuncRef, frozenset[FuncRef]] = {}

    # -- construction --------------------------------------------------------------

    @classmethod
    def of(cls, project: Project) -> "CallGraph":
        """The project's call graph, built once and cached on the project."""
        cached = getattr(project, "_callgraph", None)
        if isinstance(cached, CallGraph):
            return cached
        graph = cls._build(project)
        project._callgraph = graph  # type: ignore[attr-defined]
        return graph

    @classmethod
    def _build(cls, project: Project) -> "CallGraph":
        functions: dict[FuncRef, FunctionNode] = {}
        scopes: list[tuple[Module, str | None, FuncRef, FunctionNode]] = []
        for module in project.modules:
            for name, cls_name, node in _definitions(module):
                ref = FuncRef(rel=module.rel, qualname=name)
                functions[ref] = node
                scopes.append((module, cls_name, ref, node))
        package = _package_name(project)
        edges: dict[FuncRef, frozenset[FuncRef]] = {}
        for module, cls_name, ref, node in scopes:
            edges[ref] = frozenset(
                _resolve_calls(project, package, module, cls_name, node, functions)
            )
        return cls(project, package, functions, edges)

    # -- queries -------------------------------------------------------------------

    def direct(self, ref: FuncRef) -> frozenset[FuncRef]:
        """The resolved direct callees of one function."""
        return self.edges.get(ref, frozenset())

    def resolve_call(
        self, module: Module, cls_name: str | None, func: ast.expr
    ) -> FuncRef | None:
        """Resolve one call expression's target at a specific site.

        Same resolution as graph construction — rules that need the
        *location* of a call (REP007's held-lock call sites) use this
        instead of the per-function edge sets.
        """
        return _resolve_one(
            self._project, self._package, module, cls_name, func, self.functions
        )

    def reachable(self, ref: FuncRef) -> frozenset[FuncRef]:
        """Every function transitively callable from ``ref``.

        Excludes ``ref`` itself unless a cycle leads back to it.
        Memoization plus the visited set bounds the walk even on
        mutually-recursive graphs.
        """
        cached = self._reach.get(ref)
        if cached is not None:
            return cached
        seen: set[FuncRef] = set()
        stack = list(self.direct(ref))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.direct(current))
        result = frozenset(seen)
        self._reach[ref] = result
        return result


def _package_name(project: Project) -> str:
    """The import-name of the analysis root (``src/repro`` → ``repro``)."""
    return project.root.name


def _definitions(
    module: Module,
) -> list[tuple[str, str | None, FunctionNode]]:
    """``(qualname, class name | None, node)`` for the module's defs.

    Top-level functions and the direct methods of top-level classes;
    nested defs are opaque to the graph (they resolve as dynamic).
    """
    found: list[tuple[str, str | None, FunctionNode]] = []
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append((stmt.name, None, stmt))
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    found.append((f"{stmt.name}.{item.name}", stmt.name, item))
    return found


def _resolve_calls(
    project: Project,
    package: str,
    module: Module,
    cls_name: str | None,
    node: FunctionNode,
    functions: dict[FuncRef, FunctionNode],
) -> set[FuncRef]:
    callees: set[FuncRef] = set()
    for child in walk_excluding_nested_defs(node.body):
        for expr in ast.iter_child_nodes(child):
            if not isinstance(expr, ast.expr):
                continue
            for call in ast.walk(expr):
                if isinstance(call, ast.Call):
                    target = _resolve_one(
                        project, package, module, cls_name, call.func, functions
                    )
                    if target is not None:
                        callees.add(target)
    return callees


def _resolve_one(
    project: Project,
    package: str,
    module: Module,
    cls_name: str | None,
    func: ast.expr,
    functions: dict[FuncRef, FunctionNode],
) -> FuncRef | None:
    # self.method(...) — the enclosing class's own method.
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and cls_name is not None
    ):
        ref = FuncRef(rel=module.rel, qualname=f"{cls_name}.{func.attr}")
        return ref if ref in functions else None

    # Bare name: same-module function/class first, then imports.
    if isinstance(func, ast.Name):
        local = FuncRef(rel=module.rel, qualname=func.id)
        if local in functions:
            return local
        init = FuncRef(rel=module.rel, qualname=f"{func.id}.__init__")
        if init in functions:
            return init

    resolved = module.import_map().resolve(func)
    if resolved is None:
        return None
    return _resolve_dotted(project, package, resolved, functions)


def _resolve_dotted(
    project: Project,
    package: str,
    dotted: str,
    functions: dict[FuncRef, FunctionNode],
) -> FuncRef | None:
    """``repro.inventory.fsio.open_file`` → the project def it names."""
    prefix = package + "."
    if not dotted.startswith(prefix):
        return None
    parts = dotted[len(prefix):].split(".")
    # Longest module-path prefix wins: supports both ``pkg.mod.func`` and
    # ``pkg.mod.Class`` (→ __init__); deeper chains are dynamic.
    for cut in range(len(parts) - 1, 0, -1):
        rel = "/".join(parts[:cut]) + ".py"
        if project.module(rel) is None:
            rel = "/".join(parts[:cut]) + "/__init__.py"
            if project.module(rel) is None:
                continue
        symbol = ".".join(parts[cut:])
        ref = FuncRef(rel=rel, qualname=symbol)
        if ref in functions:
            return ref
        init = FuncRef(rel=rel, qualname=f"{symbol}.__init__")
        if init in functions:
            return init
        return None
    return None
