"""Rendering lint results: one line per finding, or machine JSON.

Text mode is for humans at a terminal (and reads like a compiler:
``path:line: RULE message``); JSON mode is for CI — the
``lint-invariants`` job archives it, and its shape is stable:
``{root, ok, findings: [{rule, path, line, message, baselined}], counts,
stale, summary}``.
"""

from __future__ import annotations

import json

from repro.analysis.baseline import Ratchet, counts_of
from repro.analysis.findings import Finding


def render_text(ratchet: Ratchet, rule_titles: dict[str, str]) -> list[str]:
    """Human-readable report lines for one run."""
    lines: list[str] = []
    for finding in sorted(ratchet.new):
        lines.append(finding.render())
    for rule, path, recorded, current in ratchet.stale:
        lines.append(
            f"{path}: {rule} baseline is stale ({recorded} recorded, "
            f"{current} found) — bank the fix with `repro lint --update-baseline`"
        )
    if ratchet.ok:
        tolerated = len(ratchet.baselined)
        suffix = f" ({tolerated} baselined)" if tolerated else ""
        lines.append(f"invariants clean{suffix}")
    else:
        by_rule: dict[str, int] = {}
        for finding in ratchet.new:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        parts = [f"{rule} ×{count}" for rule, count in sorted(by_rule.items())]
        if ratchet.stale:
            parts.append(f"stale baseline ×{len(ratchet.stale)}")
        summary = ", ".join(parts)
        lines.append(f"invariant violations: {summary}")
        for rule in sorted(by_rule):
            title = rule_titles.get(rule)
            if title:
                lines.append(f"  {rule}: {title} (docs/ANALYSIS.md)")
    return lines


def render_json(root: str, ratchet: Ratchet) -> str:
    """The stable machine-readable report for CI."""
    findings: list[dict[str, object]] = []
    for finding in sorted(ratchet.new):
        entry = finding.as_dict()
        entry["baselined"] = False
        findings.append(entry)
    for finding in sorted(ratchet.baselined):
        entry = finding.as_dict()
        entry["baselined"] = True
        findings.append(entry)
    payload = {
        "root": root,
        "ok": ratchet.ok,
        "findings": findings,
        "counts": counts_of(ratchet.new + ratchet.baselined),
        "stale": [
            {"rule": rule, "path": path, "recorded": recorded, "current": current}
            for rule, path, recorded, current in ratchet.stale
        ],
        "summary": {
            "new": len(ratchet.new),
            "baselined": len(ratchet.baselined),
            "stale": len(ratchet.stale),
        },
    }
    return json.dumps(payload, indent=2)


def one_line_summary(ratchet: Ratchet) -> str:
    """A single status line (used by the CLI exit path)."""
    if ratchet.ok:
        return "ok"
    return f"{len(ratchet.new)} new finding(s), {len(ratchet.stale)} stale baseline entr(ies)"


__all__ = ["render_text", "render_json", "one_line_summary", "Finding"]
