"""The analysis driver: load, check, suppress, ratchet, report.

``analyze(root)`` is the library entry point (tests use it directly);
``lint(...)`` adds baseline enforcement and reporting and is shared by
the two command-line faces — ``repro lint`` and ``python -m
repro.analysis`` — which accept the same flags and return the same exit
codes:

- ``0`` — clean (possibly modulo a tolerated, non-stale baseline);
- ``1`` — new violations, a stale baseline, unparseable modules or
  malformed pragmas.

Rule execution order never affects output: findings are de-duplicated
and sorted (path, line, rule) before anything is reported.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import TextIO

from repro.analysis import baseline as baseline_mod
from repro.analysis import changed as changed_mod
from repro.analysis import report as report_mod
from repro.analysis import sarif as sarif_mod
from repro.analysis.findings import META_RULE, Finding
from repro.analysis.project import Project
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.base import Rule
from repro.analysis.rules.corruption import SwallowedCorruptionRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.durability import DurableWriteRule
from repro.analysis.rules.leaks import ResourceLeakRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.registry_sync import RegistrySyncRule
from repro.analysis.rules.wire_errors import WireErrorSyncRule

#: The invariant suite, in rule-id order.  Extending the checker is
#: appending here (see docs/ANALYSIS.md, "Writing a new rule").
DEFAULT_RULES: tuple[type[Rule], ...] = (
    DurableWriteRule,
    LockDisciplineRule,
    RegistrySyncRule,
    DeterminismRule,
    SwallowedCorruptionRule,
    AsyncBlockingRule,
    LockOrderRule,
    ResourceLeakRule,
    WireErrorSyncRule,
)

#: Name of the committed ratchet file, looked up at the repository root
#: (two levels above the package root: ``src/repro`` → repo).
BASELINE_FILENAME = "lint-baseline.json"


def rule_titles(rules: Iterable[type[Rule]] = DEFAULT_RULES) -> dict[str, str]:
    """Rule id → one-line title, for reports and docs."""
    return {rule.id: rule.title for rule in rules}


def analyze(
    root: str | Path,
    rules: Sequence[type[Rule]] | None = None,
) -> list[Finding]:
    """Run the rule suite over a tree; returns sorted, deduplicated,
    pragma-filtered findings (including ``REP000`` meta findings)."""
    project = Project.load(root)
    rule_instances = [cls() for cls in (rules if rules is not None else DEFAULT_RULES)]
    findings: set[Finding] = set(project.errors)
    for module in project.modules:
        findings.update(module.pragma_errors)
    for rule in rule_instances:
        for module in project.modules:
            findings.update(rule.check(module, project))
        findings.update(rule.finalize(project))
    kept = []
    for finding in findings:
        if finding.rule != META_RULE:
            module = project.module(finding.path)
            if module is not None and module.suppressed(finding.rule, finding.line):
                continue
        kept.append(finding)
    return sorted(kept)


def _select_rules(spec: str | None) -> tuple[type[Rule], ...]:
    if spec is None:
        return DEFAULT_RULES
    wanted = {part.strip() for part in spec.split(",") if part.strip()}
    known = {rule.id: rule for rule in DEFAULT_RULES}
    unknown = sorted(wanted - set(known))
    if unknown:
        raise SystemExit(f"unknown rule id(s): {', '.join(unknown)}")
    return tuple(known[rule_id] for rule_id in sorted(wanted))


def default_root() -> Path:
    """The installed ``repro`` package directory (``src/repro`` in-tree)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline(root: Path) -> Path:
    """Where the committed baseline lives for a given root."""
    parents = list(root.parents)
    anchor = parents[1] if len(parents) >= 2 else root
    return anchor / BASELINE_FILENAME


def lint(
    root: str | Path | None = None,
    baseline_path: str | Path | None = None,
    fmt: str = "text",
    update_baseline: bool = False,
    rules_spec: str | None = None,
    out: TextIO | None = None,
    changed_only: bool = False,
    changed_base: str | None = None,
) -> int:
    """Run the suite with ratchet enforcement; returns the exit code.

    ``changed_only`` analyzes the full tree (cross-module rules need it)
    but reports only findings anchored in files git says changed — see
    :mod:`repro.analysis.changed`.
    """
    out = out if out is not None else sys.stdout
    root = Path(root) if root is not None else default_root()
    rules = _select_rules(rules_spec)
    findings = analyze(root, rules)
    selected: set[str] | None = None
    if changed_only:
        selected = changed_mod.changed_files(root, changed_base)
        findings = changed_mod.filter_findings(findings, selected)
    baseline_file = (
        Path(baseline_path) if baseline_path is not None else default_baseline(root)
    )
    if update_baseline:
        baseline_mod.save(baseline_file, baseline_mod.counts_of(findings))
        print(
            f"baseline updated: {baseline_file} "
            f"({len(findings)} finding(s) recorded)",
            file=out,
        )
        return 0
    recorded = baseline_mod.load(baseline_file)
    if selected is not None:
        # Unchanged files are out of this run's view: their baseline
        # entries must not read as stale.
        recorded = {
            rule: {p: n for p, n in files.items() if p in selected}
            for rule, files in recorded.items()
        }
    ratchet = baseline_mod.apply(findings, recorded)
    if fmt == "json":
        print(report_mod.render_json(str(root), ratchet), file=out)
    elif fmt == "sarif":
        print(sarif_mod.render_sarif(ratchet, rule_titles(rules)), file=out)
    else:
        for line in report_mod.render_text(ratchet, rule_titles(rules)):
            print(line, file=out)
    return 0 if ratchet.ok else 1


def build_arg_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    """The shared flag set (used by ``repro lint`` and ``-m repro.analysis``)."""
    parser = parser or argparse.ArgumentParser(
        prog="repro.analysis",
        description="statically enforce the repo's durability, concurrency, "
        "determinism and observability invariants",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="package tree to analyze (default: the repro package itself)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"ratchet file (default: {BASELINE_FILENAME} at the repo root)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (json is the CI artifact shape; sarif is the "
        "2.1.0 log CI uploads for inline annotations)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="report only findings in files git says changed (the full "
        "tree is still analyzed — cross-module rules need it)",
    )
    parser.add_argument(
        "--changed-base", default=None, metavar="REV",
        help="git rev to diff against for --changed (default: HEAD; "
        "CI passes the PR base)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="record the current findings as the new baseline and exit 0 "
        "(the ratchet: counts may only ever decrease)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: the full suite)",
    )
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Map parsed flags onto :func:`lint` (the CLI handlers call this)."""
    return lint(
        root=args.root,
        baseline_path=args.baseline,
        fmt=args.format,
        update_baseline=args.update_baseline,
        rules_spec=args.rules,
        changed_only=args.changed,
        changed_base=args.changed_base,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.analysis`` entry point."""
    return run_from_args(build_arg_parser().parse_args(argv))
