"""Parsed-project context: modules, ASTs, symbol tables and pragmas.

The runner loads every ``*.py`` file under one *root package directory*
(normally ``src/repro``) into a :class:`Module` — source text, ``ast``
tree, lazily-built ``symtable`` and the suppression pragmas found in its
comments — and hands rules the whole :class:`Project` so cross-module
invariants (the observability registry, shared constants) can be checked
without importing any project code.  Analysis is purely static: a tree
that cannot be *imported* (missing optional deps, import-time side
effects) still lints.

Suppression pragmas
-------------------

A finding is silenced in place with an inline comment naming the rule
and a **mandatory reason**::

    with open(path, "w") as out:   # repro: allow[REP001] scratch file, not a durable artifact
        ...

A pragma on its own line applies to the next source line; a trailing
pragma applies to its own line.  Several rules may be listed
(``allow[REP001,REP005]``).  A pragma without a reason — or naming an
unknown rule — is itself reported as ``REP000`` and fails the run:
suppressions are part of the audit trail, not an escape hatch.
"""

from __future__ import annotations

import ast
import io
import re
import symtable
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import META_RULE, Finding

#: ``# repro: allow[REP001,REP005] reason…`` (reason captured, may be empty).
_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)
_RULE_ID = re.compile(r"^REP\d{3}$")

#: A ``lock-order`` declaration comment (``_maint_lock -> _write_lock ->
#: _mem_lock`` style): the machine-readable form of a class's documented
#: lock hierarchy, checked interprocedurally by REP007 (docs/STORAGE.md).
_LOCK_ORDER = re.compile(r"#\s*repro:\s*lock-order\b(?P<names>.*)$")
_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True, slots=True)
class LockOrder:
    """One parsed ``# repro: lock-order a -> b -> c`` declaration."""

    #: Line the declaration comment sits on.
    line: int
    #: Lock attribute names, outermost first.
    names: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    #: Line the pragma comment sits on.
    line: int
    #: Line the suppression applies to (next line for standalone comments).
    target_line: int
    #: Rule ids being suppressed.
    rules: frozenset[str]
    #: The mandatory justification text.
    reason: str


class Module:
    """One parsed source file plus its per-file analysis context."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module) -> None:
        self.path = path
        #: POSIX path relative to the analysis root — rules scope on this.
        self.rel = rel
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.pragmas: list[Pragma] = []
        #: Parsed ``lock-order`` declarations found in this file.
        self.lock_orders: list[LockOrder] = []
        #: REP000 findings from malformed pragmas in this file.
        self.pragma_errors: list[Finding] = []
        self._symtable: symtable.SymbolTable | None = None
        self._walk: tuple[ast.AST, ...] | None = None
        self._imports: "ImportMap | None" = None
        self._scan_pragmas()

    def table(self) -> symtable.SymbolTable:
        """The module's ``symtable`` (built on first use)."""
        if self._symtable is None:
            self._symtable = symtable.symtable(self.source, self.rel, "exec")
        return self._symtable

    def walk(self) -> tuple[ast.AST, ...]:
        """Every AST node, pre-walked once and shared across all rules.

        ``ast.walk`` over a large module dominates per-rule cost; rules
        iterate this cached tuple instead so the tree is traversed once
        per *file*, not once per file *per rule*.
        """
        if self._walk is None:
            self._walk = tuple(ast.walk(self.tree))
        return self._walk

    def import_map(self) -> "ImportMap":
        """The module's :class:`ImportMap`, built on first use and shared."""
        if self._imports is None:
            self._imports = ImportMap.of(self)
        return self._imports

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether a well-formed pragma silences ``rule`` at ``line``."""
        return any(
            pragma.target_line == line and rule in pragma.rules
            for pragma in self.pragmas
        )

    def _scan_pragmas(self) -> None:
        # tokenize (not a regex over raw lines) so pragma-shaped text
        # inside string literals is never misread as a real pragma.
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return  # the ast parse already succeeded; be permissive here
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            order = _LOCK_ORDER.search(token.string)
            if order is not None:
                self._scan_lock_order(order, token.start[0])
                continue
            match = _PRAGMA.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            rules = frozenset(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            reason = match.group("reason").strip()
            bogus = sorted(r for r in rules if not _RULE_ID.match(r))
            problem = None
            if not rules:
                problem = "pragma names no rules"
            elif bogus:
                problem = f"pragma names unknown rule ids: {', '.join(bogus)}"
            elif META_RULE in rules:
                problem = f"{META_RULE} (analysis meta-errors) cannot be suppressed"
            elif not reason:
                problem = "pragma needs a reason: # repro: allow[REPnnn] <why>"
            if problem is not None:
                self.pragma_errors.append(
                    Finding(path=self.rel, line=line, rule=META_RULE, message=problem)
                )
                continue
            standalone = self.lines[line - 1].lstrip().startswith("#")
            self.pragmas.append(
                Pragma(
                    line=line,
                    target_line=line + 1 if standalone else line,
                    rules=rules,
                    reason=reason,
                )
            )

    def _scan_lock_order(self, match: re.Match[str], line: int) -> None:
        names = tuple(
            part.strip() for part in match.group("names").split("->") if part.strip()
        )
        bogus = sorted(n for n in names if not _IDENTIFIER.match(n))
        problem = None
        if len(names) < 2:
            problem = (
                "lock-order declaration needs at least two lock names: "
                "# repro: lock-order outer -> inner"
            )
        elif bogus:
            problem = (
                "lock-order declaration names are not attribute identifiers: "
                + ", ".join(bogus)
            )
        elif len(set(names)) != len(names):
            problem = "lock-order declaration repeats a lock name"
        if problem is not None:
            self.pragma_errors.append(
                Finding(path=self.rel, line=line, rule=META_RULE, message=problem)
            )
            return
        self.lock_orders.append(LockOrder(line=line, names=names))


class Project:
    """Every module under one root package directory, parsed once."""

    def __init__(self, root: Path, modules: list[Module], errors: list[Finding]) -> None:
        self.root = root
        self.modules = modules
        #: REP000 findings raised while loading (syntax errors etc.).
        self.errors = errors
        self._by_rel = {module.rel: module for module in modules}

    @classmethod
    def load(cls, root: str | Path) -> "Project":
        """Parse every ``*.py`` under ``root`` (skipping ``__pycache__``)."""
        root = Path(root).resolve()
        if not root.is_dir():
            raise FileNotFoundError(f"analysis root is not a directory: {root}")
        modules: list[Module] = []
        errors: list[Finding] = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root).as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=rel)
            except SyntaxError as exc:
                errors.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        rule=META_RULE,
                        message=f"module does not parse: {exc.msg}",
                    )
                )
                continue
            modules.append(Module(path, rel, source, tree))
        return cls(root, modules, errors)

    def module(self, rel: str) -> Module | None:
        """Look a module up by its root-relative POSIX path."""
        return self._by_rel.get(rel)


@dataclass(slots=True)
class ImportMap:
    """Local-name → dotted-module bindings from a module's import statements.

    ``import os`` binds ``os → os``; ``import os.path`` binds ``os → os``;
    ``from os import replace`` binds ``replace → os.replace``;
    ``import random as rnd`` binds ``rnd → random``.  Rules resolve call
    targets against this map so aliasing cannot hide a flagged call.
    """

    names: dict[str, str] = field(default_factory=dict)

    @classmethod
    def of(cls, module: Module) -> "ImportMap":
        """Collect the import bindings of one module (all scopes)."""
        names: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    names[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports stay project-local
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return cls(names)

    def resolve(self, node: ast.expr) -> str | None:
        """The canonical dotted name a ``Name``/``Attribute`` chain denotes.

        ``fsio.open_file`` under ``from repro.inventory import fsio``
        resolves to ``repro.inventory.fsio.open_file``; unknown bases
        resolve to their literal dotted spelling; non-name expressions
        (calls, subscripts) resolve to ``None``.
        """
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.names.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))
