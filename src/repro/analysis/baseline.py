"""The ratchet: a committed baseline that can only shrink.

Legacy violations are not fixed by wishing; they are *frozen* in a
committed JSON file counting findings per (rule, file) and then ratcheted
down.  Enforcement compares the current run against the baseline:

- a (rule, file) pair exceeding its recorded count ⇒ **new violations**
  (all of that pair's findings are reported — static analysis cannot
  tell the old ones from the new one, so the author sees the full list);
- a pair *under* its recorded count ⇒ **stale baseline**: the fix must
  be banked by committing the smaller file (``repro lint
  --update-baseline``), so the count can never silently float back up;
- equal counts pass silently.

With an empty baseline — this repo's steady state — every finding is
new and the gate is simply "clean".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

#: Baseline counts: rule id → root-relative path → finding count.
Counts = dict[str, dict[str, int]]

_VERSION = 1


def counts_of(findings: list[Finding]) -> Counts:
    """Fold findings into the per-(rule, file) count table."""
    table: Counts = {}
    for finding in findings:
        per_rule = table.setdefault(finding.rule, {})
        per_rule[finding.path] = per_rule.get(finding.path, 0) + 1
    return table


@dataclass(slots=True)
class Ratchet:
    """The comparison of one run against the baseline."""

    #: Findings not covered by the baseline (must be fixed or baselined).
    new: list[Finding] = field(default_factory=list)
    #: (rule, path, recorded, current) pairs where reality improved past
    #: the baseline — commit the shrunk file to bank the fix.
    stale: list[tuple[str, str, int, int]] = field(default_factory=list)
    #: Findings tolerated by the baseline this run.
    baselined: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the ratchet passes (nothing new, nothing stale)."""
        return not self.new and not self.stale


def load(path: str | Path) -> Counts:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline format in {path}; regenerate with "
            "`repro lint --update-baseline`"
        )
    counts = data.get("counts", {})
    return {
        rule: {str(p): int(n) for p, n in files.items()}
        for rule, files in counts.items()
    }


def save(path: str | Path, counts: Counts) -> None:
    """Write the baseline (sorted, so diffs are meaningful)."""
    payload = {
        "version": _VERSION,
        "counts": {
            rule: dict(sorted(files.items()))
            for rule, files in sorted(counts.items())
            if files
        },
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def apply(findings: list[Finding], baseline: Counts) -> Ratchet:
    """Split findings into new/baselined and detect stale entries."""
    ratchet = Ratchet()
    current = counts_of(findings)
    by_pair: dict[tuple[str, str], list[Finding]] = {}
    for finding in findings:
        by_pair.setdefault((finding.rule, finding.path), []).append(finding)
    for (rule, path), group in sorted(by_pair.items()):
        recorded = baseline.get(rule, {}).get(path, 0)
        if len(group) > recorded:
            ratchet.new.extend(group)
        elif len(group) < recorded:
            ratchet.stale.append((rule, path, recorded, len(group)))
            ratchet.baselined.extend(group)
        else:
            ratchet.baselined.extend(group)
    # baseline entries for files that are now completely clean
    for rule, files in sorted(baseline.items()):
        for path, recorded in sorted(files.items()):
            if recorded and current.get(rule, {}).get(path, 0) == 0:
                ratchet.stale.append((rule, path, recorded, 0))
    return ratchet
