"""``python -m repro.analysis`` — the standalone face of the checker."""

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main())
