"""Patterns of Life: a global inventory of maritime mobility patterns.

A faithful, self-contained reproduction of *"Patterns of Life: Global
Inventory for maritime mobility patterns"* (Spiliopoulos et al., EDBT
2024): a pipeline that compresses AIS vessel-tracking archives into a
queryable inventory of per-hexagonal-cell statistical summaries, plus the
use cases the paper builds on it (ETA estimation, destination prediction,
route forecasting, anomaly detection).

Quickstart::

    from repro import generate_dataset, build_inventory, WorldConfig

    data = generate_dataset(WorldConfig(n_vessels=30, days=14))
    result = build_inventory(data.positions, data.fleet, data.ports)
    summary = result.inventory.summary_at(51.9, 3.9)   # off Rotterdam
    print(summary.mean_speed_kn(), summary.top_destination())

Subsystems (each documented in its own subpackage):

- :mod:`repro.geo` — geodesy and circular statistics
- :mod:`repro.hexgrid` — hierarchical hexagonal global grid (H3 substitute)
- :mod:`repro.ais` — AIS protocol: messages, NMEA codec, validation
- :mod:`repro.sketches` — mergeable statistical summaries
- :mod:`repro.engine` — mini map-reduce engine (Spark substitute)
- :mod:`repro.world` — synthetic maritime world and AIS simulator
- :mod:`repro.pipeline` — the paper's methodology
- :mod:`repro.inventory` — the global inventory and its on-disk format
- :mod:`repro.apps` — the use-case applications
"""

from repro.world import WorldConfig, generate_dataset
from repro.pipeline import PipelineConfig, build_inventory
from repro.inventory import (
    GroupKey,
    GroupingSet,
    Inventory,
    QueryableInventory,
    SSTableInventory,
)
from repro.engine import Engine, EngineConfig

__version__ = "1.0.0"

__all__ = [
    "WorldConfig",
    "generate_dataset",
    "PipelineConfig",
    "build_inventory",
    "Inventory",
    "QueryableInventory",
    "SSTableInventory",
    "GroupKey",
    "GroupingSet",
    "Engine",
    "EngineConfig",
    "__version__",
]
