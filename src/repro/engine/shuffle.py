"""The all-to-all exchange between map and reduce stages.

``exchange`` routes every record of every map partition into one of the
reduce partitions.  Buckets normally live in memory; when the engine is
configured with a spill directory, buckets larger than the spill threshold
are pickled to disk and re-read during collection, bounding peak memory at
the cost of serialization — the behaviour that lets the pipeline claim
"big data" semantics honestly at laptop scale.
"""

from __future__ import annotations

import pickle
import uuid
from collections.abc import Callable, Sequence
from pathlib import Path


class _Bucket:
    """One reduce partition's staging area with optional disk spill."""

    __slots__ = ("records", "spill_paths", "spill_dir", "threshold", "spilled_rows")

    def __init__(self, spill_dir: Path | None, threshold: int) -> None:
        self.records: list = []
        self.spill_paths: list[Path] = []
        self.spill_dir = spill_dir
        self.threshold = threshold
        self.spilled_rows = 0

    def add(self, record: object) -> None:
        self.records.append(record)
        if self.spill_dir is not None and len(self.records) >= self.threshold:
            self._spill()

    def _spill(self) -> None:
        path = self.spill_dir / f"spill-{uuid.uuid4().hex}.pkl"
        with open(path, "wb") as handle:
            pickle.dump(self.records, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self.spill_paths.append(path)
        self.spilled_rows += len(self.records)
        self.records = []

    def drain(self) -> list:
        """All records, spilled first, then in-memory; spill files removed."""
        output: list = []
        for path in self.spill_paths:
            with open(path, "rb") as handle:
                output.extend(pickle.load(handle))
            path.unlink(missing_ok=True)
        self.spill_paths.clear()
        output.extend(self.records)
        self.records = []
        return output


class ShuffleStats:
    """Counters describing one exchange, for tests and benchmarks."""

    __slots__ = ("rows", "spilled_rows", "spill_files")

    def __init__(self) -> None:
        self.rows = 0
        self.spilled_rows = 0
        self.spill_files = 0


def exchange(
    partitions: Sequence[list],
    route: Callable[[object], int],
    num_out: int,
    spill_dir: Path | None = None,
    spill_threshold: int = 100_000,
    stats: ShuffleStats | None = None,
) -> list[list]:
    """Route every record to its reduce partition.

    :param route: record → reduce partition index in [0, num_out).
    :returns: ``num_out`` lists; record order within a bucket follows map
        partition order then record order, so the exchange is
        deterministic for a fixed input partitioning.
    """
    if num_out < 1:
        raise ValueError(f"need at least one output partition, got {num_out}")
    buckets = [_Bucket(spill_dir, spill_threshold) for _ in range(num_out)]
    rows = 0
    for partition in partitions:
        for record in partition:
            index = route(record)
            if not 0 <= index < num_out:
                raise ValueError(
                    f"router produced partition {index}, valid range is "
                    f"[0, {num_out})"
                )
            buckets[index].add(record)
            rows += 1
    if stats is not None:
        stats.rows = rows
        stats.spilled_rows = sum(bucket.spilled_rows for bucket in buckets)
        stats.spill_files = sum(len(bucket.spill_paths) for bucket in buckets)
    return [bucket.drain() for bucket in buckets]
