"""Execution backends: run one task per partition, serially or in parallel.

A *task* is a plain callable of one partition's data.  The serial backend
is the reference implementation every other backend must agree with (the
engine tests assert this).  Threads help when partition work releases the
GIL (file I/O, hashing); processes help for pure-Python CPU work at the
price of pickling partitions across the boundary — the engine-scaling
ablation benchmark measures exactly this trade-off.

All backends support **per-partition retries** with exponential backoff
(``make_scheduler(..., retries=, backoff=)``): a partition whose task
raises is re-run up to ``retries`` more times, sleeping ``backoff``,
``2*backoff``, ``4*backoff``, ... seconds between attempts.  This is for
transient faults (a flaky NFS read, an ``EIO`` that a re-read survives);
the budget is per partition, so one poisoned partition cannot starve the
rest, and a task that keeps failing raises its final exception
unchanged.
"""

from __future__ import annotations

import contextvars
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor, wait

from repro.engine.metrics import CounterSet
from repro.obs import registry
from repro.obs import trace as obs

#: Sleep indirection so retry/backoff tests can run without real delays.
_sleep = time.sleep

#: One attempt at one partition's task (every scheduler emits these; the
#: ``attempt`` attribute distinguishes retries, and a failing attempt
#: closes with status ``error``).
SPAN_PARTITION = registry.register_span(
    "engine.partition",
    "one attempt at one partition's task, on any scheduler "
    "(attrs: partition index, attempt number, scheduler name)",
)
#: Cross-scheduler retry count (shared CounterSet, see :data:`COUNTERS`).
RETRIES_TOTAL = registry.register_counter(
    "engine.retries",
    "partition task attempts that failed and were retried "
    "(transient-fault re-runs across all schedulers)",
)

#: Process-wide scheduler counters (retries).  Shared across scheduler
#: instances on purpose: retries are a host-level health signal.
COUNTERS = CounterSet()


class WorkerError(RuntimeError):
    """A forked worker failed.  ``tracebacks`` carries the workers' real
    formatted tracebacks, which are also embedded in the message — the
    parent re-raises the *information*, not a 'go reproduce it serially'
    shrug."""

    def __init__(self, message: str, tracebacks: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.tracebacks = tracebacks


def _check_retry_policy(retries: int, backoff: float) -> None:
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")


def _with_retries(
    task: Callable[[int, list], list],
    retries: int,
    backoff: float,
    scheduler: str,
) -> Callable[[int, list], list]:
    """Wrap ``task`` with the per-partition retry/backoff policy and a
    per-attempt trace span (a failed attempt closes with status
    ``error``; the retry itself bumps :data:`RETRIES_TOTAL`)."""

    def attempt(index: int, partition: list) -> list:
        delay = backoff
        for n in range(retries + 1):
            try:
                with obs.span(
                    SPAN_PARTITION, index=index, attempt=n, scheduler=scheduler
                ):
                    return task(index, partition)
            except Exception:
                if n == retries:
                    raise
                COUNTERS.increment(RETRIES_TOTAL)
                if delay > 0:
                    _sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")

    return attempt


class SerialScheduler:
    """Runs tasks one after another in the caller's thread."""

    name = "serial"

    def __init__(self, retries: int = 0, backoff: float = 0.05) -> None:
        _check_retry_policy(retries, backoff)
        self.retries = retries
        self.backoff = backoff

    def run(
        self, task: Callable[[int, list], list], partitions: Sequence[list]
    ) -> list[list]:
        """Apply ``task(index, partition)`` to every partition, in order."""
        task = _with_retries(task, self.retries, self.backoff, self.name)
        return [task(i, part) for i, part in enumerate(partitions)]

    def close(self) -> None:
        """Nothing to release."""


class ThreadScheduler:
    """Runs tasks on a shared thread pool."""

    name = "threads"

    def __init__(
        self, max_workers: int = 4, retries: int = 0, backoff: float = 0.05
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        _check_retry_policy(retries, backoff)
        self.max_workers = max_workers
        self.retries = retries
        self.backoff = backoff
        self._pool: ThreadPoolExecutor | None = None

    def run(
        self, task: Callable[[int, list], list], partitions: Sequence[list]
    ) -> list[list]:
        """Apply ``task`` to every partition concurrently; results keep
        partition order."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        task = _with_retries(task, self.retries, self.backoff, self.name)
        if obs.enabled():
            # Pool threads do not inherit contextvars; copy the caller's
            # context per submit so worker-side spans nest under the
            # span that was active when run() was called.
            futures = [
                self._pool.submit(contextvars.copy_context().run, task, i, part)
                for i, part in enumerate(partitions)
            ]
        else:
            futures = [
                self._pool.submit(task, i, part)
                for i, part in enumerate(partitions)
            ]
        try:
            return [future.result() for future in futures]
        except BaseException:
            # One partition failed: don't abandon the rest mid-flight.
            # Cancel whatever has not started and wait out whatever has,
            # so no task is still mutating shared state after we raise
            # and the pool is reusable for the next run.
            for future in futures:
                future.cancel()
            wait(futures)
            raise

    def close(self) -> None:
        """Shut the pool down."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessScheduler:
    """Runs tasks in forked worker processes.

    Fork-per-run: each worker inherits the task closure and its slice of
    partitions through the fork (no pickling of functions, which lets
    lambda-heavy jobs run), computes its results, and pickles only the
    results back through a pipe.  POSIX-only, like the fork start method
    itself.

    A worker that raises sends ``("error", traceback_text, spans)`` up
    the pipe instead of results; the parent collects every worker's
    report, then raises :class:`WorkerError` carrying the real
    tracebacks.  Trace spans recorded inside a worker ride the same pipe
    and are replayed into the parent's sinks, so a traced run sees its
    forked partitions nested under the right parent span.  If
    collection itself dies partway, the remaining pipe fds are closed
    and the remaining children reaped — no fd leak, no zombies.
    """

    name = "processes"

    def __init__(
        self, max_workers: int = 4, retries: int = 0, backoff: float = 0.05
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        _check_retry_policy(retries, backoff)
        self.max_workers = max_workers
        self.retries = retries
        self.backoff = backoff

    def run(
        self, task: Callable[[int, list], list], partitions: Sequence[list]
    ) -> list[list]:
        """Apply ``task`` to every partition across forked workers; results
        keep partition order."""
        import os
        import pickle
        import traceback

        count = len(partitions)
        if count == 0:
            return []
        task = _with_retries(task, self.retries, self.backoff, self.name)
        workers = min(self.max_workers, count)
        if workers == 1:
            return [task(i, part) for i, part in enumerate(partitions)]
        slices = [list(range(w, count, workers)) for w in range(workers)]
        children: list[tuple[int, int, list[int]]] = []  # (pid, read_fd, indices)
        for indices in slices:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Worker: compute the slice, stream a pickled ("ok",
                # results, spans) or ("error", traceback, spans) report,
                # exit without running parent atexit/cleanup handlers.
                # The fork inherits the active trace context, so child
                # spans parent correctly; they are buffered here (the
                # parent's sinks must not be written from the child) and
                # replayed by the parent after collection.
                os.close(read_fd)
                status = 0
                try:
                    span_buffer = obs.begin_collect()
                    try:
                        report = (
                            "ok",
                            [task(i, partitions[i]) for i in indices],
                            obs.end_collect(span_buffer),
                        )
                        payload = pickle.dumps(
                            report, protocol=pickle.HIGHEST_PROTOCOL
                        )
                    except BaseException:
                        status = 1
                        payload = pickle.dumps(
                            (
                                "error",
                                traceback.format_exc(),
                                obs.end_collect(span_buffer),
                            ),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    with os.fdopen(write_fd, "wb") as pipe:
                        pipe.write(payload)
                except BaseException:
                    status = 1  # reporting itself failed: empty pipe
                os._exit(status)
            os.close(write_fd)
            children.append((pid, read_fd, indices))
        results: list[list | None] = [None] * count
        errors: list[str] = []
        collected = 0
        try:
            for pid, read_fd, indices in children:
                with os.fdopen(read_fd, "rb") as pipe:
                    payload = pipe.read()
                os.waitpid(pid, 0)
                collected += 1
                if not payload:
                    errors.append(
                        f"worker pid {pid} died without reporting "
                        f"(partitions {indices})"
                    )
                    continue
                tag, value, spans = pickle.loads(payload)
                obs.replay(spans)
                if tag == "error":
                    errors.append(value)
                    continue
                for index, result in zip(indices, value):
                    results[index] = result
        finally:
            # Collection died partway (bad pickle, interrupt): close the
            # unread pipe ends and reap the remaining children.
            for pid, read_fd, _ in children[collected:]:
                try:
                    os.close(read_fd)
                except OSError:
                    pass
                try:
                    os.waitpid(pid, 0)
                except OSError:
                    pass
        if errors:
            raise WorkerError(
                "forked worker(s) failed:\n\n" + "\n".join(errors),
                tracebacks=tuple(errors),
            )
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Fork-per-run keeps no pool; nothing to release."""


def make_scheduler(
    name: str, max_workers: int = 4, retries: int = 0, backoff: float = 0.05
):
    """Factory: 'serial', 'threads' or 'processes', with an optional
    per-partition retry budget (``retries`` extra attempts, exponential
    ``backoff`` seconds between them)."""
    if name == "serial":
        return SerialScheduler(retries=retries, backoff=backoff)
    if name == "threads":
        return ThreadScheduler(
            max_workers=max_workers, retries=retries, backoff=backoff
        )
    if name == "processes":
        return ProcessScheduler(
            max_workers=max_workers, retries=retries, backoff=backoff
        )
    raise ValueError(f"unknown scheduler {name!r}")
