"""Execution backends: run one task per partition, serially or in parallel.

A *task* is a plain callable of one partition's data.  The serial backend
is the reference implementation every other backend must agree with (the
engine tests assert this).  Threads help when partition work releases the
GIL (file I/O, hashing); processes help for pure-Python CPU work at the
price of pickling partitions across the boundary — the engine-scaling
ablation benchmark measures exactly this trade-off.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor, wait


class SerialScheduler:
    """Runs tasks one after another in the caller's thread."""

    name = "serial"

    def run(
        self, task: Callable[[int, list], list], partitions: Sequence[list]
    ) -> list[list]:
        """Apply ``task(index, partition)`` to every partition, in order."""
        return [task(i, part) for i, part in enumerate(partitions)]

    def close(self) -> None:
        """Nothing to release."""


class ThreadScheduler:
    """Runs tasks on a shared thread pool."""

    name = "threads"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def run(
        self, task: Callable[[int, list], list], partitions: Sequence[list]
    ) -> list[list]:
        """Apply ``task`` to every partition concurrently; results keep
        partition order."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        futures = [
            self._pool.submit(task, i, part) for i, part in enumerate(partitions)
        ]
        try:
            return [future.result() for future in futures]
        except BaseException:
            # One partition failed: don't abandon the rest mid-flight.
            # Cancel whatever has not started and wait out whatever has,
            # so no task is still mutating shared state after we raise
            # and the pool is reusable for the next run.
            for future in futures:
                future.cancel()
            wait(futures)
            raise

    def close(self) -> None:
        """Shut the pool down."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessScheduler:
    """Runs tasks in forked worker processes.

    Fork-per-run: each worker inherits the task closure and its slice of
    partitions through the fork (no pickling of functions, which lets
    lambda-heavy jobs run), computes its results, and pickles only the
    results back through a pipe.  POSIX-only, like the fork start method
    itself.
    """

    name = "processes"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        self.max_workers = max_workers

    def run(
        self, task: Callable[[int, list], list], partitions: Sequence[list]
    ) -> list[list]:
        """Apply ``task`` to every partition across forked workers; results
        keep partition order."""
        import os
        import pickle

        count = len(partitions)
        if count == 0:
            return []
        workers = min(self.max_workers, count)
        if workers == 1:
            return [task(i, part) for i, part in enumerate(partitions)]
        slices = [list(range(w, count, workers)) for w in range(workers)]
        children: list[tuple[int, int, list[int]]] = []  # (pid, read_fd, indices)
        for indices in slices:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Worker: compute the slice, stream pickled results, exit
                # without running parent atexit/cleanup handlers.
                os.close(read_fd)
                status = 0
                try:
                    payload = pickle.dumps(
                        [task(i, partitions[i]) for i in indices],
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    with os.fdopen(write_fd, "wb") as pipe:
                        pipe.write(payload)
                except BaseException:
                    status = 1
                os._exit(status)
            os.close(write_fd)
            children.append((pid, read_fd, indices))
        results: list[list | None] = [None] * count
        failure = False
        for pid, read_fd, indices in children:
            with os.fdopen(read_fd, "rb") as pipe:
                payload = pipe.read()
            _, status = os.waitpid(pid, 0)
            if status != 0 or not payload:
                failure = True
                continue
            for index, result in zip(indices, pickle.loads(payload)):
                results[index] = result
        if failure:
            raise RuntimeError(
                "a forked worker failed; re-run on the serial scheduler to "
                "see the underlying exception"
            )
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Fork-per-run keeps no pool; nothing to release."""


def make_scheduler(name: str, max_workers: int = 4):
    """Factory: 'serial', 'threads' or 'processes'."""
    if name == "serial":
        return SerialScheduler()
    if name == "threads":
        return ThreadScheduler(max_workers=max_workers)
    if name == "processes":
        return ProcessScheduler(max_workers=max_workers)
    raise ValueError(f"unknown scheduler {name!r}")
