"""Per-stage instrumentation.

Every terminal action records one :class:`StageMetric` per evaluated
transformation: operator name, wall time, rows in and rows out.  The
Figure 3 benchmark (execution-flow timing) reads these to print the
pipeline's stage breakdown, and the stage-funnel benchmark (Figure 2)
reads the row counts.

:class:`CounterSet` is the companion for event counting: named monotonic
counters (cache hits/misses, evictions, bytes read) that subsystems
increment on their hot paths and surface in one dict for reports.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass(slots=True)
class StageMetric:
    """One evaluated stage of a job."""

    label: str
    seconds: float
    rows_in: int
    rows_out: int
    partitions: int


@dataclass
class MetricsRecorder:
    """Accumulates stage metrics across a job (or several)."""

    stages: list[StageMetric] = field(default_factory=list)

    def record(
        self, label: str, seconds: float, rows_in: int, rows_out: int, partitions: int
    ) -> None:
        """Append one stage's numbers."""
        self.stages.append(StageMetric(label, seconds, rows_in, rows_out, partitions))

    def total_seconds(self) -> float:
        """Wall time across all recorded stages."""
        return sum(stage.seconds for stage in self.stages)

    def by_label(self) -> dict[str, float]:
        """Total seconds per stage label, insertion-ordered."""
        totals: dict[str, float] = {}
        for stage in self.stages:
            totals[stage.label] = totals.get(stage.label, 0.0) + stage.seconds
        return totals

    def clear(self) -> None:
        """Drop all recorded stages."""
        self.stages.clear()


@dataclass
class CounterSet:
    """Named monotonic event counters.

    The serving-side twin of :class:`MetricsRecorder`: stages record wall
    time, counters record discrete events (block-cache hits and misses,
    evictions, bytes read from disk).  Counters only ever go up; callers
    snapshot them with :meth:`as_dict` and diff snapshots to attribute
    events to a window.

    Increments are guarded by a lock: one counter set is typically shared
    by every thread serving a backend (block-cache counters under the
    query server), and an unguarded read-modify-write on the dict drops
    events under preemption.
    """

    counters: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to one counter (thread-safe)."""
        if amount < 0:
            raise ValueError(f"counters are monotonic, got amount {amount}")
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def value(self, name: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        with self._lock:
            return self.counters.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters, insertion-ordered."""
        with self._lock:
            return dict(self.counters)

    def clear(self) -> None:
        """Reset every counter to zero."""
        with self._lock:
            self.counters.clear()


class StageTimer:
    """Context manager that records a stage on exit."""

    def __init__(
        self,
        recorder: MetricsRecorder | None,
        label: str,
        rows_in: int,
        partitions: int,
    ) -> None:
        self._recorder = recorder
        self._label = label
        self._rows_in = rows_in
        self._partitions = partitions
        self._start = 0.0
        self.rows_out = 0

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._recorder is not None and exc_type is None:
            self._recorder.record(
                self._label,
                time.perf_counter() - self._start,
                self._rows_in,
                self.rows_out,
                self._partitions,
            )
