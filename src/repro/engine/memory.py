"""Allocation-heavy-stage memory helpers.

The aggregate stage materialises hundreds of thousands of small,
long-lived sketch objects (one :class:`~repro.inventory.summary.CellSummary`
per live group).  CPython's generational collector re-scans that whole
live population every time the gen-2 threshold trips, which multiplies
the cost of each *new* summary by the number already alive — measured at
~4x on the default benchmark world.  None of those objects are garbage
(they are all reachable from the partials dict until the window is
stored), so the scans find nothing.

:func:`gc_paused` scopes a collector pause to exactly such a stage.  It
is a pure wall-clock optimisation: reference counting still reclaims
everything acyclic immediately, and the deferred cyclic collection runs
at the next allocation after the scope exits.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def gc_paused() -> Iterator[None]:
    """Disable the cyclic garbage collector for the duration of the scope.

    Re-enables it on exit only if it was enabled on entry, so nested
    scopes and externally-disabled collectors compose; exceptions
    propagate with the collector restored.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
