"""The Dataset: an immutable, partitioned, lazily evaluated collection.

Transformations build a DAG; terminal actions (``collect``, ``count``,
``reduce`` …) evaluate it.  Within one action, every node is materialized
at most once (a memo table keyed by node identity); across actions a node
recomputes unless explicitly ``persist()``-ed, mirroring Spark's contract.

Narrow transformations (map/filter/flat_map/map_partitions) run one task
per partition on the engine's scheduler.  Wide transformations shuffle
through :func:`repro.engine.shuffle.exchange` and apply a reduce-side
function per output partition, again on the scheduler.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Iterator
from typing import TYPE_CHECKING

from repro.engine.metrics import StageTimer
from repro.engine.partitioner import HashPartitioner, RangePartitioner
from repro.engine.shuffle import exchange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.context import Engine


class Dataset:
    """One node of the execution DAG.  Construct via ``Engine.parallelize``
    or by transforming another dataset — never directly."""

    def __init__(
        self,
        engine: "Engine",
        parents: tuple["Dataset", ...],
        num_partitions: int,
        label: str,
    ) -> None:
        self.engine = engine
        self.parents = parents
        self.num_partitions = num_partitions
        self.label = label
        self._persisted: list[list] | None = None
        self._persist_requested = False

    # -- narrow transformations ---------------------------------------------

    def map(self, fn: Callable) -> "Dataset":
        """Element-wise transform."""
        return self.map_partitions(
            lambda _, records: map(fn, records), label=f"map({_name(fn)})"
        )

    def filter(self, predicate: Callable) -> "Dataset":
        """Keep elements satisfying the predicate."""
        return self.map_partitions(
            lambda _, records: filter(predicate, records),
            label=f"filter({_name(predicate)})",
        )

    def flat_map(self, fn: Callable) -> "Dataset":
        """Element-wise transform producing zero or more outputs each."""
        return self.map_partitions(
            lambda _, records: itertools.chain.from_iterable(map(fn, records)),
            label=f"flat_map({_name(fn)})",
        )

    def map_partitions(
        self, fn: Callable[[int, list], Iterable], label: str | None = None
    ) -> "Dataset":
        """Partition-wise transform: ``fn(index, records) -> iterable``.

        The most general narrow operation; everything element-wise is
        sugar over it.
        """
        return _MapPartitions(self, fn, label or f"map_partitions({_name(fn)})")

    def map_batches(self, fn: Callable, label: str | None = None) -> "Dataset":
        """Batch-wise transform for datasets whose elements are record
        batches: ``fn(batch) -> batch``.

        The partition-level twin of :meth:`map` for the columnar path —
        one call per batch instead of one per record, with stage metrics
        counting the *rows inside* the batches rather than the batch
        objects (a funnel stage's row counts stay comparable whichever
        representation flows through it).
        """
        return _MapBatches(self, fn, label or f"map_batches({_name(fn)})")

    def key_by(self, fn: Callable) -> "Dataset":
        """Pair every element with a key: ``x -> (fn(x), x)``."""
        return self.map_partitions(
            lambda _, records: ((fn(x), x) for x in records),
            label=f"key_by({_name(fn)})",
        )

    def map_values(self, fn: Callable) -> "Dataset":
        """Transform the value of every (key, value) pair."""
        return self.map_partitions(
            lambda _, records: ((k, fn(v)) for k, v in records),
            label=f"map_values({_name(fn)})",
        )

    def flat_map_values(self, fn: Callable) -> "Dataset":
        """Expand every (key, value) pair into (key, v') pairs."""
        return self.map_partitions(
            lambda _, records: (
                (k, out) for k, v in records for out in fn(v)
            ),
            label=f"flat_map_values({_name(fn)})",
        )

    def union(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets (partitions are concatenated, no
        shuffle)."""
        return _Union(self, other)

    # -- wide (shuffle) transformations ---------------------------------------

    def partition_by(
        self, partitioner: HashPartitioner | RangePartitioner | None = None,
        key_fn: Callable | None = None,
    ) -> "Dataset":
        """Redistribute (key, value) pairs by key.

        ``key_fn`` overrides how the routing key is derived (default: the
        first element of each record).
        """
        partitioner = partitioner or HashPartitioner(self.engine.num_partitions)
        extract = key_fn or (lambda record: record[0])
        return _Shuffle(
            self,
            route=lambda record: partitioner.partition(extract(record)),
            num_out=partitioner.num_partitions,
            label="partition_by",
        )

    def repartition(self, num_partitions: int) -> "Dataset":
        """Round-robin redistribution into ``num_partitions`` partitions."""
        if num_partitions < 1:
            raise ValueError(f"need at least one partition, got {num_partitions}")
        return _Repartition(self, num_partitions)

    def reduce_by_key(self, fn: Callable) -> "Dataset":
        """Merge values per key with a commutative, associative function.

        Combines map-side before the shuffle (the single most important
        optimisation for skewed AIS data) and reduce-side after.
        """
        return self.combine_by_key(
            create=lambda v: v, merge_value=fn, merge_combiners=fn,
            label=f"reduce_by_key({_name(fn)})",
        )

    def combine_by_key(
        self,
        create: Callable,
        merge_value: Callable,
        merge_combiners: Callable,
        num_partitions: int | None = None,
        label: str | None = None,
    ) -> "Dataset":
        """The general aggregation: per key, ``create`` builds a combiner
        from the first value, ``merge_value`` folds further values in
        map-side, and ``merge_combiners`` merges partial combiners
        reduce-side.  This is exactly the monoid contract the sketches
        implement."""
        num_out = num_partitions or self.engine.num_partitions
        partitioner = HashPartitioner(num_out)

        def map_side(_index: int, records: list) -> Iterator:
            partials: dict = {}
            for key, value in records:
                if key in partials:
                    partials[key] = merge_value(partials[key], value)
                else:
                    partials[key] = create(value)
            return iter(partials.items())

        def reduce_side(_index: int, records: list) -> list:
            merged: dict = {}
            for key, combiner in records:
                if key in merged:
                    merged[key] = merge_combiners(merged[key], combiner)
                else:
                    merged[key] = combiner
            return list(merged.items())

        combined = self.map_partitions(map_side, label="map_side_combine")
        shuffled = _Shuffle(
            combined,
            route=lambda record: partitioner.partition(record[0]),
            num_out=num_out,
            label=label or "combine_by_key",
            post=reduce_side,
        )
        return shuffled

    def group_by_key(self, num_partitions: int | None = None) -> "Dataset":
        """Gather all values per key into a list.  Prefer
        :meth:`combine_by_key` with a mergeable summary whenever the
        per-key value count can be large."""
        return self.combine_by_key(
            create=lambda v: [v],
            merge_value=lambda acc, v: (acc.append(v) or acc),
            merge_combiners=lambda a, b: a + b,
            num_partitions=num_partitions,
            label="group_by_key",
        )

    def distinct(self) -> "Dataset":
        """Remove duplicate records (records must be stable-hashable)."""
        from repro.engine.hashing import stable_hash

        num_out = self.engine.num_partitions

        def dedupe(_index: int, records: list) -> list:
            seen = set()
            output = []
            for record in records:
                if record not in seen:
                    seen.add(record)
                    output.append(record)
            return output

        deduped_local = self.map_partitions(dedupe, label="distinct_local")
        shuffled = _Shuffle(
            deduped_local,
            route=lambda record: stable_hash(record) % num_out,
            num_out=num_out,
            label="distinct",
            post=dedupe,
        )
        return shuffled

    def sort_by(
        self,
        key: Callable,
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "Dataset":
        """Total-order sort via range partitioning on a key sample."""
        num_out = num_partitions or self.engine.num_partitions
        return _SortBy(self, key, ascending, num_out)

    def join(self, other: "Dataset", num_partitions: int | None = None) -> "Dataset":
        """Inner hash join of (key, value) datasets → (key, (left, right))."""
        return _Join(self, other, how="inner",
                     num_partitions=num_partitions or self.engine.num_partitions)

    def left_join(
        self, other: "Dataset", num_partitions: int | None = None
    ) -> "Dataset":
        """Left outer join → (key, (left, right_or_None))."""
        return _Join(self, other, how="left",
                     num_partitions=num_partitions or self.engine.num_partitions)

    def cogroup(
        self, other: "Dataset", num_partitions: int | None = None
    ) -> "Dataset":
        """Group both sides by key → (key, (left_values, right_values))."""
        return _Join(self, other, how="cogroup",
                     num_partitions=num_partitions or self.engine.num_partitions)

    # -- persistence -----------------------------------------------------------

    def persist(self) -> "Dataset":
        """Keep this node's materialized partitions across actions."""
        self._persist_requested = True
        return self

    def unpersist(self) -> "Dataset":
        """Drop any cached partitions."""
        self._persist_requested = False
        self._persisted = None
        return self

    # -- actions ----------------------------------------------------------------

    def collect(self) -> list:
        """Materialize every record into one list."""
        partitions = self.engine._evaluate(self)
        return [record for partition in partitions for record in partition]

    def collect_partitions(self) -> list[list]:
        """Materialize and return the partition structure."""
        return [list(p) for p in self.engine._evaluate(self)]

    def count(self) -> int:
        """Number of records."""
        return sum(len(p) for p in self.engine._evaluate(self))

    def take(self, n: int) -> list:
        """The first ``n`` records in partition order."""
        if n < 0:
            raise ValueError(f"cannot take a negative number of records: {n}")
        if n == 0:
            return []
        output: list = []
        for partition in self.engine._evaluate(self):
            for record in partition:
                output.append(record)
                if len(output) == n:
                    return output
        return output

    def first(self):
        """The first record; raises :class:`ValueError` when empty."""
        taken = self.take(1)
        if not taken:
            raise ValueError("first() on an empty dataset")
        return taken[0]

    def reduce(self, fn: Callable):
        """Fold all records with an associative binary function."""
        partials = []
        for partition in self.engine._evaluate(self):
            iterator = iter(partition)
            try:
                acc = next(iterator)
            except StopIteration:
                continue
            for record in iterator:
                acc = fn(acc, record)
            partials.append(acc)
        if not partials:
            raise ValueError("reduce() on an empty dataset")
        result = partials[0]
        for partial in partials[1:]:
            result = fn(result, partial)
        return result

    def aggregate(self, zero, seq_fn: Callable, comb_fn: Callable):
        """Fold with distinct element/partial combiners (Spark's
        ``aggregate``): ``seq_fn(acc, record)`` within a partition,
        ``comb_fn(acc1, acc2)`` across partitions.  ``zero`` must be
        copyable via ``seq_fn`` semantics — it is reused as the initial
        accumulator of every partition, so it must not be mutated unless
        ``seq_fn`` returns a fresh object."""
        partials = []
        for partition in self.engine._evaluate(self):
            acc = zero
            for record in partition:
                acc = seq_fn(acc, record)
            partials.append(acc)
        result = zero
        for partial in partials:
            result = comb_fn(result, partial)
        return result

    def count_by_key(self) -> dict:
        """Count records per key of (key, value) pairs."""
        counts: dict = {}
        for partition in self.engine._evaluate(self):
            for key, _value in partition:
                counts[key] = counts.get(key, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """Collect (key, value) pairs into a dict (later keys win)."""
        return dict(self.collect())

    # -- evaluation (engine-internal) ---------------------------------------------

    def _compute(self, memo: dict) -> list[list]:
        raise NotImplementedError

    def _materialize(self, memo: dict) -> list[list]:
        if self._persisted is not None:
            return self._persisted
        if id(self) in memo:
            return memo[id(self)]
        result = self._compute(memo)
        memo[id(self)] = result
        if self._persist_requested:
            self._persisted = result
        return result


class _Source(Dataset):
    """Leaf node wrapping already-partitioned in-memory data."""

    def __init__(self, engine: "Engine", partitions: list[list]) -> None:
        super().__init__(engine, (), len(partitions), "source")
        self._partitions = partitions

    def _compute(self, memo: dict) -> list[list]:
        return self._partitions


class _MapPartitions(Dataset):
    def __init__(self, parent: Dataset, fn: Callable, label: str) -> None:
        super().__init__(parent.engine, (parent,), parent.num_partitions, label)
        self._fn = fn

    def _compute(self, memo: dict) -> list[list]:
        parent_parts = self.parents[0]._materialize(memo)
        fn = self._fn
        rows_in = sum(len(p) for p in parent_parts)
        with StageTimer(
            self.engine.metrics, self.label, rows_in, len(parent_parts)
        ) as timer:
            result = self.engine.scheduler.run(
                lambda index, part: list(fn(index, part)), parent_parts
            )
            timer.rows_out = sum(len(p) for p in result)
        return result


class _MapBatches(Dataset):
    """Narrow batch-at-a-time transform; elements must be sized batches
    (anything with ``__len__``), and stage row counts sum the batch
    lengths instead of counting elements."""

    def __init__(self, parent: Dataset, fn: Callable, label: str) -> None:
        super().__init__(parent.engine, (parent,), parent.num_partitions, label)
        self._fn = fn

    def _compute(self, memo: dict) -> list[list]:
        parent_parts = self.parents[0]._materialize(memo)
        fn = self._fn
        rows_in = sum(len(batch) for part in parent_parts for batch in part)
        with StageTimer(
            self.engine.metrics, self.label, rows_in, len(parent_parts)
        ) as timer:
            result = self.engine.scheduler.run(
                lambda _index, part: [fn(batch) for batch in part], parent_parts
            )
            timer.rows_out = sum(
                len(batch) for part in result for batch in part
            )
        return result


class _Union(Dataset):
    def __init__(self, left: Dataset, right: Dataset) -> None:
        if left.engine is not right.engine:
            raise ValueError("cannot union datasets from different engines")
        super().__init__(
            left.engine,
            (left, right),
            left.num_partitions + right.num_partitions,
            "union",
        )

    def _compute(self, memo: dict) -> list[list]:
        left = self.parents[0]._materialize(memo)
        right = self.parents[1]._materialize(memo)
        return list(left) + list(right)


class _Shuffle(Dataset):
    def __init__(
        self,
        parent: Dataset,
        route: Callable[[object], int],
        num_out: int,
        label: str,
        post: Callable[[int, list], list] | None = None,
    ) -> None:
        super().__init__(parent.engine, (parent,), num_out, label)
        self._route = route
        self._post = post

    def _compute(self, memo: dict) -> list[list]:
        parent_parts = self.parents[0]._materialize(memo)
        rows_in = sum(len(p) for p in parent_parts)
        with StageTimer(
            self.engine.metrics, self.label, rows_in, self.num_partitions
        ) as timer:
            buckets = exchange(
                parent_parts,
                self._route,
                self.num_partitions,
                spill_dir=self.engine.spill_dir,
                spill_threshold=self.engine.spill_threshold,
            )
            if self._post is not None:
                post = self._post
                buckets = self.engine.scheduler.run(
                    lambda index, part: list(post(index, part)), buckets
                )
            timer.rows_out = sum(len(p) for p in buckets)
        return buckets


class _Repartition(Dataset):
    """Round-robin redistribution; stateless across re-evaluations (unlike
    a counter captured in a shuffle router would be)."""

    def __init__(self, parent: Dataset, num_out: int) -> None:
        super().__init__(
            parent.engine, (parent,), num_out, f"repartition({num_out})"
        )

    def _compute(self, memo: dict) -> list[list]:
        parent_parts = self.parents[0]._materialize(memo)
        rows_in = sum(len(p) for p in parent_parts)
        with StageTimer(
            self.engine.metrics, self.label, rows_in, self.num_partitions
        ) as timer:
            buckets: list[list] = [[] for _ in range(self.num_partitions)]
            index = 0
            for partition in parent_parts:
                for record in partition:
                    buckets[index % self.num_partitions].append(record)
                    index += 1
            timer.rows_out = rows_in
        return buckets


class _SortBy(Dataset):
    _SAMPLE_PER_PARTITION = 64

    def __init__(
        self, parent: Dataset, key: Callable, ascending: bool, num_out: int
    ) -> None:
        super().__init__(parent.engine, (parent,), num_out, "sort_by")
        self._key = key
        self._ascending = ascending

    def _compute(self, memo: dict) -> list[list]:
        parent_parts = self.parents[0]._materialize(memo)
        key = self._key
        rows_in = sum(len(p) for p in parent_parts)
        with StageTimer(
            self.engine.metrics, self.label, rows_in, self.num_partitions
        ) as timer:
            sample: list = []
            for partition in parent_parts:
                step = max(1, len(partition) // self._SAMPLE_PER_PARTITION)
                sample.extend(partition[::step])
            partitioner = RangePartitioner.from_sample(
                sample, self.num_partitions, key=key
            )
            buckets = exchange(
                parent_parts,
                partitioner.partition,
                partitioner.num_partitions,
                spill_dir=self.engine.spill_dir,
                spill_threshold=self.engine.spill_threshold,
            )
            buckets = self.engine.scheduler.run(
                lambda _i, part: sorted(part, key=key, reverse=not self._ascending),
                buckets,
            )
            if not self._ascending:
                buckets = list(reversed(buckets))
            timer.rows_out = sum(len(p) for p in buckets)
        return buckets


class _Join(Dataset):
    def __init__(
        self, left: Dataset, right: Dataset, how: str, num_partitions: int
    ) -> None:
        if left.engine is not right.engine:
            raise ValueError("cannot join datasets from different engines")
        super().__init__(left.engine, (left, right), num_partitions, f"join[{how}]")
        self._how = how

    def _compute(self, memo: dict) -> list[list]:
        left_parts = self.parents[0]._materialize(memo)
        right_parts = self.parents[1]._materialize(memo)
        partitioner = HashPartitioner(self.num_partitions)
        route = lambda record: partitioner.partition(record[0])  # noqa: E731
        rows_in = sum(len(p) for p in left_parts) + sum(len(p) for p in right_parts)
        with StageTimer(
            self.engine.metrics, self.label, rows_in, self.num_partitions
        ) as timer:
            left_buckets = exchange(
                left_parts, route, self.num_partitions,
                spill_dir=self.engine.spill_dir,
                spill_threshold=self.engine.spill_threshold,
            )
            right_buckets = exchange(
                right_parts, route, self.num_partitions,
                spill_dir=self.engine.spill_dir,
                spill_threshold=self.engine.spill_threshold,
            )
            how = self._how
            paired = list(zip(left_buckets, right_buckets))

            def join_partition(_index: int, pair: tuple) -> list:
                left_bucket, right_bucket = pair
                right_table: dict = {}
                for key, value in right_bucket:
                    right_table.setdefault(key, []).append(value)
                output = []
                if how == "cogroup":
                    left_table: dict = {}
                    for key, value in left_bucket:
                        left_table.setdefault(key, []).append(value)
                    for key in set(left_table) | set(right_table):
                        output.append(
                            (key, (left_table.get(key, []), right_table.get(key, [])))
                        )
                    return output
                for key, value in left_bucket:
                    matches = right_table.get(key)
                    if matches:
                        output.extend((key, (value, match)) for match in matches)
                    elif how == "left":
                        output.append((key, (value, None)))
                return output

            buckets = self.engine.scheduler.run(join_partition, paired)
            timer.rows_out = sum(len(p) for p in buckets)
        return buckets


def _name(fn: Callable) -> str:
    return getattr(fn, "__name__", "<fn>")
