"""The engine entry point: configuration and dataset creation.

An :class:`Engine` plays the role of Spark's session/context: it owns the
default partition count, the scheduler, the optional spill directory and
the metrics recorder.  Use it as a context manager so worker pools shut
down deterministically::

    with Engine(EngineConfig(num_partitions=8)) as engine:
        counts = (
            engine.parallelize(records)
            .key_by(lambda r: r.mmsi)
            .reduce_by_key(operator.add)
            .collect()
        )
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.engine.dataset import Dataset, _Source
from repro.engine.metrics import MetricsRecorder
from repro.engine.scheduler import make_scheduler


@dataclass(frozen=True)
class EngineConfig:
    """Engine tunables.

    :param num_partitions: default parallelism for sources and shuffles.
    :param scheduler: 'serial' (reference), 'threads' or 'processes'.
    :param max_workers: pool size for the parallel schedulers.
    :param scheduler_retries: extra per-partition attempts for tasks
        that raise (transient-fault tolerance; 0 = fail fast).
    :param scheduler_backoff: seconds before the first retry, doubling
        per attempt.
    :param spill_dir: when set, shuffle buckets larger than
        ``spill_threshold`` records spill to pickle files under this
        directory.
    :param spill_threshold: records per bucket before spilling.
    :param collect_metrics: record per-stage timings and row counts.
    """

    num_partitions: int = 8
    scheduler: str = "serial"
    max_workers: int = 4
    scheduler_retries: int = 0
    scheduler_backoff: float = 0.05
    spill_dir: str | Path | None = None
    spill_threshold: int = 100_000
    collect_metrics: bool = False

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ValueError(
                f"need at least one partition, got {self.num_partitions}"
            )


class Engine:
    """Creates datasets and evaluates their DAGs."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.num_partitions = self.config.num_partitions
        self.scheduler = make_scheduler(
            self.config.scheduler,
            self.config.max_workers,
            retries=self.config.scheduler_retries,
            backoff=self.config.scheduler_backoff,
        )
        self.spill_dir = Path(self.config.spill_dir) if self.config.spill_dir else None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.spill_threshold = self.config.spill_threshold
        self.metrics: MetricsRecorder | None = (
            MetricsRecorder() if self.config.collect_metrics else None
        )

    def parallelize(
        self, data: Iterable, num_partitions: int | None = None
    ) -> Dataset:
        """Create a dataset from an in-memory iterable, split into evenly
        sized partitions."""
        records = list(data)
        parts = num_partitions or self.num_partitions
        parts = max(1, min(parts, max(1, len(records))))
        size, extra = divmod(len(records), parts)
        partitions: list[list] = []
        start = 0
        for i in range(parts):
            end = start + size + (1 if i < extra else 0)
            partitions.append(records[start:end])
            start = end
        return _Source(self, partitions)

    def empty(self) -> Dataset:
        """An empty single-partition dataset."""
        return _Source(self, [[]])

    def _evaluate(self, dataset: Dataset) -> list[list]:
        """Materialize a dataset (engine-internal; actions call this)."""
        return dataset._materialize({})

    def close(self) -> None:
        """Release the scheduler's worker pool."""
        self.scheduler.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
