"""Partitioners: how shuffled records choose their reduce partition."""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Callable, Sequence

from repro.engine.hashing import stable_hash


class HashPartitioner:
    """Routes a key to ``stable_hash(key) % num_partitions``.

    The default for all key-based shuffles; deterministic across runs.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError(f"need at least one partition, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: object) -> int:
        """Partition index for a key."""
        return stable_hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self) -> int:
        return hash(("hash", self.num_partitions))


class RangePartitioner:
    """Routes keys into contiguous ranges given sorted split points.

    With split points ``[s0, s1, ...]``, keys ``< s0`` go to partition 0,
    keys in ``[s0, s1)`` to partition 1, and so on — the partitioner behind
    total-order sorts.
    """

    def __init__(
        self,
        bounds: Sequence[object],
        key: Callable[[object], object] | None = None,
    ) -> None:
        self.bounds = list(bounds)
        self.key = key
        self.num_partitions = len(self.bounds) + 1

    def partition(self, value: object) -> int:
        """Partition index for a value (after applying the key function)."""
        probe = self.key(value) if self.key is not None else value
        return bisect_right(self.bounds, probe)

    @classmethod
    def from_sample(
        cls,
        sample: Sequence[object],
        num_partitions: int,
        key: Callable[[object], object] | None = None,
    ) -> "RangePartitioner":
        """Build split points from a sample, Spark-style: sort the sample
        and take evenly spaced quantile bounds."""
        if num_partitions < 1:
            raise ValueError(f"need at least one partition, got {num_partitions}")
        probes = sorted(key(v) if key is not None else v for v in sample)
        bounds = []
        for i in range(1, num_partitions):
            if not probes:
                break
            index = min(len(probes) - 1, i * len(probes) // num_partitions)
            bound = probes[index]
            if not bounds or bound > bounds[-1]:
                bounds.append(bound)
        return cls(bounds, key=key)
