"""Process-stable hashing for partitioners and sketches.

Python's built-in ``hash`` is salted per interpreter (PYTHONHASHSEED), so
partition assignments would differ between runs and between the processes
of the process scheduler.  ``stable_hash`` derives a 64-bit value from a
canonical byte encoding instead, making every shuffle deterministic.
"""

from __future__ import annotations

from hashlib import blake2b


def stable_hash(value: object) -> int:
    """A 64-bit hash that is identical across processes and runs.

    Supports the key types the pipeline shuffles on: ints, strings,
    bytes, floats, bools, None, and (nested) tuples thereof.
    """
    return int.from_bytes(_digest(value), "big")


# Scalar digests are memoised: shuffle keys are tuples whose elements
# (cell ids, vessel segments, port names) repeat across hundreds of
# thousands of keys, so the per-element BLAKE2b collapses to a dict hit.
# Keys pair the element with its class so ``True``/``1`` and ``1``/``1.0``
# (equal, hash-equal, differently encoded) never share an entry.  The
# cache is capped, after which misses are simply recomputed — values are
# identical either way.
_SCALAR_TYPES = (bool, int, str, bytes, float)
_CACHE_LIMIT = 1 << 17
_scalar_digests: dict[tuple, bytes] = {}


def _digest(value: object) -> bytes:
    if isinstance(value, tuple):
        hasher = blake2b(digest_size=8)
        hasher.update(b"t")
        for item in value:
            hasher.update(_digest(item))
        return hasher.digest()
    if value is not None and not isinstance(value, _SCALAR_TYPES):
        raise TypeError(
            f"unhashable key type for stable_hash: {type(value).__name__}"
        )
    cache_key = (value.__class__, value)
    cached = _scalar_digests.get(cache_key)
    if cached is not None:
        return cached
    if isinstance(value, bool):
        payload = b"o" + bytes([value])
    elif isinstance(value, int):
        if -(1 << 127) <= value < (1 << 127):
            payload = b"i" + value.to_bytes(16, "big", signed=True)
        else:
            # Arbitrary-precision fallback; the distinct tag keeps the
            # encoding injective against the fixed-width branch while
            # leaving every previously-hashable int's value unchanged.
            length = (value.bit_length() // 8) + 1
            payload = b"I" + value.to_bytes(length, "big", signed=True)
    elif isinstance(value, str):
        payload = b"s" + value.encode("utf-8")
    elif isinstance(value, bytes):
        payload = b"b" + value
    elif isinstance(value, float):
        payload = b"f" + repr(value).encode("ascii")
    else:
        payload = b"n"
    digest = blake2b(payload, digest_size=8).digest()
    if len(_scalar_digests) < _CACHE_LIMIT:
        _scalar_digests[cache_key] = digest
    return digest
