"""Process-stable hashing for partitioners and sketches.

Python's built-in ``hash`` is salted per interpreter (PYTHONHASHSEED), so
partition assignments would differ between runs and between the processes
of the process scheduler.  ``stable_hash`` derives a 64-bit value from a
canonical byte encoding instead, making every shuffle deterministic.
"""

from __future__ import annotations

from hashlib import blake2b


def stable_hash(value: object) -> int:
    """A 64-bit hash that is identical across processes and runs.

    Supports the key types the pipeline shuffles on: ints, strings,
    bytes, floats, bools, None, and (nested) tuples thereof.
    """
    return int.from_bytes(_digest(value), "big")


def _digest(value: object) -> bytes:
    if isinstance(value, bool):
        payload = b"o" + bytes([value])
    elif isinstance(value, int):
        payload = b"i" + value.to_bytes(16, "big", signed=True)
    elif isinstance(value, str):
        payload = b"s" + value.encode("utf-8")
    elif isinstance(value, bytes):
        payload = b"b" + value
    elif isinstance(value, float):
        payload = b"f" + repr(value).encode("ascii")
    elif value is None:
        payload = b"n"
    elif isinstance(value, tuple):
        hasher = blake2b(digest_size=8)
        hasher.update(b"t")
        for item in value:
            hasher.update(_digest(item))
        return hasher.digest()
    else:
        raise TypeError(
            f"unhashable key type for stable_hash: {type(value).__name__}"
        )
    return blake2b(payload, digest_size=8).digest()
