"""A miniature MapReduce/RDD engine (the paper's Apache Spark substitute).

The methodology is explicitly MapReduce: the grouping set is the map
phase, the statistical summaries the reduce phase (§3.3.4).  This package
provides the operator algebra the pipeline code programs against, shaped
after Spark's RDD API so the jobs read like the originals:

- :class:`~repro.engine.context.Engine` — entry point: configuration
  (partition count, scheduler, spill directory) and dataset creation.
- :class:`~repro.engine.dataset.Dataset` — an immutable, partitioned,
  lazily-evaluated collection with narrow transformations (``map``,
  ``filter``, ``flat_map``, ``map_partitions``) and shuffle
  transformations (``reduce_by_key``, ``combine_by_key``,
  ``group_by_key``, ``join``, ``sort_by``, ``distinct``,
  ``repartition``).
- :mod:`~repro.engine.partitioner` — hash and range partitioners over a
  process-stable hash.
- :mod:`~repro.engine.shuffle` — the all-to-all exchange, with optional
  disk spill for outsize buckets.
- :mod:`~repro.engine.scheduler` — serial, thread-pool and process-pool
  execution backends.
- :mod:`~repro.engine.metrics` — per-stage instrumentation used by the
  Figure 3 stage-timing benchmark.

Deliberate scope cuts versus Spark: no lineage-based fault tolerance (a
single host has nothing to recover from), no SQL/catalyst layer, no
broadcast variables (closures capture small tables directly).
"""

from repro.engine.context import Engine, EngineConfig
from repro.engine.dataset import Dataset
from repro.engine.hashing import stable_hash
from repro.engine.metrics import CounterSet, MetricsRecorder, StageMetric
from repro.engine.partitioner import HashPartitioner, RangePartitioner

__all__ = [
    "Engine",
    "EngineConfig",
    "Dataset",
    "HashPartitioner",
    "RangePartitioner",
    "stable_hash",
    "MetricsRecorder",
    "CounterSet",
    "StageMetric",
]
