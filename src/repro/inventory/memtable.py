"""The in-memory half of the live write path: records and memtables.

An :class:`IngestRecord` is one enriched position report as it crosses
the live write path — the same feature tuple the batch pipeline's
:class:`~repro.pipeline.records.CellRecord` carries, minus the cell
(the memtable derives it from (lat, lon) at apply time so a feed never
has to know the grid resolution).  It has two serial forms:

- :meth:`IngestRecord.to_payload` / :meth:`from_payload` — the compact
  binary form (via :mod:`repro.inventory.codec`) that goes into WAL
  entries, so replaying a WAL rebuilds exactly the memtable that was
  lost;
- :meth:`IngestRecord.to_wire` / :meth:`from_wire` — the JSON-safe dict
  form the ``ingest`` server request carries; ``from_wire`` validates
  every field and raises :class:`ValueError` naming the offender, which
  the service layer surfaces as a typed ``bad_request``.

A :class:`Memtable` folds records into
:class:`~repro.inventory.summary.CellSummary` sketches keyed by
:class:`~repro.inventory.keys.GroupKey`, using the *same* fan-out
(:func:`~repro.inventory.keys.keys_for_record`) and the same
``CellSummary.update`` folding as the batch pipeline
(:mod:`repro.pipeline.features`) — so a flushed memtable is
byte-identical to what a batch build of the same records would have
produced, and the summary merge laws make (tables ⊕ memtable) reads
exact.  The memtable itself is a plain dict with no locking: the owning
:class:`~repro.inventory.live.LiveInventory` serialises writers and
snapshots readers.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.hexgrid import latlng_to_cell
from repro.inventory.codec import decode, encode
from repro.inventory.keys import GroupKey, GroupingSet, keys_for_record
from repro.inventory.summary import (
    DEFAULT_SUMMARY_CONFIG,
    CellSummary,
    SummaryConfig,
)

#: Payload schema version (first element of the encoded list), so the
#: WAL entry format can evolve without guessing.
_PAYLOAD_VERSION = 1


@dataclass(frozen=True, slots=True)
class IngestRecord:
    """One live position report with optional trip enrichment.

    ``heading`` is ``None`` for the transponder's 511 sentinel; trip
    fields are ``None`` for records outside any detected trip (they
    then feed only the CELL and CELL_TYPE grouping sets, exactly like
    the batch pipeline).
    """

    mmsi: int
    ts: float
    lat: float
    lon: float
    sog: float
    cog: float
    vessel_type: str = "unknown"
    heading: int | None = None
    trip_id: str | None = None
    origin: str | None = None
    destination: str | None = None
    eto_s: float | None = None
    ata_s: float | None = None
    next_cell: int | None = None
    extras: tuple[float | None, ...] = ()

    # -- WAL binary form -----------------------------------------------------------

    def to_payload(self) -> bytes:
        """Compact binary form for WAL entries."""
        return encode(
            [
                _PAYLOAD_VERSION,
                self.mmsi,
                self.ts,
                self.lat,
                self.lon,
                self.sog,
                self.cog,
                self.vessel_type,
                self.heading,
                self.trip_id,
                self.origin,
                self.destination,
                self.eto_s,
                self.ata_s,
                self.next_cell,
                list(self.extras),
            ]
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "IngestRecord":
        """Inverse of :meth:`to_payload` (raises ``ValueError`` on shape
        mismatch — a CRC-valid entry that does not decode is a format
        bug, not disk damage)."""
        data = decode(payload)
        if not isinstance(data, list) or len(data) != 16:
            raise ValueError("malformed ingest payload")
        if data[0] != _PAYLOAD_VERSION:
            raise ValueError(f"unsupported ingest payload version {data[0]!r}")
        return cls(
            mmsi=int(data[1]),
            ts=float(data[2]),
            lat=float(data[3]),
            lon=float(data[4]),
            sog=float(data[5]),
            cog=float(data[6]),
            vessel_type=str(data[7]),
            heading=None if data[8] is None else int(data[8]),
            trip_id=None if data[9] is None else str(data[9]),
            origin=None if data[10] is None else str(data[10]),
            destination=None if data[11] is None else str(data[11]),
            eto_s=None if data[12] is None else float(data[12]),
            ata_s=None if data[13] is None else float(data[13]),
            next_cell=None if data[14] is None else int(data[14]),
            extras=tuple(
                None if value is None else float(value) for value in data[15]
            ),
        )

    # -- JSON wire form ------------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe dict for the ``ingest`` request (omits ``None``s)."""
        out: dict[str, Any] = {
            "mmsi": self.mmsi,
            "ts": self.ts,
            "lat": self.lat,
            "lon": self.lon,
            "sog": self.sog,
            "cog": self.cog,
            "vessel_type": self.vessel_type,
        }
        for name in ("heading", "trip_id", "origin", "destination", "eto_s", "ata_s", "next_cell"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.extras:
            out["extras"] = list(self.extras)
        return out

    @classmethod
    def from_wire(cls, data: object) -> "IngestRecord":
        """Validate and parse one wire record (``ValueError`` names the
        offending field, surfaced as a ``bad_request`` by the server)."""
        if not isinstance(data, dict):
            raise ValueError("record must be an object")

        def _req_num(name: str) -> float:
            value = data.get(name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"field {name!r} must be a number")
            return float(value)

        mmsi = data.get("mmsi")
        if not isinstance(mmsi, int) or isinstance(mmsi, bool):
            raise ValueError("field 'mmsi' must be an integer")
        lat = _req_num("lat")
        lon = _req_num("lon")
        if not -90.0 <= lat <= 90.0:
            raise ValueError("field 'lat' out of range")
        if not -180.0 <= lon <= 180.0:
            raise ValueError("field 'lon' out of range")
        vessel_type = data.get("vessel_type", "unknown")
        if not isinstance(vessel_type, str) or not vessel_type:
            raise ValueError("field 'vessel_type' must be a non-empty string")

        def _opt_num(name: str) -> float | None:
            value = data.get(name)
            if value is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"field {name!r} must be a number")
            return float(value)

        def _opt_str(name: str) -> str | None:
            value = data.get(name)
            if value is None:
                return None
            if not isinstance(value, str):
                raise ValueError(f"field {name!r} must be a string")
            return value

        heading = data.get("heading")
        if heading is not None and (not isinstance(heading, int) or isinstance(heading, bool)):
            raise ValueError("field 'heading' must be an integer")
        next_cell = data.get("next_cell")
        if next_cell is not None and (
            not isinstance(next_cell, int) or isinstance(next_cell, bool)
        ):
            raise ValueError("field 'next_cell' must be an integer")
        extras_raw = data.get("extras", [])
        if not isinstance(extras_raw, list):
            raise ValueError("field 'extras' must be a list")
        extras = []
        for value in extras_raw:
            if value is None:
                extras.append(None)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                extras.append(float(value))
            else:
                raise ValueError("field 'extras' must hold numbers or nulls")
        return cls(
            mmsi=mmsi,
            ts=_req_num("ts"),
            lat=lat,
            lon=lon,
            sog=_req_num("sog"),
            cog=_req_num("cog"),
            vessel_type=vessel_type,
            heading=heading,
            trip_id=_opt_str("trip_id"),
            origin=_opt_str("origin"),
            destination=_opt_str("destination"),
            eto_s=_opt_num("eto_s"),
            ata_s=_opt_num("ata_s"),
            next_cell=next_cell,
            extras=tuple(extras),
        )


@dataclass
class Memtable:
    """Unsorted in-memory (GroupKey → CellSummary) accumulator.

    Apply-only until frozen by the owner; ``records_applied`` is the
    flush-threshold input.  Folding matches the batch pipeline exactly
    (same fan-out, same ``CellSummary.update`` arguments), which is what
    makes flushed tables byte-identical to batch-built ones.
    """

    resolution: int
    config: SummaryConfig = DEFAULT_SUMMARY_CONFIG
    groups: dict[GroupKey, CellSummary] = field(default_factory=dict)
    records_applied: int = 0

    def apply(self, record: IngestRecord) -> int:
        """Fold one record in; returns the cell it mapped to."""
        cell = int(latlng_to_cell(record.lat, record.lon, self.resolution))
        for key in keys_for_record(
            cell=cell,
            vessel_type=record.vessel_type,
            origin=record.origin,
            destination=record.destination,
        ):
            summary = self.groups.get(key)
            if summary is None:
                summary = CellSummary(self.config)
                self.groups[key] = summary
            summary.update(
                mmsi=record.mmsi,
                sog=record.sog,
                cog=record.cog,
                heading=record.heading,
                trip_id=record.trip_id,
                eto_s=record.eto_s,
                ata_s=record.ata_s,
                origin=record.origin,
                destination=record.destination,
                next_cell=record.next_cell,
                extras=record.extras,
            )
        self.records_applied += 1
        return cell

    def __len__(self) -> int:
        return len(self.groups)

    def get(self, key: GroupKey) -> CellSummary | None:
        """The live summary for one group (shared state — callers copy)."""
        return self.groups.get(key)

    def items(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """All (key, summary) pairs, unsorted (flush sorts)."""
        return iter(self.groups.items())

    def cells(self) -> set[int]:
        """Every cell with at least one group."""
        return {key.cell for key in self.groups}

    def route_groups(
        self, origin: str, destination: str, vessel_type: str
    ) -> dict[int, CellSummary]:
        """CELL_OD_TYPE summaries for one route (live references)."""
        out: dict[int, CellSummary] = {}
        for key, summary in self.groups.items():
            if (
                key.grouping_set is GroupingSet.CELL_OD_TYPE
                and key.origin == origin
                and key.destination == destination
                and key.vessel_type == vessel_type
            ):
                out[key.cell] = summary
        return out
