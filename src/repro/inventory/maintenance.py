"""Background maintenance: flush/compaction jobs off the ingest path.

PR 8's write path ran flush and compaction *inline* under the write
lock, so every Nth ``ingest()`` call paid a full table write or a
merge-everything compaction.  :class:`MaintenanceScheduler` moves that
work onto one daemon worker thread: the ingest path only seals the
active memtable and *submits* a job; the worker writes tables, commits
manifests and merges tiers while new appends keep flowing.

Contracts the test suite enforces:

**Single mutator.**  Jobs are the only code that writes tables or
rewrites the manifest after construction, and they are serialised — by
the worker loop in ``background`` mode, by the submitting thread itself
in ``inline`` mode (jobs run synchronously inside ``submit``, which is
what the deterministic fault matrix uses).  Both modes execute the same
job functions, so the crash-anywhere property covers both.

**Fail-stop.**  A job that raises freezes the scheduler: the queue is
dropped, the worker exits, and the recorded error is re-raised — the
original exception instance, so typed errors stay typed — from the next
``ingest()`` / ``flush()`` / ``wait_idle()``.  A crash in a background
job therefore lands exactly like a crash on the old inline path:
surfaced to the writer, recovered by reopening the directory (the WAL
still holds everything an unflushed memtable did).  ``close()`` never
raises the stored error; shutdown is cleanup, not a report channel.

**Bounded stall.**  :class:`IngestBackpressure` is the typed write-stall
signal the valve in :class:`~repro.inventory.live.LiveInventory` raises
when sealed memtables or compaction debt exceed their hard limits for
longer than the bounded wait — the client gets an explicit
``ingest_backpressure`` error instead of unbounded latency.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.engine.metrics import CounterSet
from repro.obs import registry
from repro.obs import trace as obs

SPAN_JOB = registry.register_span(
    "maintenance.job",
    "one maintenance job (memtable flush or tier compaction), end to end",
)

COUNTER_JOBS = registry.register_counter(
    "maintenance.jobs",
    "maintenance jobs executed to completion (flushes and tier compactions)",
)
COUNTER_JOB_ERRORS = registry.register_counter(
    "maintenance.errors",
    "maintenance jobs that raised; the scheduler fail-stops and the error "
    "resurfaces on the next ingest/flush call",
)
COUNTER_BACKPRESSURE_WAITS = registry.register_counter(
    "ingest.backpressure_waits",
    "ingest calls that blocked on the write-stall valve (sealed memtables "
    "or compaction debt over the hard limit)",
)
COUNTER_BACKPRESSURE_TIMEOUTS = registry.register_counter(
    "ingest.backpressure_timeouts",
    "ingest calls that exhausted the bounded backpressure wait and failed "
    "with a typed ingest_backpressure error",
)

#: Sealed-but-unflushed memtables that arm the backpressure valve.
DEFAULT_MAX_FROZEN_MEMTABLES = 4
#: Compaction debt (bytes the policy wants rewritten) that arms the valve.
DEFAULT_MAX_DEBT_BYTES = 256 * 1024 * 1024
#: How long an ingest call may block on the valve before failing typed.
DEFAULT_BACKPRESSURE_WAIT_S = 5.0

#: Job kinds a :class:`MaintenanceScheduler` accepts.
JOB_FLUSH = "flush"
JOB_TIER = "tier"
JOB_MAJOR = "major"


class IngestBackpressure(RuntimeError):
    """Typed write stall: maintenance cannot keep up with ingestion.

    Raised by the ingest path after the bounded valve wait expires.  The
    server maps it to the ``ingest_backpressure`` wire error; clients
    should back off and retry (the batch was *not* accepted).
    """

    def __init__(
        self,
        message: str,
        *,
        frozen_memtables: int,
        debt_bytes: int,
        waited_s: float,
    ) -> None:
        super().__init__(message)
        self.frozen_memtables = frozen_memtables
        self.debt_bytes = debt_bytes
        self.waited_s = waited_s


@dataclass(frozen=True)
class MaintenanceConfig:
    """Scheduler mode plus the write-stall valve's hard limits."""

    background: bool = True
    max_frozen_memtables: int = DEFAULT_MAX_FROZEN_MEMTABLES
    max_debt_bytes: int = DEFAULT_MAX_DEBT_BYTES
    backpressure_wait_s: float = DEFAULT_BACKPRESSURE_WAIT_S

    def __post_init__(self) -> None:
        if self.max_frozen_memtables < 1:
            raise ValueError("max_frozen_memtables must be >= 1")
        if self.max_debt_bytes < 1:
            raise ValueError("max_debt_bytes must be >= 1")
        if self.backpressure_wait_s < 0:
            raise ValueError("backpressure_wait_s must be >= 0")


class MaintenanceScheduler:
    """Runs named maintenance jobs on one daemon worker (see module doc).

    ``jobs`` maps a job kind to its zero-argument body.  In background
    mode kinds are deduplicated while queued (a second ``submit`` of a
    kind already waiting is a no-op — the queued run will observe the
    newer state anyway); a kind currently *running* can be re-queued,
    which is how cascading tier merges chain.  In inline mode ``submit``
    executes the job before returning and errors propagate directly to
    the submitter.
    """

    def __init__(
        self,
        jobs: dict[str, Callable[[], None]],
        *,
        background: bool = True,
        counters: CounterSet | None = None,
        name: str = "repro-maintenance",
    ) -> None:
        self._jobs = dict(jobs)
        self.background = background
        self.counters = counters if counters is not None else CounterSet()
        self._cond = threading.Condition()
        self._queue: deque[str] = deque()
        self._pending: set[str] = set()
        self._running: str | None = None
        self._error: BaseException | None = None
        self._closed = False
        self._thread: threading.Thread | None = None
        if background:
            self._thread = threading.Thread(
                target=self._worker, name=name, daemon=True
            )
            self._thread.start()

    # -- state ---------------------------------------------------------------------

    @property
    def error(self) -> BaseException | None:
        """The exception that fail-stopped the scheduler, if any."""
        with self._cond:
            return self._error

    def check(self) -> None:
        """Re-raise the stored error (the original instance) if a job
        failed — the ingest path calls this so background crashes are
        never silent."""
        with self._cond:
            error = self._error
        if error is not None:
            raise error

    def queue_depth(self) -> int:
        """Jobs waiting plus the one running — the ``stats`` gauge."""
        with self._cond:
            return len(self._queue) + (1 if self._running is not None else 0)

    # -- submission ----------------------------------------------------------------

    def submit(self, kind: str) -> None:
        """Enqueue ``kind`` (background) or run it now (inline).

        Silently drops the job when the scheduler is closed or already
        fail-stopped — the WAL still holds everything an unflushed
        memtable does, so a dropped job never loses data.
        """
        if kind not in self._jobs:
            raise ValueError(f"unknown maintenance job kind: {kind!r}")
        with self._cond:
            if self._closed or self._error is not None:
                return
            if self.background:
                if kind not in self._pending:
                    self._pending.add(kind)
                    self._queue.append(kind)
                    self._cond.notify_all()
                return
        # Inline mode: the submitting thread is the worker.  Errors
        # propagate to the caller *and* fail-stop the scheduler, so both
        # modes converge on the same post-crash state.
        try:
            self._execute(kind)
        except BaseException as exc:
            with self._cond:
                self._error = exc
                self._cond.notify_all()
            self.counters.increment(COUNTER_JOB_ERRORS)
            raise

    def wait_idle(self, timeout: float | None = None) -> None:
        """Block until no job is queued or running; re-raise a stored
        job error.  Raises :class:`TimeoutError` when ``timeout``
        (seconds) elapses first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._error is None and (self._queue or self._running):
                remaining: float | None = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"maintenance still busy after {timeout}s "
                            f"(queue depth {len(self._queue)})"
                        )
                self._cond.wait(remaining)
            error = self._error
        if error is not None:
            raise error

    def close(self, *, drain: bool = True) -> None:
        """Stop the worker.  ``drain=True`` finishes queued jobs first;
        ``drain=False`` cancels them (safe: the WAL covers anything an
        unflushed job would have persisted).  Never raises a stored job
        error — shutdown is cleanup."""
        with self._cond:
            if self._closed:
                thread = self._thread
            else:
                self._closed = True
                if not drain:
                    self._queue.clear()
                    self._pending.clear()
                thread = self._thread
                self._cond.notify_all()
        if thread is not None and thread is not threading.current_thread():
            thread.join()

    # -- execution -----------------------------------------------------------------

    def _execute(self, kind: str) -> None:
        with obs.span(SPAN_JOB) as sp:
            sp.set("kind", kind)
            self._jobs[kind]()
        self.counters.increment(COUNTER_JOBS)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                kind = self._queue.popleft()
                self._pending.discard(kind)
                self._running = kind
            try:
                self._execute(kind)
            except BaseException as exc:  # fail-stop; resurfaced via check()
                with self._cond:
                    self._error = exc
                    self._running = None
                    self._queue.clear()
                    self._pending.clear()
                    self._cond.notify_all()
                self.counters.increment(COUNTER_JOB_ERRORS)
                return
            with self._cond:
                self._running = None
                self._cond.notify_all()
