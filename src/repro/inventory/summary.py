"""The cell summary: Table 3 as a mergeable product of sketches.

One :class:`CellSummary` holds every (feature × statistic) cell of the
paper's Table 3:

=============  ===================================================
Records        count
Ships          distinct count (HyperLogLog)
Course         circular mean* + 30° bins
Heading        circular mean* + 30° bins
Speed          mean, std, p10/p50/p90 (t-digest)
Trips          distinct count (HyperLogLog)
ETO            mean, std, p10/p50/p90
ATA            mean, std, p10/p50/p90
Origin         top-N (Space-Saving)
Destination    top-N (Space-Saving)
Transitions    top-N of next-cell ids (Space-Saving)
=============  ===================================================

Because every component is a commutative monoid, the summary itself is
one: ``update`` folds a record in, ``merge`` folds another summary in, and
any partitioning of the input produces the same result (up to sketch
approximation), which is what lets the engine build the inventory with
``combine_by_key``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sketches import (
    CircularMoments,
    DirectionHistogram,
    HyperLogLog,
    MomentsSketch,
    SpaceSaving,
    TDigest,
)


@dataclass(frozen=True)
class SummaryConfig:
    """Sketch sizing knobs (accuracy ↔ memory).

    The default HLL precision (10 → ~3.2 % standard error) matches the
    accuracy class of Spark's ``approx_count_distinct`` default (5 % rsd)
    that the paper's stack would have used, at a quarter of the memory of
    p=12 — which matters when an inventory holds millions of groups, each
    with two HLLs.

    ``extra_names`` declares fused non-AIS features (§5 future work, e.g.
    wind speed): each gets a mergeable moments sketch per group, fed from
    the matching slot of a record's extras tuple.
    """

    hll_precision: int = 10
    tdigest_compression: float = 100.0
    topn_capacity: int = 32
    direction_bin_deg: float = 30.0
    extra_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.topn_capacity < 1:
            raise ValueError("topn_capacity must be positive")
        if len(set(self.extra_names)) != len(self.extra_names):
            raise ValueError("extra feature names must be unique")


DEFAULT_SUMMARY_CONFIG = SummaryConfig()


class CellSummary:
    """Mergeable per-group statistics (one row of the global inventory)."""

    __slots__ = (
        "config",
        "records",
        "ships",
        "course",
        "course_bins",
        "heading",
        "heading_bins",
        "speed",
        "speed_quantiles",
        "trips",
        "eto",
        "eto_quantiles",
        "ata",
        "ata_quantiles",
        "origins",
        "destinations",
        "transitions",
        "extras",
    )

    def __init__(self, config: SummaryConfig = DEFAULT_SUMMARY_CONFIG) -> None:
        self.config = config
        self.records = 0
        self.ships = HyperLogLog(config.hll_precision)
        self.course = CircularMoments()
        self.course_bins = DirectionHistogram(config.direction_bin_deg)
        self.heading = CircularMoments()
        self.heading_bins = DirectionHistogram(config.direction_bin_deg)
        self.speed = MomentsSketch()
        self.speed_quantiles = TDigest(config.tdigest_compression)
        self.trips = HyperLogLog(config.hll_precision)
        self.eto = MomentsSketch()
        self.eto_quantiles = TDigest(config.tdigest_compression)
        self.ata = MomentsSketch()
        self.ata_quantiles = TDigest(config.tdigest_compression)
        self.origins = SpaceSaving(config.topn_capacity)
        self.destinations = SpaceSaving(config.topn_capacity)
        self.transitions = SpaceSaving(config.topn_capacity)
        self.extras: dict[str, MomentsSketch] = {
            name: MomentsSketch() for name in config.extra_names
        }

    def update(
        self,
        mmsi: int,
        sog: float,
        cog: float,
        heading: int | None,
        trip_id: str | None = None,
        eto_s: float | None = None,
        ata_s: float | None = None,
        origin: str | None = None,
        destination: str | None = None,
        next_cell: int | None = None,
        extras: tuple[float | None, ...] = (),
    ) -> None:
        """Fold one enriched position report into the summary.

        Trip-related arguments are ``None`` for records without trip
        semantics; heading is ``None`` when the transponder reported the
        511 'not available' sentinel.  ``extras`` values align with the
        config's ``extra_names`` (``None`` slots are skipped).
        """
        self.records += 1
        self.ships.update(mmsi)
        self.course.update(cog)
        self.course_bins.update(cog)
        if heading is not None:
            self.heading.update(float(heading))
            self.heading_bins.update(float(heading))
        self.speed.update(sog)
        self.speed_quantiles.update(sog)
        if trip_id is not None:
            self.trips.update(trip_id)
        if eto_s is not None:
            self.eto.update(eto_s)
            self.eto_quantiles.update(eto_s)
        if ata_s is not None:
            self.ata.update(ata_s)
            self.ata_quantiles.update(ata_s)
        if origin is not None:
            self.origins.update(origin)
        if destination is not None:
            self.destinations.update(destination)
        if next_cell is not None:
            self.transitions.update(next_cell)
        if extras:
            for name, value in zip(self.config.extra_names, extras):
                if value is not None:
                    self.extras[name].update(value)

    def merge(self, other: "CellSummary") -> "CellSummary":
        """Fold another summary in; returns self for reduce-style chaining."""
        self.records += other.records
        self.ships.merge(other.ships)
        self.course.merge(other.course)
        self.course_bins.merge(other.course_bins)
        self.heading.merge(other.heading)
        self.heading_bins.merge(other.heading_bins)
        self.speed.merge(other.speed)
        self.speed_quantiles.merge(other.speed_quantiles)
        self.trips.merge(other.trips)
        self.eto.merge(other.eto)
        self.eto_quantiles.merge(other.eto_quantiles)
        self.ata.merge(other.ata)
        self.ata_quantiles.merge(other.ata_quantiles)
        self.origins.merge(other.origins)
        self.destinations.merge(other.destinations)
        self.transitions.merge(other.transitions)
        for name, sketch in other.extras.items():
            if name in self.extras:
                self.extras[name].merge(sketch)
            else:
                self.extras[name] = sketch
        return self

    # -- derived views ----------------------------------------------------------

    def mean_speed_kn(self) -> float | None:
        """Average speed over ground, or ``None`` for an empty summary."""
        return self.speed.mean if self.speed.count else None

    def mean_course_deg(self) -> float | None:
        """Circular mean course, or ``None`` when undefined."""
        return self.course.mean_deg

    def mean_ata_s(self) -> float | None:
        """Average actual-time-to-arrival in seconds (Figure 5's value)."""
        return self.ata.mean if self.ata.count else None

    def speed_percentiles(self) -> tuple[float, float, float] | None:
        """The paper's (p10, p50, p90) for speed."""
        if self.speed.count == 0:
            return None
        q = self.speed_quantiles.quantile
        return (q(0.10), q(0.50), q(0.90))

    def top_destination(self) -> str | None:
        """Most frequent destination (Figure 6's value)."""
        top = self.destinations.top(1)
        return top[0].value if top else None

    def top_transitions(self, n: int = 6) -> list[tuple[int, int]]:
        """Most frequent (next_cell, count) transitions."""
        return [(item.value, item.count) for item in self.transitions.top(n)]

    def to_dict(self) -> dict:
        """Serialisable state (used by the binary codec and JSON export)."""
        return {
            "config": {
                "hll": self.config.hll_precision,
                "td": self.config.tdigest_compression,
                "topn": self.config.topn_capacity,
                "bin": self.config.direction_bin_deg,
                "extra_names": list(self.config.extra_names),
            },
            "records": self.records,
            "ships": self.ships.to_dict(),
            "course": self.course.to_dict(),
            "course_bins": self.course_bins.to_dict(),
            "heading": self.heading.to_dict(),
            "heading_bins": self.heading_bins.to_dict(),
            "speed": self.speed.to_dict(),
            "speed_q": self.speed_quantiles.to_dict(),
            "trips": self.trips.to_dict(),
            "eto": self.eto.to_dict(),
            "eto_q": self.eto_quantiles.to_dict(),
            "ata": self.ata.to_dict(),
            "ata_q": self.ata_quantiles.to_dict(),
            "origins": self.origins.to_dict(),
            "destinations": self.destinations.to_dict(),
            "transitions": self.transitions.to_dict(),
            "extras": {
                name: sketch.to_dict() for name, sketch in self.extras.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellSummary":
        """Reconstruct from :meth:`to_dict` output."""
        cfg = data["config"]
        summary = cls(
            SummaryConfig(
                hll_precision=int(cfg["hll"]),
                tdigest_compression=float(cfg["td"]),
                topn_capacity=int(cfg["topn"]),
                direction_bin_deg=float(cfg["bin"]),
                extra_names=tuple(cfg.get("extra_names", ())),
            )
        )
        summary.records = int(data["records"])
        summary.ships = HyperLogLog.from_dict(data["ships"])
        summary.course = CircularMoments.from_dict(data["course"])
        summary.course_bins = DirectionHistogram.from_dict(data["course_bins"])
        summary.heading = CircularMoments.from_dict(data["heading"])
        summary.heading_bins = DirectionHistogram.from_dict(data["heading_bins"])
        summary.speed = MomentsSketch.from_dict(data["speed"])
        summary.speed_quantiles = TDigest.from_dict(data["speed_q"])
        summary.trips = HyperLogLog.from_dict(data["trips"])
        summary.eto = MomentsSketch.from_dict(data["eto"])
        summary.eto_quantiles = TDigest.from_dict(data["eto_q"])
        summary.ata = MomentsSketch.from_dict(data["ata"])
        summary.ata_quantiles = TDigest.from_dict(data["ata_q"])
        summary.origins = SpaceSaving.from_dict(data["origins"])
        summary.destinations = SpaceSaving.from_dict(data["destinations"])
        summary.transitions = SpaceSaving.from_dict(data["transitions"])
        summary.extras = {
            name: MomentsSketch.from_dict(payload)
            for name, payload in data.get("extras", {}).items()
        }
        return summary
