"""SSTable compaction: k-way merging of persisted inventories.

An operational deployment builds one inventory table per ingestion window
(day, week) and periodically compacts them — the LSM pattern.  Because
cell summaries form a monoid, compaction is exact: merging the tables of
disjoint windows yields byte-for-byte the statistics of a single build
over the union.

:func:`merge_tables` streams the inputs through a k-way heap merge in key
order, merging summaries of equal keys, so peak memory is one entry per
input table regardless of table sizes.  The output gets its route-index
sidecar for free (the writer emits it), so a compacted table is
immediately servable by
:class:`~repro.inventory.backend.SSTableInventory`.
"""

from __future__ import annotations

import heapq
from pathlib import Path

from repro.inventory.sstable import SSTableReader, SSTableWriter, _key_bytes


def merge_tables(
    inputs: list[str | Path],
    output: str | Path,
    block_size: int = 16 * 1024,
) -> int:
    """Compact several inventory tables into one; returns the entry count.

    Keys appearing in several inputs have their summaries merged (the
    summary monoid); each input must itself be a valid table.  The output
    path must not name any input: the output file is opened for writing
    up front, so compacting a table onto itself would silently destroy it.
    """
    if not inputs:
        raise ValueError("need at least one input table")
    output_resolved = Path(output).resolve()
    for path in inputs:
        if Path(path).resolve() == output_resolved:
            raise ValueError(
                f"output table {output} is also an input; compaction would "
                "overwrite it mid-read"
            )
    readers: list[SSTableReader] = []
    try:
        for path in inputs:
            readers.append(SSTableReader(path))
        heap = []
        scans = [reader.scan() for reader in readers]
        for index, scan in enumerate(scans):
            entry = next(scan, None)
            if entry is not None:
                key, summary = entry
                heapq.heappush(heap, (_key_bytes(key), index, key, summary))
        entries = 0
        with SSTableWriter(output, block_size=block_size) as writer:
            current_raw: bytes | None = None
            current_key = None
            current_summary = None
            while heap:
                raw, index, key, summary = heapq.heappop(heap)
                if current_raw is None:
                    current_raw, current_key, current_summary = raw, key, summary
                elif raw == current_raw:
                    current_summary.merge(summary)
                else:
                    writer.add(current_key, current_summary)
                    entries += 1
                    current_raw, current_key, current_summary = raw, key, summary
                entry = next(scans[index], None)
                if entry is not None:
                    next_key, next_summary = entry
                    heapq.heappush(
                        heap, (_key_bytes(next_key), index, next_key, next_summary)
                    )
            if current_raw is not None:
                writer.add(current_key, current_summary)
                entries += 1
        return entries
    finally:
        for reader in readers:
            reader.close()
