"""SSTable compaction: k-way merging of persisted inventories.

An operational deployment builds one inventory table per ingestion window
(day, week) and periodically compacts them — the LSM pattern.  Because
cell summaries form a monoid, compaction is exact: merging the tables of
disjoint windows yields byte-for-byte the statistics of a single build
over the union.

:func:`merge_tables` streams the inputs through a k-way heap merge in key
order, merging summaries of equal keys, so peak memory is one entry per
input table regardless of table sizes.
"""

from __future__ import annotations

import heapq
from pathlib import Path

from repro.inventory.sstable import SSTableReader, SSTableWriter, _key_bytes


def merge_tables(
    inputs: list[str | Path],
    output: str | Path,
    block_size: int = 16 * 1024,
) -> int:
    """Compact several inventory tables into one; returns the entry count.

    Keys appearing in several inputs have their summaries merged (the
    summary monoid); each input must itself be a valid table.
    """
    if not inputs:
        raise ValueError("need at least one input table")
    readers = [SSTableReader(path) for path in inputs]
    try:
        heap = []
        scans = [reader.scan() for reader in readers]
        for index, scan in enumerate(scans):
            entry = next(scan, None)
            if entry is not None:
                key, summary = entry
                heapq.heappush(heap, (_key_bytes(key), index, key, summary))
        entries = 0
        with SSTableWriter(output, block_size=block_size) as writer:
            current_raw: bytes | None = None
            current_key = None
            current_summary = None
            while heap:
                raw, index, key, summary = heapq.heappop(heap)
                if current_raw is None:
                    current_raw, current_key, current_summary = raw, key, summary
                elif raw == current_raw:
                    current_summary.merge(summary)
                else:
                    writer.add(current_key, current_summary)
                    entries += 1
                    current_raw, current_key, current_summary = raw, key, summary
                entry = next(scans[index], None)
                if entry is not None:
                    next_key, next_summary = entry
                    heapq.heappush(
                        heap, (_key_bytes(next_key), index, next_key, next_summary)
                    )
            if current_raw is not None:
                writer.add(current_key, current_summary)
                entries += 1
        return entries
    finally:
        for reader in readers:
            reader.close()
