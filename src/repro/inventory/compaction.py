"""SSTable compaction: k-way merging and the size-tiered policy.

An operational deployment builds one inventory table per ingestion window
(day, week) and periodically compacts them — the LSM pattern.  Because
cell summaries form a monoid, compaction is exact: merging the tables of
disjoint windows yields byte-for-byte the statistics of a single build
over the union.

:func:`merge_tables` streams the inputs through a k-way heap merge in key
order, merging summaries of equal keys, so peak memory is one entry per
input table regardless of table sizes.  The output gets its route-index
sidecar for free (the writer emits it), so a compacted table is
immediately servable by
:class:`~repro.inventory.backend.SSTableInventory`.

:class:`CompactionPolicy` is the size-tiered selector the background
maintenance scheduler consults: tables are bucketed into geometric size
tiers, and one compaction merges one *contiguous, same-tier run* of at
least ``fanout`` tables — never the whole table set.  Contiguity in
table-age order is not an optimisation, it is a correctness requirement:
reads and :func:`merge_tables` both fold oldest-source-first, so a merge
may only collapse adjacent elements of that fold (associativity), with
the output spliced back into the run's position.  Merging a
non-contiguous selection would reorder the fold and (for any
non-commutative summary component) change answers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.inventory.sstable import SSTableReader, SSTableWriter, _key_bytes
from repro.obs import registry

SPAN_TIER_COMPACT = registry.register_span(
    "compaction.tier",
    "merging one contiguous same-tier run of live tables into one output",
)

#: Same-tier tables that trigger a tier merge (0 disables compaction).
DEFAULT_TIER_FANOUT = 4
#: Ceiling of tier 0; tier t spans sizes up to base * fanout**t.
DEFAULT_TIER_BASE_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class CompactionTask:
    """One policy decision: merge tables ``[start, stop)`` (age order)."""

    start: int
    stop: int
    tier: int
    input_bytes: int


@dataclass(frozen=True)
class CompactionPolicy:
    """Size-tiered selection over the live table list (oldest first).

    ``tier_of`` buckets a table by size into geometric tiers (tier 0
    up to ``base_bytes``, each subsequent tier ``fanout`` times wider).
    ``choose`` picks the cheapest eligible merge: the smallest-tier
    contiguous run of at least ``fanout`` same-tier tables, oldest run
    on ties.  ``fanout == 0`` disables compaction entirely.
    """

    fanout: int = DEFAULT_TIER_FANOUT
    base_bytes: int = DEFAULT_TIER_BASE_BYTES

    def __post_init__(self) -> None:
        if self.fanout != 0 and self.fanout < 2:
            raise ValueError("tier fanout must be 0 (disabled) or >= 2")
        if self.base_bytes < 1:
            raise ValueError("tier base_bytes must be positive")

    def tier_of(self, size_bytes: int) -> int:
        """The tier a table of ``size_bytes`` belongs to."""
        growth = max(2, self.fanout)
        tier = 0
        ceiling = self.base_bytes
        while size_bytes > ceiling:
            tier += 1
            ceiling *= growth
        return tier

    def _runs(self, sizes: list[int]) -> list[CompactionTask]:
        """Contiguous same-tier runs of at least ``fanout`` tables."""
        if not self.fanout:
            return []
        tiers = [self.tier_of(size) for size in sizes]
        runs: list[CompactionTask] = []
        start = 0
        for stop in range(1, len(tiers) + 1):
            if stop == len(tiers) or tiers[stop] != tiers[start]:
                if stop - start >= self.fanout:
                    runs.append(
                        CompactionTask(
                            start=start,
                            stop=stop,
                            tier=tiers[start],
                            input_bytes=sum(sizes[start:stop]),
                        )
                    )
                start = stop
        return runs

    def choose(self, sizes: list[int]) -> CompactionTask | None:
        """The next merge to run, or ``None`` when no tier is over
        fanout.  Smallest tier first (cheapest merge, and it is where
        fresh flushes pile up); oldest run breaks ties."""
        runs = self._runs(sizes)
        if not runs:
            return None
        return min(runs, key=lambda task: (task.tier, task.start))

    def debt_bytes(self, sizes: list[int]) -> int:
        """Bytes the policy currently wants rewritten — the sum over
        every eligible run.  This is the backpressure valve's second
        input: unbounded debt means compaction is losing the race."""
        return sum(task.input_bytes for task in self._runs(sizes))

    def tier_shape(self, sizes: list[int]) -> list[dict[str, Any]]:
        """Per-tier table counts and bytes for ``stats`` exposure."""
        shape: dict[int, list[int]] = {}
        for size in sizes:
            bucket = shape.setdefault(self.tier_of(size), [0, 0])
            bucket[0] += 1
            bucket[1] += size
        return [
            {"tier": tier, "tables": count, "bytes": total}
            for tier, (count, total) in sorted(shape.items())
        ]


def merge_tables(
    inputs: list[str | Path],
    output: str | Path,
    block_size: int = 16 * 1024,
) -> int:
    """Compact several inventory tables into one; returns the entry count.

    Keys appearing in several inputs have their summaries merged (the
    summary monoid); each input must itself be a valid table.  The output
    path must not name any input: the output file is opened for writing
    up front, so compacting a table onto itself would silently destroy it.
    """
    if not inputs:
        raise ValueError("need at least one input table")
    output_resolved = Path(output).resolve()
    for path in inputs:
        if Path(path).resolve() == output_resolved:
            raise ValueError(
                f"output table {output} is also an input; compaction would "
                "overwrite it mid-read"
            )
    readers: list[SSTableReader] = []
    try:
        for path in inputs:
            readers.append(SSTableReader(path))
        heap = []
        scans = [reader.scan() for reader in readers]
        for index, scan in enumerate(scans):
            entry = next(scan, None)
            if entry is not None:
                key, summary = entry
                heapq.heappush(heap, (_key_bytes(key), index, key, summary))
        entries = 0
        with SSTableWriter(output, block_size=block_size) as writer:
            current_raw: bytes | None = None
            current_key = None
            current_summary = None
            while heap:
                raw, index, key, summary = heapq.heappop(heap)
                if current_raw is None:
                    current_raw, current_key, current_summary = raw, key, summary
                elif raw == current_raw:
                    current_summary.merge(summary)
                else:
                    writer.add(current_key, current_summary)
                    entries += 1
                    current_raw, current_key, current_summary = raw, key, summary
                entry = next(scans[index], None)
                if entry is not None:
                    next_key, next_summary = entry
                    heapq.heappush(
                        heap, (_key_bytes(next_key), index, next_key, next_summary)
                    )
            if current_raw is not None:
                writer.add(current_key, current_summary)
                entries += 1
        return entries
    finally:
        for reader in readers:
            reader.close()
