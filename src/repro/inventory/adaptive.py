"""Adaptive multi-resolution inventories (the paper's §5 future work).

"We aim to further explore hierarchical capabilities of the selected
spatial index to provide non-uniform inventories … automatically adjusting
to the density of maritime traffic, i.e., using larger cells in open sea
areas … preserving at the same time high resolution in dense areas, such
as the ones near the ports."

:func:`build_adaptive` implements that idea on top of a uniform
fine-resolution inventory: fine cells whose pure-cell record count is
below ``min_records`` are *merged into their parents* (recursively, down
to ``coarse_resolution``), while dense cells keep their native
resolution.  Because every summary is a monoid, coarsening is exact: a
parent's summary equals the merge of its children's.

The result is an :class:`AdaptiveInventory`: a mixed-resolution cell map
with point queries that probe fine-to-coarse, typically shrinking the
group count severalfold at negligible cost to dense-area locality.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.hexgrid import cell_to_parent, get_resolution, latlng_to_cell
from repro.inventory.keys import GroupKey, GroupingSet
from repro.inventory.store import Inventory
from repro.inventory.summary import CellSummary


class AdaptiveInventory:
    """A non-uniform inventory: cell resolutions vary with traffic density."""

    def __init__(self, fine_resolution: int, coarse_resolution: int) -> None:
        if coarse_resolution > fine_resolution:
            raise ValueError(
                f"coarse resolution {coarse_resolution} must not exceed the "
                f"fine resolution {fine_resolution}"
            )
        self.fine_resolution = fine_resolution
        self.coarse_resolution = coarse_resolution
        self._groups: dict[GroupKey, CellSummary] = {}

    def __len__(self) -> int:
        return len(self._groups)

    def items(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """All (key, summary) pairs, unordered."""
        return iter(self._groups.items())

    def cells(self) -> set[int]:
        """Distinct cells (mixed resolutions)."""
        return {key.cell for key in self._groups}

    def resolution_histogram(self) -> dict[int, int]:
        """Cell count per resolution level — the 'shape' of adaptivity."""
        histogram: dict[int, int] = {}
        for cell in self.cells():
            resolution = get_resolution(cell)
            histogram[resolution] = histogram.get(resolution, 0) + 1
        return dict(sorted(histogram.items()))

    def summary_at(
        self,
        lat: float,
        lon: float,
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> CellSummary | None:
        """Point query: probe the fine cell first, then its ancestors."""
        for resolution in range(
            self.fine_resolution, self.coarse_resolution - 1, -1
        ):
            cell = latlng_to_cell(lat, lon, resolution)
            key = GroupKey(
                cell=cell,
                vessel_type=vessel_type,
                origin=origin,
                destination=destination,
            )
            summary = self._groups.get(key)
            if summary is not None:
                return summary
        return None

    def total_records(self) -> int:
        """Records in the pure-cell grouping set (each counted once)."""
        return sum(
            summary.records
            for key, summary in self._groups.items()
            if key.grouping_set is GroupingSet.CELL
        )

    def _put(self, key: GroupKey, summary: CellSummary) -> None:
        existing = self._groups.get(key)
        if existing is None:
            self._groups[key] = summary
        else:
            existing.merge(summary)


def build_adaptive(
    inventory: Inventory,
    min_records: int,
    coarse_resolution: int,
) -> AdaptiveInventory:
    """Coarsen a uniform inventory into an adaptive one.

    A fine cell stays at its native resolution when its *pure-cell* record
    count reaches ``min_records``; otherwise every grouping of that cell
    merges into the parent cell, repeatedly until either the merged parent
    is dense enough or ``coarse_resolution`` is reached.

    The source inventory is not modified.  Conservation law (tested):
    the adaptive inventory holds exactly the records of the original.
    """
    if min_records < 1:
        raise ValueError(f"min_records must be positive, got {min_records}")
    fine_resolution = inventory.resolution
    adaptive = AdaptiveInventory(fine_resolution, coarse_resolution)

    # Organise source groups by cell so a cell's groupings travel together.
    by_cell: dict[int, list[tuple[GroupKey, CellSummary]]] = {}
    cell_records: dict[int, int] = {}
    for key, summary in inventory.items():
        clone = CellSummary.from_dict(summary.to_dict())
        by_cell.setdefault(key.cell, []).append((key, clone))
        if key.grouping_set is GroupingSet.CELL:
            cell_records[key.cell] = summary.records

    for resolution in range(fine_resolution, coarse_resolution, -1):
        sparse = [
            cell
            for cell in by_cell
            if get_resolution(cell) == resolution
            and cell_records.get(cell, 0) < min_records
        ]
        for cell in sparse:
            parent = cell_to_parent(cell)
            parent_groups = by_cell.setdefault(parent, [])
            parent_index = {
                _dims(key): index for index, (key, _) in enumerate(parent_groups)
            }
            for key, summary in by_cell.pop(cell):
                dims = _dims(key)
                if dims in parent_index:
                    parent_groups[parent_index[dims]][1].merge(summary)
                else:
                    parent_index[dims] = len(parent_groups)
                    parent_groups.append((_rekey(key, parent), summary))
                if key.grouping_set is GroupingSet.CELL:
                    cell_records[parent] = (
                        cell_records.get(parent, 0) + summary.records
                    )
            cell_records.pop(cell, None)

    for groups in by_cell.values():
        for key, summary in groups:
            adaptive._put(key, summary)
    return adaptive


def _dims(key: GroupKey) -> tuple:
    return (key.vessel_type, key.origin, key.destination)


def _rekey(key: GroupKey, cell: int) -> GroupKey:
    return GroupKey(
        cell=cell,
        vessel_type=key.vessel_type,
        origin=key.origin,
        destination=key.destination,
    )
