"""The global inventory: the paper's primary artefact.

An inventory maps *group identifiers* (Table 2: cell / cell+type /
cell+origin+destination+type) to *cell summaries* (Table 3: the per-group
statistical sketches).  This package provides:

- :mod:`repro.inventory.keys` — grouping sets and group-identifier keys.
- :mod:`repro.inventory.summary` — :class:`CellSummary`, the mergeable
  product of sketches that a reduce builds per group.
- :mod:`repro.inventory.backend` — the :class:`QueryableInventory`
  protocol the apps consume, the LRU block cache, and the
  :class:`SSTableInventory` backend that serves queries straight from a
  persisted table.
- :mod:`repro.inventory.store` — the in-memory inventory with the query
  API the use cases consume (point lookups, top destinations, transition
  sets per route key).
- :mod:`repro.inventory.codec` — a compact self-describing binary codec
  for summary payloads.
- :mod:`repro.inventory.sstable` — the on-disk format: sorted key blocks
  with a sparse index, giving point lookups without scanning, which is
  what the paper's "99.7 % fewer hits" claim is about.
- :mod:`repro.inventory.wal`, :mod:`repro.inventory.memtable`,
  :mod:`repro.inventory.live` — the live write path: a checksummed
  write-ahead log, the in-memory memtable it protects, and the
  :class:`LiveInventory` LSM backend that serves snapshot-isolated
  queries while absorbing a feed.
"""

from repro.inventory.keys import GroupKey, GroupingSet, keys_for_record
from repro.inventory.summary import CellSummary, SummaryConfig
from repro.inventory.backend import (
    BlockCache,
    QueryableInventory,
    SSTableInventory,
    open_backend,
)
from repro.inventory.store import Inventory
from repro.inventory.sstable import (
    FORMAT_VERSION,
    CorruptionError,
    SSTableError,
    SSTableWriter,
    SSTableReader,
    write_inventory,
    open_inventory,
    verify_table,
    salvage_table,
)
from repro.inventory.adaptive import AdaptiveInventory, build_adaptive
from repro.inventory.compaction import CompactionPolicy, CompactionTask, merge_tables
from repro.inventory.export import inventory_to_geojson, write_geojson
from repro.inventory.maintenance import (
    IngestBackpressure,
    MaintenanceConfig,
    MaintenanceScheduler,
)
from repro.inventory.memtable import IngestRecord, Memtable
from repro.inventory.wal import ReplayResult, WalCheck, WalWriter, replay, verify_wal
from repro.inventory.live import IngestAck, LiveInventory

__all__ = [
    "GroupKey",
    "GroupingSet",
    "keys_for_record",
    "CellSummary",
    "SummaryConfig",
    "QueryableInventory",
    "BlockCache",
    "SSTableInventory",
    "open_backend",
    "Inventory",
    "FORMAT_VERSION",
    "CorruptionError",
    "SSTableError",
    "SSTableWriter",
    "SSTableReader",
    "write_inventory",
    "open_inventory",
    "verify_table",
    "salvage_table",
    "AdaptiveInventory",
    "build_adaptive",
    "merge_tables",
    "CompactionPolicy",
    "CompactionTask",
    "IngestBackpressure",
    "MaintenanceConfig",
    "MaintenanceScheduler",
    "inventory_to_geojson",
    "write_geojson",
    "IngestRecord",
    "Memtable",
    "ReplayResult",
    "WalCheck",
    "WalWriter",
    "replay",
    "verify_wal",
    "IngestAck",
    "LiveInventory",
]
