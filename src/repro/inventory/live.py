"""The live inventory: WAL + memtable LSM write path over SSTables.

This is the serve-while-ingesting backend the ROADMAP's north star
needs: a :class:`LiveInventory` absorbs a continuous AIS feed while
answering the same :class:`~repro.inventory.backend.QueryableInventory`
queries as the batch backends, with three contracts the test suite
enforces under deterministic fault injection:

**Durability.**  Every record is appended to the write-ahead log
(:mod:`repro.inventory.wal`) *before* it is applied to the memtable;
a record is acked only once its WAL entry is covered by an fsync.
Reopening after a crash replays the WAL into a fresh memtable — every
acked record is served again, and no record is ever *partially*
visible (a WAL entry is atomic by CRC; its fan-out to grouping sets
happens entirely at apply time).

**Atomic flush.**  Sealing rotates the WAL at a segment boundary and
freezes the active memtable into the read view; the *flush job* then
writes the frozen memtables to a new SSTable through the existing
atomic ``fsio`` publish and — the commit point — atomically rewrites
the ``MANIFEST.json`` that names the live table set and the WAL floor.
Only after the manifest lands are the sealed segments retired.  A crash
anywhere in that sequence (now usually on the maintenance thread)
recovers exactly: before the manifest, the orphan table is deleted on
open and the WAL replays everything; after the manifest, the flushed
segments are ignored (and deleted) on open.  Nothing is ever
double-counted and nothing is lost.

**Snapshot isolation.**  Readers resolve queries against an immutable
``(table set, frozen memtables)`` view plus the active memtable; the
view is swapped by a single reference assignment, so a query stream
running across a flush only ever sees *either* the frozen memtable
*or* the table that replaced it — and because flushing is a byte-exact
codec roundtrip and summaries merge by the sketch monoid laws, the
answers are byte-identical either way.

Flush and compaction run **off the ingest path** on the maintenance
scheduler (:mod:`repro.inventory.maintenance`): ``ingest()`` only
appends to the WAL, applies to the memtable, and — at the
``flush_records`` watermark — seals the active memtable and submits a
flush job.  Compaction is size-tiered
(:class:`~repro.inventory.compaction.CompactionPolicy`): one job merges
one contiguous same-tier run, never the whole table set.  When
maintenance falls behind (too many sealed memtables, or tier debt over
the limit) the backpressure valve blocks ingest for a bounded wait and
then fails typed with
:class:`~repro.inventory.maintenance.IngestBackpressure`.

Locking is three-tier with a fixed order ``_maint_lock`` →
``_write_lock`` → ``_mem_lock`` (each may be taken alone; never in the
reverse order):

- ``_maint_lock`` serialises the *mutator* state jobs own after
  construction (``_tables``, ``_next_table``, ``_wal_floor``) — jobs
  themselves are already serialised by the scheduler, so this lock
  mostly guards stats readers;
- ``_write_lock`` serialises the WAL (appends, fsyncs, rotate, retire)
  and the seal step;
- ``_mem_lock`` is the short mutex readers share with memtable
  application and view swaps, so reads never block on disk I/O.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import Any

from repro.engine.metrics import CounterSet
from repro.inventory import fsio, sstable, wal
from repro.inventory.backend import InventoryQueryMixin, SSTableInventory
from repro.inventory.codec import decode, encode
from repro.inventory.compaction import (
    DEFAULT_TIER_BASE_BYTES,
    DEFAULT_TIER_FANOUT,
    SPAN_TIER_COMPACT,
    CompactionPolicy,
    merge_tables,
)
from repro.inventory.keys import GroupKey
from repro.inventory.maintenance import (
    COUNTER_BACKPRESSURE_TIMEOUTS,
    COUNTER_BACKPRESSURE_WAITS,
    COUNTER_JOBS,
    JOB_FLUSH,
    JOB_MAJOR,
    JOB_TIER,
    IngestBackpressure,
    MaintenanceConfig,
    MaintenanceScheduler,
)
from repro.inventory.memtable import IngestRecord, Memtable
from repro.inventory.sstable import CorruptionError
from repro.inventory.summary import CellSummary, SummaryConfig
from repro.obs import registry
from repro.obs import trace as obs

SPAN_FLUSH = registry.register_span(
    "ingest.flush",
    "writing sealed memtables to an SSTable and publishing the manifest",
)
SPAN_COMPACT = registry.register_span(
    "ingest.compact",
    "major compaction: merging the whole live table set into one generation",
)

COUNTER_INGEST_RECORDS = registry.register_counter(
    "ingest.records",
    "records accepted by the live write path (WAL-appended and applied)",
)
COUNTER_FLUSHES = registry.register_counter(
    "ingest.flushes",
    "memtable flushes durably published to the live table set",
)
COUNTER_COMPACTIONS = registry.register_counter(
    "ingest.compactions",
    "compactions of the live table set (tier merges and major compactions)",
)

#: The manifest file naming the live table set and the WAL floor.  Its
#: atomic rewrite is the flush/compaction commit point.
MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_VERSION = 1
_TABLE_FMT = "tab-{n:08d}.sst"
_TABLE_GLOB = "tab-*.sst"

#: Default memtable size (records) that seals it and schedules a flush.
DEFAULT_FLUSH_RECORDS = 50_000


@dataclass(frozen=True)
class IngestAck:
    """What one :meth:`LiveInventory.ingest` call guarantees.

    ``durable`` is true when every accepted record's WAL entry was
    covered by an fsync before returning (always the case with
    ``sync_every=1``); with a batched fsync policy it reports whether
    this batch happened to end on a sync point.

    ``flushed`` is true when this call *sealed* the active memtable and
    scheduled its flush — the table write itself happens on the
    maintenance thread (or before ``submit`` returns in inline mode),
    so a true here no longer means the records are in an SSTable yet.
    Durability never depends on it: the WAL already holds everything.
    """

    accepted: int
    durable: bool
    flushed: bool

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form for the ``ingest`` response."""
        return {
            "accepted": self.accepted,
            "durable": self.durable,
            "flushed": self.flushed,
        }


@dataclass(frozen=True)
class _View:
    """The immutable read snapshot: swapped by one reference assignment."""

    tables: tuple[SSTableInventory, ...]
    frozen: tuple[Memtable, ...]


@dataclass(frozen=True)
class _Sealed:
    """A frozen memtable plus the WAL boundary that seals it: the flush
    job may raise the WAL floor to ``boundary`` once ``memtable`` is in
    a committed table."""

    memtable: Memtable
    boundary: int


def _copy_summary(summary: CellSummary) -> CellSummary:
    """A deep, byte-exact copy via the storage codec — the same roundtrip
    a flush performs, which is what makes pre- and post-flush answers
    byte-identical."""
    return CellSummary.from_dict(decode(encode(summary.to_dict())))  # type: ignore[arg-type]


class LiveInventory(InventoryQueryMixin):
    """A queryable inventory that accepts live records (see module doc).

    Open on a directory; recovery happens in the constructor (orphan
    cleanup, retired-segment cleanup, WAL replay under the
    ``wal.replay`` span).  ``resolution`` is required the first time a
    directory is opened and remembered in the manifest afterwards.

    ``background_maintenance=False`` runs every flush/compaction job
    synchronously inside the call that submits it — the deterministic
    mode the fault matrix sweeps; the default runs them on one daemon
    worker so ingest never writes tables.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        resolution: int | None = None,
        config: SummaryConfig | None = None,
        sync_every: int = 1,
        sync_interval_s: float | None = None,
        segment_bytes: int = wal.DEFAULT_SEGMENT_BYTES,
        flush_records: int = DEFAULT_FLUSH_RECORDS,
        tier_fanout: int = DEFAULT_TIER_FANOUT,
        tier_base_bytes: int = DEFAULT_TIER_BASE_BYTES,
        background_maintenance: bool = True,
        max_frozen_memtables: int | None = None,
        max_debt_bytes: int | None = None,
        backpressure_wait_s: float | None = None,
        cache_blocks: int = 64,
        counters: CounterSet | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.flush_records = flush_records
        self.cache_blocks = cache_blocks
        self.counters = counters if counters is not None else CounterSet()
        self.policy = CompactionPolicy(fanout=tier_fanout, base_bytes=tier_base_bytes)
        maint_kwargs: dict[str, Any] = {"background": background_maintenance}
        if max_frozen_memtables is not None:
            maint_kwargs["max_frozen_memtables"] = max_frozen_memtables
        if max_debt_bytes is not None:
            maint_kwargs["max_debt_bytes"] = max_debt_bytes
        if backpressure_wait_s is not None:
            maint_kwargs["backpressure_wait_s"] = backpressure_wait_s
        self.maintenance = MaintenanceConfig(**maint_kwargs)
        # The three-lock hierarchy (outermost first); REP007 checks every
        # acquisition — including through call chains — against it.
        # repro: lock-order _maint_lock -> _write_lock -> _mem_lock
        self._maint_lock = threading.RLock()
        self._write_lock = threading.RLock()
        self._mem_lock = threading.Lock()
        #: Ingest threads wait here when the valve is armed; every
        #: completed maintenance job notifies it.
        self._valve = threading.Condition()
        self._closing = False
        self._closed = False
        self._sealed: list[_Sealed] = []
        self._last_flush_path: Path | None = None
        self._last_compact_path: Path | None = None
        #: Backend → reference count: one ref for membership in the
        #: published view, one per in-flight pinned read.  A backend is
        #: closed only when its count drops to zero, so compaction can
        #: retire a generation without yanking it from under a reader
        #: that pinned the previous view (snapshot isolation covers the
        #: file handles, not just the object graph).
        self._refs: dict[SSTableInventory, int] = {}

        manifest = self._load_manifest()
        if manifest is None:
            if resolution is None:
                raise ValueError(
                    f"{self.directory}: no manifest — opening a new live "
                    "inventory requires an explicit resolution"
                )
            self.resolution = resolution
            self.config = config if config is not None else SummaryConfig()
            self._tables: list[str] = []
            self._wal_floor = 0
            self._next_table = 1
            self._write_manifest()
        else:
            self.resolution = int(manifest["resolution"])
            self.config = _config_from_manifest(manifest["summary"])
            self._tables = [str(name) for name in manifest["tables"]]
            self._wal_floor = int(manifest["wal_floor"])
            self._next_table = int(manifest["next_table"])
            if resolution is not None and resolution != self.resolution:
                raise ValueError(
                    f"{self.directory}: manifest resolution {self.resolution} "
                    f"!= requested {resolution}"
                )
        self._sweep_orphans()
        # Anything after the first table opens can still refuse the
        # directory (a corrupt later table, hard WAL damage during
        # replay): close what was opened before re-raising, or the
        # half-constructed instance leaks its file handles.
        backends: list[SSTableInventory] = []
        try:
            for name in self._tables:
                backends.append(
                    SSTableInventory(
                        self.directory / name,
                        resolution=self.resolution,
                        cache_blocks=self.cache_blocks,
                        counters=self.counters,
                    )
                )
            self._active = Memtable(self.resolution, self.config)
            self._view = _View(tables=tuple(backends), frozen=())
            for backend in backends:
                self._refs[backend] = 1
            with obs.span(wal.SPAN_REPLAY) as sp:
                recovery = wal.replay(
                    self.directory, min_seq=self._wal_floor, counters=self.counters
                )
                for payload in recovery.entries:
                    try:
                        record = IngestRecord.from_payload(payload)
                    except ValueError as exc:
                        raise CorruptionError(
                            f"WAL entry does not decode to an ingest record: {exc}",
                            path=self.directory,
                        ) from exc
                    self._active.apply(record)
                sp.set("entries", len(recovery.entries))
                sp.set("truncated_tails", recovery.truncated_tails)
            self._wal = wal.WalWriter(
                self.directory,
                start_seq=max(recovery.last_seq, self._wal_floor) + 1,
                sync_every=sync_every,
                sync_interval_s=sync_interval_s,
                segment_bytes=segment_bytes,
                counters=self.counters,
            )
        except BaseException:
            for backend in backends:
                backend.close()
            raise
        # Started last: nothing above submits, and a constructor that
        # raised must not leave a worker thread behind.
        self._scheduler = MaintenanceScheduler(
            {
                JOB_FLUSH: self._job_flush,
                JOB_TIER: self._job_tier,
                JOB_MAJOR: self._job_major,
            },
            background=background_maintenance,
            counters=self.counters,
        )

    # -- manifest ------------------------------------------------------------------

    def _load_manifest(self) -> dict[str, Any] | None:
        path = self.directory / MANIFEST_NAME
        if not path.exists():
            return None
        handle = fsio.open_file(path, "rb")
        try:
            raw = handle.read()
        finally:
            handle.close()
        try:
            manifest = json.loads(raw)
        except ValueError as exc:
            raise CorruptionError(f"unreadable manifest: {exc}", path=path) from exc
        if not isinstance(manifest, dict) or manifest.get("version") != _MANIFEST_VERSION:
            raise CorruptionError("unsupported manifest version", path=path)
        return manifest

    def _write_manifest(
        self,
        tables: list[str] | None = None,
        wal_floor: int | None = None,
        next_table: int | None = None,
    ) -> None:
        """Atomically rewrite the manifest with the given (or current)
        values.  Callers commit prospective values here *first* and only
        then update in-memory state, so a failed commit leaves both the
        disk and the object exactly as they were."""
        manifest = {
            "version": _MANIFEST_VERSION,
            "resolution": self.resolution,
            "summary": _config_to_manifest(self.config),
            "tables": list(self._tables if tables is None else tables),
            "wal_floor": self._wal_floor if wal_floor is None else wal_floor,
            "next_table": self._next_table if next_table is None else next_table,
        }
        fsio.atomic_write_bytes(
            self.directory / MANIFEST_NAME,
            json.dumps(manifest, sort_keys=True).encode("utf-8"),
        )

    def _sweep_orphans(self) -> None:
        """Delete tables a crashed flush staged or published without
        committing (their records are still in the WAL), stale staging
        files, and WAL segments at or below the manifest floor."""
        live = set(self._tables)
        for path in sorted(self.directory.glob(_TABLE_GLOB)):
            if path.name not in live:
                fsio.unlink(path)
                fsio.unlink(sstable.route_index_path(path))
        for path in sorted(self.directory.glob(f"*{fsio.TMP_SUFFIX}")):
            fsio.unlink(path)
        for seq, path in wal.list_segments(self.directory):
            if seq <= self._wal_floor:
                fsio.unlink(path)

    # -- ingestion -----------------------------------------------------------------

    def ingest(self, records: Iterable[IngestRecord]) -> IngestAck:
        """Append ``records`` to the WAL, apply them to the memtable
        and, at the ``flush_records`` watermark, seal the memtable and
        schedule its flush.  Returns the ack only after every record is
        applied; ``durable`` reports the fsync watermark.

        Never writes a table itself.  When maintenance is behind the
        hard limits, blocks for at most ``backpressure_wait_s`` and then
        raises :class:`~repro.inventory.maintenance.IngestBackpressure`
        (the batch is not accepted).  A maintenance job that crashed
        re-raises its error here — background failures are never silent.
        """
        batch = list(records)
        self._check_maintenance()
        self._wait_for_capacity()
        sealed = False
        with self._write_lock:
            self._check_open()
            for record in batch:
                self._wal.append(record.to_payload())
            durable = self._wal.durable_entries >= self._wal.appended_entries
            with self._mem_lock:
                for record in batch:
                    self._active.apply(record)
            if batch:
                self.counters.increment(COUNTER_INGEST_RECORDS, len(batch))
            if self.flush_records and self._active.records_applied >= self.flush_records:
                self._seal_active_locked()
                sealed = True
        if sealed:
            # Outside _write_lock: in inline mode the job runs here, and
            # jobs take _maint_lock before _write_lock (the fixed order).
            self._scheduler.submit(JOB_FLUSH)
        return IngestAck(accepted=len(batch), durable=durable, flushed=sealed)

    def ingest_records(self, records: list[object]) -> dict[str, Any]:
        """The server-facing hook: parse wire records, ingest, ack.

        ``ValueError`` (bad record shape) names the offending index so
        the service layer can surface a precise ``bad_request``.
        """
        parsed = []
        for index, raw in enumerate(records):
            try:
                parsed.append(IngestRecord.from_wire(raw))
            except ValueError as exc:
                raise ValueError(f"records[{index}]: {exc}") from exc
        return self.ingest(parsed).to_wire()

    def sync(self) -> None:
        """Force every accepted record durable (an explicit fsync)."""
        self._check_maintenance()
        with self._write_lock:
            self._check_open()
            self._wal.sync()

    def _seal_active_locked(self) -> None:
        """Rotate the WAL and freeze the active memtable into the read
        view (``_write_lock`` held by the caller).  The rotate boundary
        rides with the memtable so the flush job knows how far the WAL
        floor may rise once the table commits."""
        boundary = self._wal.rotate()
        with self._mem_lock:
            self._sealed.append(_Sealed(memtable=self._active, boundary=boundary))
            self._view = _View(
                tables=self._view.tables,
                frozen=self._view.frozen + (self._active,),
            )
            self._active = Memtable(self.resolution, self.config)

    # -- backpressure --------------------------------------------------------------

    def _over_capacity(self) -> tuple[bool, int, int]:
        """Whether the valve is armed, plus the inputs that armed it."""
        with self._mem_lock:
            frozen = len(self._sealed)
        debt = self.policy.debt_bytes(self._table_sizes()) if self.policy.fanout else 0
        over = (
            frozen >= self.maintenance.max_frozen_memtables
            or debt >= self.maintenance.max_debt_bytes
        )
        return over, frozen, debt

    def _wait_for_capacity(self) -> None:
        """Block (bounded) while maintenance is behind its hard limits.

        Inline mode never waits: jobs complete inside the call that
        submits them, so the limits cannot be exceeded between calls.
        """
        if not self.maintenance.background:
            return
        over, frozen, debt = self._over_capacity()
        if not over:
            return
        self.counters.increment(COUNTER_BACKPRESSURE_WAITS)
        deadline = time.monotonic() + self.maintenance.backpressure_wait_s
        with self._valve:
            while True:
                self._check_maintenance()
                over, frozen, debt = self._over_capacity()
                if not over:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._valve.wait(remaining)
        self.counters.increment(COUNTER_BACKPRESSURE_TIMEOUTS)
        raise IngestBackpressure(
            f"ingest stalled: {frozen} sealed memtables, {debt} compaction-debt "
            f"bytes after {self.maintenance.backpressure_wait_s}s — maintenance "
            "is not keeping up; back off and retry",
            frozen_memtables=frozen,
            debt_bytes=debt,
            waited_s=self.maintenance.backpressure_wait_s,
        )

    def _notify_valve(self) -> None:
        with self._valve:
            self._valve.notify_all()

    # -- flush / compaction (public, synchronous) ----------------------------------

    def flush(self) -> Path | None:
        """Seal the active memtable and flush everything sealed, waiting
        for the job to finish.  Returns the new table's path (``None``
        when there was nothing to flush)."""
        self._check_maintenance()
        with self._write_lock:
            self._check_open()
            if self._active.records_applied:
                self._seal_active_locked()
        with self._mem_lock:
            pending = bool(self._sealed)
        if not pending:
            return None
        with self._maint_lock:
            self._last_flush_path = None
        self._scheduler.submit(JOB_FLUSH)
        self._scheduler.wait_idle()
        with self._maint_lock:
            return self._last_flush_path

    def compact(self) -> Path | None:
        """Major compaction: merge the whole live table set into one
        generation, waiting for the job to finish.  Routine maintenance
        uses tier merges instead; this is the manual full merge."""
        self._check_maintenance()
        with self._write_lock:
            self._check_open()
        with self._maint_lock:
            self._last_compact_path = None
        self._scheduler.submit(JOB_MAJOR)
        self._scheduler.wait_idle()
        with self._maint_lock:
            return self._last_compact_path

    def wait_maintenance(self, timeout: float | None = None) -> None:
        """Block until every queued maintenance job has run; re-raise
        the error of a job that crashed.  The deterministic hook tests
        and the serve CLI's drain path use."""
        self._scheduler.wait_idle(timeout)

    def _check_maintenance(self) -> None:
        """Re-raise a background job's error (the original instance, so
        a typed corruption or injected crash stays typed)."""
        self._scheduler.check()

    # -- maintenance jobs (scheduler-serialised: the only table writers) -----------

    def _job_flush(self) -> None:
        progressed = self._flush_sealed()
        self._notify_valve()
        if progressed:
            self._maybe_submit_tier()

    def _job_tier(self) -> None:
        merged = self._compact_tier()
        self._notify_valve()
        if merged:
            # A tier merge can fill the next tier: cascade until the
            # policy is satisfied (each pass re-reads the live sizes).
            self._maybe_submit_tier()

    def _job_major(self) -> None:
        self._compact_major()
        self._notify_valve()

    def _maybe_submit_tier(self) -> None:
        if not self.policy.fanout:
            return
        if self.policy.choose(self._table_sizes()) is not None:
            self._scheduler.submit(JOB_TIER)

    def _table_sizes(self) -> list[int]:
        """On-disk sizes of the committed tables, oldest first.  A table
        unlinked by a racing compaction counts as zero — the next policy
        evaluation sees the post-merge list."""
        with self._maint_lock:
            names = list(self._tables)
        sizes: list[int] = []
        for name in names:
            try:
                sizes.append((self.directory / name).stat().st_size)
            except OSError:
                sizes.append(0)
        return sizes

    def _retire_wal(self, boundary: int) -> None:
        """Retire sealed WAL segments (brief ``_write_lock``: the writer
        object is otherwise owned by the ingest path)."""
        with self._write_lock:
            if not self._closed:
                self._wal.retire_through(boundary)

    def _flush_sealed(self) -> bool:
        """Write every currently-sealed memtable to one new table and
        commit it — the flush job body.  Returns whether a table was
        published."""
        with self._maint_lock:
            with self._mem_lock:
                batch = tuple(self._sealed)
            if not batch:
                return False
            with obs.span(SPAN_FLUSH) as sp:
                frozen = tuple(item.memtable for item in batch)
                boundary = batch[-1].boundary
                # 1. Write the sealed memtables to one new table
                #    (atomic: staged at .tmp, renamed on close).
                name = _TABLE_FMT.format(n=self._next_table)
                path = self.directory / name
                records = _write_frozen(path, frozen)
                # 2. The commit point: the manifest now names the table
                #    and raises the WAL floor past the sealed segments.
                #    In-memory state follows only once the commit landed,
                #    so a failed commit leaves disk and object untouched.
                tables = self._tables + [name]
                self._write_manifest(
                    tables=tables, wal_floor=boundary, next_table=self._next_table + 1
                )
                self._tables = tables
                self._next_table += 1
                self._wal_floor = boundary
                # 3. Only now is it safe to retire the sealed segments.
                self._retire_wal(boundary)
                # 4. Swap the read view: the flushed memtables leave in
                #    the same assignment their table arrives.  Memtables
                #    sealed *after* the batch snapshot stay frozen.
                backend = SSTableInventory(
                    path,
                    resolution=self.resolution,
                    cache_blocks=self.cache_blocks,
                    counters=self.counters,
                )
                with self._mem_lock:
                    old = self._view
                    del self._sealed[: len(batch)]
                    view = _View(
                        tables=old.tables + (backend,),
                        frozen=tuple(item.memtable for item in self._sealed),
                    )
                    self._retain_locked(view)
                    self._view = view
                self._release(old)
                self.counters.increment(COUNTER_FLUSHES)
                sp.set("records", records)
                sp.set("table", name)
                sp.set("memtables", len(batch))
            self._last_flush_path = path
        return True

    def _compact_tier(self) -> bool:
        """Merge one contiguous same-tier run chosen by the policy — the
        tier-compaction job body.  Returns whether a merge ran."""
        with self._maint_lock:
            names = list(self._tables)
            sizes = self._table_sizes()
            task = self.policy.choose(sizes)
            if task is None:
                return False
            with obs.span(SPAN_TIER_COMPACT) as sp:
                run = names[task.start : task.stop]
                inputs = [self.directory / name for name in run]
                out_name = _TABLE_FMT.format(n=self._next_table)
                output = self.directory / out_name
                merge_tables(inputs, output)
                # Splice the output into the run's position: reads fold
                # oldest-source-first, and collapsing *adjacent* sources
                # is the only reorder associativity licences.
                tables = names[: task.start] + [out_name] + names[task.stop :]
                self._write_manifest(tables=tables, next_table=self._next_table + 1)
                self._tables = tables
                self._next_table += 1
                backend = SSTableInventory(
                    output,
                    resolution=self.resolution,
                    cache_blocks=self.cache_blocks,
                    counters=self.counters,
                )
                with self._mem_lock:
                    old = self._view
                    view = _View(
                        tables=old.tables[: task.start]
                        + (backend,)
                        + old.tables[task.stop :],
                        frozen=old.frozen,
                    )
                    self._retain_locked(view)
                    self._view = view
                self._release(old)
                # Unlinking is safe even with readers pinned to the old
                # generation: their open handles keep the bytes alive
                # until the pin count drains and ``_release`` closes.
                for stale_name in run:
                    fsio.unlink(self.directory / stale_name)
                    fsio.unlink(sstable.route_index_path(self.directory / stale_name))
                self.counters.increment(COUNTER_COMPACTIONS)
                sp.set("tier", task.tier)
                sp.set("inputs", len(inputs))
                sp.set("bytes", task.input_bytes)
        return True

    def _compact_major(self) -> bool:
        """Merge the whole table set into one generation — the manual
        major-compaction job body."""
        with self._maint_lock:
            if len(self._tables) < 2:
                return False
            with obs.span(SPAN_COMPACT) as sp:
                inputs = [self.directory / name for name in self._tables]
                name = _TABLE_FMT.format(n=self._next_table)
                output = self.directory / name
                merge_tables(inputs, output)
                old_names = self._tables
                self._write_manifest(tables=[name], next_table=self._next_table + 1)
                self._tables = [name]
                self._next_table += 1
                backend = SSTableInventory(
                    output,
                    resolution=self.resolution,
                    cache_blocks=self.cache_blocks,
                    counters=self.counters,
                )
                with self._mem_lock:
                    old = self._view
                    view = _View(tables=(backend,), frozen=old.frozen)
                    self._retain_locked(view)
                    self._view = view
                self._release(old)
                for stale_name in old_names:
                    fsio.unlink(self.directory / stale_name)
                    fsio.unlink(sstable.route_index_path(self.directory / stale_name))
                self.counters.increment(COUNTER_COMPACTIONS)
                sp.set("inputs", len(inputs))
            self._last_compact_path = output
        return True

    # -- view lifecycle ------------------------------------------------------------

    def _retain_locked(self, view: _View) -> None:
        """Take one reference on each of ``view``'s backends
        (``_mem_lock`` held by the caller)."""
        for backend in view.tables:
            # repro: allow[REP002] every caller holds _mem_lock (the _locked suffix contract)
            self._refs[backend] = self._refs.get(backend, 0) + 1

    def _release(self, view: _View) -> None:
        """Drop one reference per backend; close those that hit zero.

        Closing happens outside the lock — it touches file handles, and
        no other thread can reach a zero-count backend anyway.
        """
        stale: list[SSTableInventory] = []
        with self._mem_lock:
            for backend in view.tables:
                count = self._refs[backend] - 1
                if count:
                    self._refs[backend] = count
                else:
                    del self._refs[backend]
                    stale.append(backend)
        for backend in stale:
            backend.close()

    # -- queries (snapshot-isolated) -----------------------------------------------
    #
    # Every reader captures, under ONE ``_mem_lock`` acquisition, the
    # published view *and* an encoded snapshot of what it needs from the
    # active memtable, pinning the view's backends.  A flush freezing the
    # memtable swaps both together under the same lock, so a reader can
    # never see a record twice or not at all mid-flush; the pin keeps a
    # compacted-away generation's file handles open until the read ends.

    def get(self, key: GroupKey) -> CellSummary | None:
        """Point lookup merged across tables, frozen memtables and the
        active memtable — oldest source first, matching compaction's
        merge order so answers never depend on flush timing."""
        with self._mem_lock:
            view = self._view
            self._retain_locked(view)
            summary = self._active.get(key)
            live_payload = None if summary is None else encode(summary.to_dict())
        try:
            acc: CellSummary | None = None
            for table in view.tables:
                summary = table.get(key)
                if summary is not None:
                    acc = summary if acc is None else acc.merge(summary)
            for memtable in view.frozen:
                summary = memtable.get(key)
                if summary is not None:
                    copy = _copy_summary(summary)
                    acc = copy if acc is None else acc.merge(copy)
            if live_payload is not None:
                live = CellSummary.from_dict(decode(live_payload))  # type: ignore[arg-type]
                acc = live if acc is None else acc.merge(live)
            return acc
        finally:
            self._release(view)

    def cells(self) -> set[int]:
        """Every cell with traffic in any source."""
        with self._mem_lock:
            view = self._view
            self._retain_locked(view)
            out = set(self._active.cells())
        try:
            for table in view.tables:
                out |= table.cells()
            for memtable in view.frozen:
                out |= memtable.cells()
            return out
        finally:
            self._release(view)

    def items(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """All groups merged across sources, in table key order.

        Materialises the merged map (live reads are point lookups; this
        exists for export and equivalence tests).
        """
        merged: dict[GroupKey, CellSummary] = {}

        def fold(key: GroupKey, summary: CellSummary) -> None:
            existing = merged.get(key)
            if existing is None:
                merged[key] = summary
            else:
                existing.merge(summary)

        with self._mem_lock:
            view = self._view
            self._retain_locked(view)
            active = [
                (key, encode(summary.to_dict()))
                for key, summary in self._active.items()
            ]
        try:
            for table in view.tables:
                for key, summary in table.items():
                    fold(key, summary)
            for memtable in view.frozen:
                for key, summary in memtable.items():
                    fold(key, _copy_summary(summary))
        finally:
            self._release(view)
        for key, payload in active:
            fold(key, CellSummary.from_dict(decode(payload)))  # type: ignore[arg-type]
        for key in sorted(merged, key=sstable._key_bytes):
            yield key, merged[key]

    def route_cells(
        self, origin: str, destination: str, vessel_type: str
    ) -> dict[int, CellSummary]:
        """Route lookup merged across sources (oldest first)."""
        merged: dict[int, CellSummary] = {}

        def fold(cell: int, summary: CellSummary) -> None:
            existing = merged.get(cell)
            if existing is None:
                merged[cell] = summary
            else:
                existing.merge(summary)

        with self._mem_lock:
            view = self._view
            self._retain_locked(view)
            active = [
                (cell, encode(summary.to_dict()))
                for cell, summary in self._active.route_groups(
                    origin, destination, vessel_type
                ).items()
            ]
        try:
            for table in view.tables:
                for cell, summary in table.route_cells(
                    origin, destination, vessel_type
                ).items():
                    fold(cell, summary)
            for memtable in view.frozen:
                for cell, summary in memtable.route_groups(
                    origin, destination, vessel_type
                ).items():
                    fold(cell, _copy_summary(summary))
        finally:
            self._release(view)
        for cell, payload in active:
            fold(cell, CellSummary.from_dict(decode(payload)))  # type: ignore[arg-type]
        return merged

    # -- introspection -------------------------------------------------------------

    def ingest_stats(self) -> dict[str, Any]:
        """Live write-path state for the server ``stats`` request.

        ``maintenance_queue`` (jobs waiting or running) and
        ``tier_shape`` / ``compaction_debt_bytes`` are the operator's
        compaction-backlog gauges — see docs/OPERATIONS.md.
        """
        view = self._view
        with self._mem_lock:
            memtable_records = self._active.records_applied
            memtable_groups = len(self._active)
        sizes = self._table_sizes()
        error = self._scheduler.error
        return {
            "tables": len(view.tables),
            "frozen_memtables": len(view.frozen),
            "memtable_records": memtable_records,
            "memtable_groups": memtable_groups,
            "wal_segment": self._wal.current_seq,
            "wal_floor": self._wal_floor,
            "records_ingested": self.counters.value(COUNTER_INGEST_RECORDS),
            "flushes": self.counters.value(COUNTER_FLUSHES),
            "compactions": self.counters.value(COUNTER_COMPACTIONS),
            "replayed": self.counters.value(wal.COUNTER_REPLAYED),
            "truncated_tails": self.counters.value(wal.COUNTER_TRUNCATED_TAIL),
            "maintenance": "background" if self.maintenance.background else "inline",
            "maintenance_queue": self._scheduler.queue_depth(),
            "maintenance_jobs": self.counters.value(COUNTER_JOBS),
            "maintenance_error": None if error is None else str(error),
            "tier_shape": self.policy.tier_shape(sizes),
            "compaction_debt_bytes": self.policy.debt_bytes(sizes),
            "backpressure_waits": self.counters.value(COUNTER_BACKPRESSURE_WAITS),
            "backpressure_timeouts": self.counters.value(
                COUNTER_BACKPRESSURE_TIMEOUTS
            ),
        }

    @property
    def table_paths(self) -> tuple[Path, ...]:
        """The committed table files, oldest first."""
        with self._maint_lock:
            return tuple(self.directory / name for name in self._tables)

    # -- lifecycle -----------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("live inventory is closed")

    def close(self) -> None:
        """Quiesce maintenance, fsync the WAL tail and release every
        handle.  Queued jobs are drained first (a job mid-flight owns
        table files and the manifest); a job error stays recorded but is
        not raised — the WAL already holds everything the memtables do,
        so close never loses data either way."""
        with self._write_lock:
            if self._closing:
                return
            self._closing = True
        # Outside _write_lock: a draining job takes _write_lock briefly
        # to retire WAL segments, and must not deadlock against us.
        self._scheduler.close(drain=True)
        with self._write_lock:
            self._closed = True
            self._wal.close()
            # Drop the published view's membership references; a reader
            # still pinned finishes cleanly and the last unpin closes.
            self._release(self._view)

    def __enter__(self) -> "LiveInventory":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def manifest_tables(directory: str | Path) -> list[Path]:
    """The table paths a live directory's manifest currently commits.

    Reads ``MANIFEST.json`` without opening the inventory (so no
    recovery side effects) — ``repro fsck --wal`` uses this to verify
    each committed table's checksums offline.  An absent manifest means
    an unstarted directory (no tables); an unreadable or wrong-version
    one raises :class:`~repro.inventory.sstable.CorruptionError`.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.exists():
        return []
    handle = fsio.open_file(path, "rb")
    try:
        raw = handle.read()
    finally:
        handle.close()
    try:
        manifest = json.loads(raw)
    except ValueError as exc:
        raise CorruptionError(f"unreadable manifest: {exc}", path=path) from exc
    if not isinstance(manifest, dict) or manifest.get("version") != _MANIFEST_VERSION:
        raise CorruptionError("unsupported manifest version", path=path)
    return [directory / str(name) for name in manifest.get("tables", [])]


def _config_to_manifest(config: SummaryConfig) -> dict[str, Any]:
    return {
        "hll": config.hll_precision,
        "td": config.tdigest_compression,
        "topn": config.topn_capacity,
        "bin": config.direction_bin_deg,
        "extra_names": list(config.extra_names),
    }


def _config_from_manifest(data: dict[str, Any]) -> SummaryConfig:
    return SummaryConfig(
        hll_precision=int(data["hll"]),
        tdigest_compression=float(data["td"]),
        topn_capacity=int(data["topn"]),
        direction_bin_deg=float(data["bin"]),
        extra_names=tuple(data.get("extra_names", ())),
    )


def _write_frozen(path: Path, frozen: tuple[Memtable, ...]) -> int:
    """Write frozen memtables (oldest first) to one table, atomically.

    Equal keys across memtables merge oldest-into-accumulator — the same
    order reads and :func:`merge_tables` use.  The memtables themselves
    are never mutated (readers still hold them until the view swap):
    merging goes through codec copies, the same byte-exact roundtrip the
    table write itself performs.
    """
    merged: dict[GroupKey, CellSummary] = {}
    records = 0
    for memtable in frozen:
        records += memtable.records_applied
        for key, summary in memtable.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = _copy_summary(summary)
            else:
                existing.merge(summary)
    with sstable.SSTableWriter(path) as writer:
        for key in sorted(merged, key=sstable._key_bytes):
            writer.add(key, merged[key])
    return records
