"""Grouping sets and group identifiers (the paper's Table 2).

A :class:`GroupKey` is the concatenation of grouping-set feature values
the paper calls the group identifier (GI).  Three grouping sets are
computed in one pass:

========================  =====================================================
``CELL``                  all traffic crossing each cell
``CELL_TYPE``             broken down per vessel type (market segment)
``CELL_OD_TYPE``          broken down per origin, destination and vessel type
========================  =====================================================

Keys are hashable, totally ordered (for the on-disk sorted format) and
pack to fixed-prefix bytes for the SSTable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class GroupingSet(Enum):
    """The three grouping sets of Table 2."""

    CELL = "cell"
    CELL_TYPE = "cell_type"
    CELL_OD_TYPE = "cell_od_type"


#: All grouping sets, in Table 2 order.
ALL_GROUPING_SETS: tuple[GroupingSet, ...] = (
    GroupingSet.CELL,
    GroupingSet.CELL_TYPE,
    GroupingSet.CELL_OD_TYPE,
)


@dataclass(frozen=True, slots=True)
class GroupKey:
    """One group identifier: a cell plus optional breakdown dimensions.

    ``None`` dimensions mean "aggregated over" — the pure-cell grouping
    set has every optional dimension ``None``.
    """

    cell: int
    vessel_type: str | None = None
    origin: str | None = None
    destination: str | None = None

    @property
    def grouping_set(self) -> GroupingSet:
        """Which grouping set this key belongs to."""
        if self.origin is not None or self.destination is not None:
            return GroupingSet.CELL_OD_TYPE
        if self.vessel_type is not None:
            return GroupingSet.CELL_TYPE
        return GroupingSet.CELL

    def sort_key(self) -> tuple:
        """Total order used by the on-disk format: cell first, then the
        breakdown dimensions with ``None`` sorting before any string."""
        return (
            self.cell,
            self.vessel_type or "",
            self.origin or "",
            self.destination or "",
        )

    def to_tuple(self) -> tuple:
        """Plain-tuple form (used by the engine's shuffles)."""
        return (self.cell, self.vessel_type, self.origin, self.destination)

    @classmethod
    def from_tuple(cls, data: tuple) -> "GroupKey":
        """Inverse of :meth:`to_tuple`."""
        cell, vessel_type, origin, destination = data
        return cls(
            cell=cell,
            vessel_type=vessel_type,
            origin=origin,
            destination=destination,
        )


def keys_for_record(
    cell: int,
    vessel_type: str,
    origin: str | None,
    destination: str | None,
    grouping_sets: tuple[GroupingSet, ...] = ALL_GROUPING_SETS,
) -> list[GroupKey]:
    """The group identifiers one record contributes to.

    A record with trip semantics contributes to all three sets; a record
    without (no origin/destination) contributes to the first two only —
    the paper excludes such records from trip-aware statistics but not
    from general traffic statistics.
    """
    keys = []
    for grouping_set in grouping_sets:
        if grouping_set is GroupingSet.CELL:
            keys.append(GroupKey(cell=cell))
        elif grouping_set is GroupingSet.CELL_TYPE:
            keys.append(GroupKey(cell=cell, vessel_type=vessel_type))
        elif origin is not None and destination is not None:
            keys.append(
                GroupKey(
                    cell=cell,
                    vessel_type=vessel_type,
                    origin=origin,
                    destination=destination,
                )
            )
    return keys
