"""The on-disk inventory: a sorted-key table with a sparse index.

The paper's headline operational claim is that the inventory answers a
location query with 99.7 % fewer "hits" than scanning the raw archive.
For that comparison to be honest, the inventory needs a real on-disk
format whose point lookups touch a bounded number of bytes.  This is a
classic SSTable layout:

::

    [header][data block 0][data block 1]…[index][footer]

- **data blocks** hold consecutive ``(key, value)`` entries in key order,
  each entry length-prefixed; blocks close at ~``block_size`` bytes;
- the **index** records each block's first key and file offset;
- the **footer** locates the index and carries entry/block counts.

A point lookup binary-searches the in-memory index (one entry per block),
reads one block, and scans at most one block's entries — ~10 entries
for the default 16 KiB blocks, versus millions of raw records.

Keys are :class:`~repro.inventory.keys.GroupKey`, serialised so that the
raw-byte order agrees exactly with ``GroupKey.sort_key`` (the property
test in ``tests/test_inventory_backend.py`` pins this; the sparse index's
binary search silently corrupts lookups if they ever diverge); values are
codec-encoded summary payloads.

Next to each table the writer persists a **route-index sidecar**
(``<table>.routes``): the (origin, destination, vessel type) → cells
mapping that lets a disk-backed inventory answer ``route_cells`` without
a full table scan.
"""

from __future__ import annotations

import struct
import threading
from bisect import bisect_right
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from repro.inventory.codec import CodecError, decode, encode
from repro.inventory.keys import GroupKey, GroupingSet
from repro.inventory.summary import CellSummary

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.inventory.store import Inventory

_MAGIC = b"POLINV2\n"
_FOOTER_FMT = ">QQQ8s"  # index offset, entry count, block count, magic
_FOOTER_SIZE = struct.calcsize(_FOOTER_FMT)

_ROUTES_MAGIC = b"POLRIX1\n"
_ROUTES_SUFFIX = ".routes"

# Order-preserving string framing: NUL terminator, embedded NULs escaped
# as 0x00 0xFF.  0xFF never occurs in valid UTF-8, so a terminator is
# never confused with an escape, and because the terminator is the
# smallest byte, prefixes sort first — exactly like Python strings.
_TERMINATOR = b"\x00"
_ESCAPED_NUL = b"\x00\xff"


def _key_bytes(key: GroupKey) -> bytes:
    """Order-preserving key encoding: fixed-width cell, then the optional
    dimensions as NUL-terminated strings (empty for None), so that raw
    ``bytes`` comparison matches ``GroupKey.sort_key`` exactly."""
    parts = [struct.pack(">Q", key.cell)]
    for dim in (key.vessel_type, key.origin, key.destination):
        raw = (dim or "").encode("utf-8")
        parts.append(raw.replace(_TERMINATOR, _ESCAPED_NUL))
        parts.append(_TERMINATOR)
    return b"".join(parts)


def _key_from_bytes(raw: bytes) -> GroupKey:
    (cell,) = struct.unpack_from(">Q", raw, 0)
    offset = 8
    dims: list[str | None] = []
    for _ in range(3):
        out = bytearray()
        while True:
            byte = raw[offset]
            if byte == 0:
                if offset + 1 < len(raw) and raw[offset + 1] == 0xFF:
                    out.append(0)
                    offset += 2
                    continue
                offset += 1
                break
            out.append(byte)
            offset += 1
        text = out.decode("utf-8")
        dims.append(text or None)
    return GroupKey(cell=cell, vessel_type=dims[0], origin=dims[1], destination=dims[2])


def route_index_path(path: str | Path) -> Path:
    """The sidecar path holding a table's persisted route index."""
    path = Path(path)
    return path.with_name(path.name + _ROUTES_SUFFIX)


def write_route_index(
    table_path: str | Path,
    index: dict[tuple[str, str, str], set[int]],
) -> Path:
    """Persist a (origin, destination, type) → cells mapping next to a
    table; returns the sidecar path."""
    payload = encode(
        [
            [origin, destination, vessel_type, sorted(cells)]
            for (origin, destination, vessel_type), cells in sorted(index.items())
        ]
    )
    sidecar = route_index_path(table_path)
    sidecar.write_bytes(_ROUTES_MAGIC + payload)
    return sidecar


def read_route_index(
    table_path: str | Path,
) -> dict[tuple[str, str, str], set[int]] | None:
    """Load a table's route-index sidecar; ``None`` when it is missing or
    unreadable (callers fall back to a scan)."""
    sidecar = route_index_path(table_path)
    try:
        raw = sidecar.read_bytes()
    except OSError:
        return None
    if not raw.startswith(_ROUTES_MAGIC):
        return None
    try:
        rows = decode(raw[len(_ROUTES_MAGIC) :])
    except CodecError:
        return None
    index: dict[tuple[str, str, str], set[int]] = {}
    for origin, destination, vessel_type, cells in rows:
        index[(origin, destination, vessel_type)] = set(cells)
    return index


class SSTableWriter:
    """Writes a sorted inventory table.  Entries must arrive in strictly
    increasing key order (the writer enforces it).

    Alongside the table the writer accumulates the route index (which
    cells each CELL_OD_TYPE key touches) and persists it as the
    ``.routes`` sidecar on close.
    """

    def __init__(self, path: str | Path, block_size: int = 16 * 1024) -> None:
        if block_size < 256:
            raise ValueError(f"block size too small: {block_size}")
        self._path = Path(path)
        self._handle = open(path, "wb")
        self._handle.write(_MAGIC)
        self._block_size = block_size
        self._block = bytearray()
        self._block_first_key: bytes | None = None
        self._index: list[tuple[bytes, int, int]] = []  # first key, offset, length
        self._route_index: dict[tuple[str, str, str], set[int]] = {}
        self._last_key: bytes | None = None
        self._entries = 0
        self._closed = False

    def add(self, key: GroupKey, summary: CellSummary) -> None:
        """Append one entry (keys must be strictly increasing)."""
        key_raw = _key_bytes(key)
        if self._last_key is not None and key_raw <= self._last_key:
            raise ValueError("SSTable entries must be added in increasing key order")
        self._last_key = key_raw
        if key.grouping_set is GroupingSet.CELL_OD_TYPE:
            route = (key.origin, key.destination, key.vessel_type)
            self._route_index.setdefault(route, set()).add(key.cell)
        value_raw = encode(summary.to_dict())
        entry = (
            struct.pack(">HI", len(key_raw), len(value_raw)) + key_raw + value_raw
        )
        if self._block_first_key is None:
            self._block_first_key = key_raw
        self._block.extend(entry)
        self._entries += 1
        if len(self._block) >= self._block_size:
            self._flush_block()

    def close(self) -> None:
        """Flush, write index, footer and the route-index sidecar."""
        if self._closed:
            return
        self._flush_block()
        index_offset = self._handle.tell()
        index_payload = encode(
            [
                [first_key, offset, length]
                for first_key, offset, length in self._index
            ]
        )
        self._handle.write(struct.pack(">I", len(index_payload)))
        self._handle.write(index_payload)
        self._handle.write(
            struct.pack(
                _FOOTER_FMT, index_offset, self._entries, len(self._index), _MAGIC
            )
        )
        self._handle.close()
        write_route_index(self._path, self._route_index)
        self._closed = True

    def __enter__(self) -> "SSTableWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._handle.close()

    def _flush_block(self) -> None:
        if not self._block:
            return
        offset = self._handle.tell()
        self._handle.write(self._block)
        self._index.append((bytes(self._block_first_key), offset, len(self._block)))
        self._block = bytearray()
        self._block_first_key = None


class SSTableReader:
    """Point lookups and ordered scans over a written table.

    Besides :meth:`get`/:meth:`scan`, the reader exposes the block layer
    (:meth:`find_block`, :meth:`read_block`, :meth:`parse_entries`) so a
    serving backend can interpose a block cache without re-implementing
    the file format.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = open(path, "rb")
        self._handle.seek(0, 2)
        size = self._handle.tell()
        if size < len(_MAGIC) + _FOOTER_SIZE:
            raise ValueError(f"not an inventory table: {path}")
        self._handle.seek(0)
        if self._handle.read(len(_MAGIC)) != _MAGIC:
            raise ValueError(f"bad magic in inventory table: {path}")
        self._handle.seek(size - _FOOTER_SIZE)
        index_offset, self.entry_count, self.block_count, magic = struct.unpack(
            _FOOTER_FMT, self._handle.read(_FOOTER_SIZE)
        )
        if magic != _MAGIC:
            raise ValueError(f"bad footer magic in inventory table: {path}")
        self._handle.seek(index_offset)
        (index_length,) = struct.unpack(">I", self._handle.read(4))
        raw_index = decode(self._handle.read(index_length))
        self._block_keys = [entry[0] for entry in raw_index]
        self._block_spans = [(entry[1], entry[2]) for entry in raw_index]
        # One reader may serve many threads (the query server's worker
        # pool): seek+read on the shared handle must be atomic.
        self._read_lock = threading.Lock()
        #: Bytes touched by the last get(), for the query-vs-scan benchmark.
        self.last_read_bytes = 0
        #: Bytes physically read from disk over the reader's lifetime.
        self.total_read_bytes = 0

    @property
    def path(self) -> Path:
        """The table file this reader serves from."""
        return self._path

    def find_block(self, key_raw: bytes) -> int | None:
        """Index of the single block that could hold a raw key, or
        ``None`` when the key precedes the first block."""
        block_index = bisect_right(self._block_keys, key_raw) - 1
        return None if block_index < 0 else block_index

    def read_block(self, block_index: int) -> bytes:
        """Read one data block from disk (no caching here — serving
        backends layer their cache on top)."""
        offset, length = self._block_spans[block_index]
        with self._read_lock:
            self._handle.seek(offset)
            block = self._handle.read(length)
            self.total_read_bytes += length
        return block

    @staticmethod
    def parse_entries(block: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield each (raw key, raw value) entry of one block."""
        position = 0
        while position < len(block):
            key_len, value_len = struct.unpack_from(">HI", block, position)
            position += 6
            key_raw = block[position : position + key_len]
            position += key_len
            value_raw = block[position : position + value_len]
            position += value_len
            yield key_raw, value_raw

    def get(self, key: GroupKey) -> CellSummary | None:
        """Point lookup: reads one block."""
        key_raw = _key_bytes(key)
        block_index = self.find_block(key_raw)
        if block_index is None:
            return None
        block = self.read_block(block_index)
        self.last_read_bytes = len(block)
        for entry_key, value_raw in self.parse_entries(block):
            if entry_key == key_raw:
                return CellSummary.from_dict(decode(value_raw))
            if entry_key > key_raw:
                return None
        return None

    def scan(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """Yield every (key, summary) in key order."""
        for block_index in range(len(self._block_spans)):
            block = self.read_block(block_index)
            for key_raw, value_raw in self.parse_entries(block):
                yield (
                    _key_from_bytes(key_raw),
                    CellSummary.from_dict(decode(value_raw)),
                )

    def close(self) -> None:
        """Close the underlying file."""
        self._handle.close()

    def __enter__(self) -> "SSTableReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_inventory(inventory: "Inventory", path: str | Path) -> int:
    """Persist a whole inventory; returns the number of entries written."""
    entries = sorted(inventory.items(), key=lambda kv: _key_bytes(kv[0]))
    with SSTableWriter(path) as writer:
        for key, summary in entries:
            writer.add(key, summary)
    return len(entries)


def open_inventory(path: str | Path) -> SSTableReader:
    """Open a persisted inventory for point lookups."""
    return SSTableReader(path)
