"""The on-disk inventory: a sorted-key table with a sparse index.

The paper's headline operational claim is that the inventory answers a
location query with 99.7 % fewer "hits" than scanning the raw archive.
For that comparison to be honest, the inventory needs a real on-disk
format whose point lookups touch a bounded number of bytes.  This is a
classic SSTable layout:

::

    [header][data block 0][data block 1]…[index][footer]

- **data blocks** hold consecutive ``(key, value)`` entries in key order,
  each entry length-prefixed; blocks close at ~``block_size`` bytes;
- the **index** records each block's first key and file offset;
- the **footer** locates the index and carries entry/block counts.

A point lookup binary-searches the in-memory index (one entry per block),
reads one block, and scans at most one block's entries — ~10 entries
for the default 16 KiB blocks, versus millions of raw records.

Keys are :class:`~repro.inventory.keys.GroupKey`, serialised to
length-prefixed tuples that sort identically to ``GroupKey.sort_key``;
values are codec-encoded summary payloads.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from pathlib import Path

from repro.inventory.codec import decode, encode
from repro.inventory.keys import GroupKey
from repro.inventory.store import Inventory
from repro.inventory.summary import CellSummary

_MAGIC = b"POLINV1\n"
_FOOTER_FMT = ">QQQ8s"  # index offset, entry count, block count, magic
_FOOTER_SIZE = struct.calcsize(_FOOTER_FMT)


def _key_bytes(key: GroupKey) -> bytes:
    """Order-preserving key encoding: fixed-width cell, then the optional
    dimensions as length-prefixed strings (empty for None)."""
    parts = [struct.pack(">Q", key.cell)]
    for dim in (key.vessel_type, key.origin, key.destination):
        raw = (dim or "").encode("utf-8")
        parts.append(struct.pack(">H", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _key_from_bytes(raw: bytes) -> GroupKey:
    (cell,) = struct.unpack_from(">Q", raw, 0)
    offset = 8
    dims: list[str | None] = []
    for _ in range(3):
        (length,) = struct.unpack_from(">H", raw, offset)
        offset += 2
        text = raw[offset : offset + length].decode("utf-8")
        offset += length
        dims.append(text or None)
    return GroupKey(cell=cell, vessel_type=dims[0], origin=dims[1], destination=dims[2])


class SSTableWriter:
    """Writes a sorted inventory table.  Entries must arrive in strictly
    increasing key order (the writer enforces it)."""

    def __init__(self, path: str | Path, block_size: int = 16 * 1024) -> None:
        if block_size < 256:
            raise ValueError(f"block size too small: {block_size}")
        self._handle = open(path, "wb")
        self._handle.write(_MAGIC)
        self._block_size = block_size
        self._block = bytearray()
        self._block_first_key: bytes | None = None
        self._index: list[tuple[bytes, int, int]] = []  # first key, offset, length
        self._last_key: bytes | None = None
        self._entries = 0
        self._closed = False

    def add(self, key: GroupKey, summary: CellSummary) -> None:
        """Append one entry (keys must be strictly increasing)."""
        key_raw = _key_bytes(key)
        if self._last_key is not None and key_raw <= self._last_key:
            raise ValueError("SSTable entries must be added in increasing key order")
        self._last_key = key_raw
        value_raw = encode(summary.to_dict())
        entry = (
            struct.pack(">HI", len(key_raw), len(value_raw)) + key_raw + value_raw
        )
        if self._block_first_key is None:
            self._block_first_key = key_raw
        self._block.extend(entry)
        self._entries += 1
        if len(self._block) >= self._block_size:
            self._flush_block()

    def close(self) -> None:
        """Flush, write index and footer."""
        if self._closed:
            return
        self._flush_block()
        index_offset = self._handle.tell()
        index_payload = encode(
            [
                [first_key, offset, length]
                for first_key, offset, length in self._index
            ]
        )
        self._handle.write(struct.pack(">I", len(index_payload)))
        self._handle.write(index_payload)
        self._handle.write(
            struct.pack(
                _FOOTER_FMT, index_offset, self._entries, len(self._index), _MAGIC
            )
        )
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "SSTableWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._handle.close()

    def _flush_block(self) -> None:
        if not self._block:
            return
        offset = self._handle.tell()
        self._handle.write(self._block)
        self._index.append((bytes(self._block_first_key), offset, len(self._block)))
        self._block = bytearray()
        self._block_first_key = None


class SSTableReader:
    """Point lookups and ordered scans over a written table."""

    def __init__(self, path: str | Path) -> None:
        self._handle = open(path, "rb")
        self._handle.seek(0, 2)
        size = self._handle.tell()
        if size < len(_MAGIC) + _FOOTER_SIZE:
            raise ValueError(f"not an inventory table: {path}")
        self._handle.seek(0)
        if self._handle.read(len(_MAGIC)) != _MAGIC:
            raise ValueError(f"bad magic in inventory table: {path}")
        self._handle.seek(size - _FOOTER_SIZE)
        index_offset, self.entry_count, self.block_count, magic = struct.unpack(
            _FOOTER_FMT, self._handle.read(_FOOTER_SIZE)
        )
        if magic != _MAGIC:
            raise ValueError(f"bad footer magic in inventory table: {path}")
        self._handle.seek(index_offset)
        (index_length,) = struct.unpack(">I", self._handle.read(4))
        raw_index = decode(self._handle.read(index_length))
        self._block_keys = [entry[0] for entry in raw_index]
        self._block_spans = [(entry[1], entry[2]) for entry in raw_index]
        #: Bytes touched by the last get(), for the query-vs-scan benchmark.
        self.last_read_bytes = 0

    def get(self, key: GroupKey) -> CellSummary | None:
        """Point lookup: reads one block."""
        key_raw = _key_bytes(key)
        block_index = bisect_right(self._block_keys, key_raw) - 1
        if block_index < 0:
            return None
        offset, length = self._block_spans[block_index]
        self._handle.seek(offset)
        block = self._handle.read(length)
        self.last_read_bytes = length
        position = 0
        while position < len(block):
            key_len, value_len = struct.unpack_from(">HI", block, position)
            position += 6
            entry_key = block[position : position + key_len]
            position += key_len
            if entry_key == key_raw:
                payload = block[position : position + value_len]
                return CellSummary.from_dict(decode(payload))
            if entry_key > key_raw:
                return None
            position += value_len
        return None

    def scan(self):
        """Yield every (key, summary) in key order."""
        for offset, length in self._block_spans:
            self._handle.seek(offset)
            block = self._handle.read(length)
            position = 0
            while position < len(block):
                key_len, value_len = struct.unpack_from(">HI", block, position)
                position += 6
                key = _key_from_bytes(block[position : position + key_len])
                position += key_len
                summary = CellSummary.from_dict(
                    decode(block[position : position + value_len])
                )
                position += value_len
                yield key, summary

    def close(self) -> None:
        """Close the underlying file."""
        self._handle.close()

    def __enter__(self) -> "SSTableReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_inventory(inventory: Inventory, path: str | Path) -> int:
    """Persist a whole inventory; returns the number of entries written."""
    entries = sorted(inventory.items(), key=lambda kv: _key_bytes(kv[0]))
    with SSTableWriter(path) as writer:
        for key, summary in entries:
            writer.add(key, summary)
    return len(entries)


def open_inventory(path: str | Path) -> SSTableReader:
    """Open a persisted inventory for point lookups."""
    return SSTableReader(path)
