"""The on-disk inventory: a sorted-key table with a sparse index.

The paper's headline operational claim is that the inventory answers a
location query with 99.7 % fewer "hits" than scanning the raw archive.
For that comparison to be honest, the inventory needs a real on-disk
format whose point lookups touch a bounded number of bytes.  This is a
classic SSTable layout:

::

    [header][data block 0][data block 1]…[index][footer]

- **data blocks** hold consecutive ``(key, value)`` entries in key order,
  each entry length-prefixed; blocks close at ~``block_size`` bytes;
- the **index** records each block's first key, file offset, length and
  (format v3) checksum;
- the **footer** locates the index and carries entry/block counts, the
  checksum algorithm id, the index checksum and its own checksum.

A point lookup binary-searches the in-memory index (one entry per block),
reads one block, and scans at most one block's entries — ~10 entries
for the default 16 KiB blocks, versus millions of raw records.

**Format v3 (``POLINV3``)** is self-verifying: every data block, the
index and the footer carry a CRC (see :mod:`repro.inventory.checksum`),
so damage anywhere in a table surfaces as a typed
:class:`CorruptionError` at block granularity — never a silently wrong
summary.  v2 tables (``POLINV2``, no checksums) remain readable.

**Writes are crash-safe**: the writer stages the table at
``<path>.tmp`` in the same directory, fsyncs, renames into place and
fsyncs the directory (see :mod:`repro.inventory.fsio`), so a crash at
any instant leaves either the previous table or the new one at the
final path — never a truncated hybrid.  Errors unlink the partials.

Keys are :class:`~repro.inventory.keys.GroupKey`, serialised so that the
raw-byte order agrees exactly with ``GroupKey.sort_key`` (the property
test in ``tests/test_inventory_backend.py`` pins this; the sparse index's
binary search silently corrupts lookups if they ever diverge); values are
codec-encoded summary payloads.

Next to each table the writer persists a **route-index sidecar**
(``<table>.routes``): the (origin, destination, vessel type) → cells
mapping that lets a disk-backed inventory answer ``route_cells`` without
a full table scan.  The sidecar is checksummed (``POLRIX2``) and written
with the same atomic protocol; a damaged sidecar degrades to a rebuild
scan, never a wrong route.
"""

from __future__ import annotations

import struct
import threading
from bisect import bisect_right
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import TYPE_CHECKING

from repro.inventory import checksum as _checksum
from repro.inventory import fsio
from repro.inventory.codec import CodecError, decode, encode
from repro.inventory.keys import GroupKey, GroupingSet
from repro.inventory.summary import CellSummary
from repro.obs import registry
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.inventory.store import Inventory

#: Every physical block read (cache misses land here; hits never do).
SPAN_READ_BLOCK = registry.register_span(
    "sstable.read_block",
    "one physical data-block read + checksum verify "
    "(attrs: block index, bytes; cache hits never reach this)",
)

#: The format revision new tables are written with.
FORMAT_VERSION = 3

_MAGIC_V2 = b"POLINV2\n"
_MAGIC_V3 = b"POLINV3\n"
_MAGIC = _MAGIC_V3  # what new tables carry
_MAGIC_LEN = 8

_FOOTER_V2_FMT = ">QQQ8s"  # index offset, entry count, block count, magic
_FOOTER_V2_SIZE = struct.calcsize(_FOOTER_V2_FMT)
# index offset, entry count, block count, checksum algo, index crc,
# footer crc, magic.  The footer crc covers every preceding field.
_FOOTER_V3_FMT = ">QQQBII8s"
_FOOTER_V3_SIZE = struct.calcsize(_FOOTER_V3_FMT)
_FOOTER_V3_CRC_SCOPE = struct.calcsize(">QQQBI")

_ROUTES_MAGIC_V1 = b"POLRIX1\n"
_ROUTES_MAGIC_V2 = b"POLRIX2\n"
_ROUTES_SUFFIX = ".routes"

# Order-preserving string framing: NUL terminator, embedded NULs escaped
# as 0x00 0xFF.  0xFF never occurs in valid UTF-8, so a terminator is
# never confused with an escape, and because the terminator is the
# smallest byte, prefixes sort first — exactly like Python strings.
_TERMINATOR = b"\x00"
_ESCAPED_NUL = b"\x00\xff"

#: Exceptions that mean "these bytes do not parse as what they claim to
#: be" — the raw material :class:`CorruptionError` wraps.
_PARSE_ERRORS = (
    CodecError,
    ValueError,
    KeyError,
    TypeError,
    IndexError,
    struct.error,
    UnicodeDecodeError,
)


class SSTableError(ValueError):
    """A structural problem with an inventory table: not a table at all,
    truncated past recognition, or an I/O failure while reading one.
    Subclasses :class:`ValueError` so pre-v3 callers keep working."""


class CorruptionError(SSTableError):
    """A table that *was* valid no longer decodes to what was written:
    a checksum mismatch or unparseable block/index/footer.  Carries the
    damaged path and, when the damage is block-granular, the block."""

    def __init__(
        self,
        message: str,
        path: str | Path | None = None,
        block_index: int | None = None,
    ) -> None:
        detail = message
        if block_index is not None:
            detail = f"block {block_index}: {detail}"
        if path is not None:
            detail = f"{path}: {detail}"
        super().__init__(detail)
        self.path = None if path is None else Path(path)
        self.block_index = block_index


def _key_bytes(key: GroupKey) -> bytes:
    """Order-preserving key encoding: fixed-width cell, then the optional
    dimensions as NUL-terminated strings (empty for None), so that raw
    ``bytes`` comparison matches ``GroupKey.sort_key`` exactly."""
    parts = [struct.pack(">Q", key.cell)]
    for dim in (key.vessel_type, key.origin, key.destination):
        raw = (dim or "").encode("utf-8")
        parts.append(raw.replace(_TERMINATOR, _ESCAPED_NUL))
        parts.append(_TERMINATOR)
    return b"".join(parts)


def _key_from_bytes(raw: bytes) -> GroupKey:
    (cell,) = struct.unpack_from(">Q", raw, 0)
    offset = 8
    dims: list[str | None] = []
    for _ in range(3):
        out = bytearray()
        while True:
            byte = raw[offset]
            if byte == 0:
                if offset + 1 < len(raw) and raw[offset + 1] == 0xFF:
                    out.append(0)
                    offset += 2
                    continue
                offset += 1
                break
            out.append(byte)
            offset += 1
        text = out.decode("utf-8")
        dims.append(text or None)
    return GroupKey(cell=cell, vessel_type=dims[0], origin=dims[1], destination=dims[2])


def route_index_path(path: str | Path) -> Path:
    """The sidecar path holding a table's persisted route index."""
    path = Path(path)
    return path.with_name(path.name + _ROUTES_SUFFIX)


def _table_tag(table_path: Path) -> bytes:
    """A 12-byte identity of the table file a sidecar belongs to: file
    size + (v3) footer checksum.  A sidecar whose tag does not match its
    table — e.g. the table rename was lost to a crash after the sidecar
    landed — is treated as missing and rebuilt, never trusted."""
    try:
        size = table_path.stat().st_size
        with open(table_path, "rb") as handle:
            magic = handle.read(_MAGIC_LEN)
            footer_crc = 0
            if magic == _MAGIC_V3 and size >= _FOOTER_V3_SIZE:
                handle.seek(size - _MAGIC_LEN - 4)
                (footer_crc,) = struct.unpack(">I", handle.read(4))
    except (OSError, struct.error):
        return b"\x00" * 12
    return struct.pack(">QI", size, footer_crc)


def write_route_index(
    table_path: str | Path,
    index: dict[tuple[str, str, str], set[int]],
    table_tag: bytes | None = None,
) -> Path:
    """Durably persist a (origin, destination, type) → cells mapping next
    to a table (checksummed, written atomically, tagged with the table's
    identity); returns the sidecar path."""
    table_path = Path(table_path)
    if table_tag is None:
        table_tag = _table_tag(table_path)
    payload = table_tag + encode(
        [
            [origin, destination, vessel_type, sorted(cells)]
            for (origin, destination, vessel_type), cells in sorted(index.items())
        ]
    )
    crc = _checksum.checksum_fn(_checksum.DEFAULT_ALGO)(payload)
    sidecar = route_index_path(table_path)
    fsio.atomic_write_bytes(
        sidecar,
        _ROUTES_MAGIC_V2
        + struct.pack(">BI", _checksum.DEFAULT_ALGO, crc)
        + payload,
    )
    return sidecar


def read_route_index(
    table_path: str | Path,
) -> dict[tuple[str, str, str], set[int]] | None:
    """Load a table's route-index sidecar; ``None`` when it is missing,
    unreadable, fails its checksum or was written for a different
    incarnation of the table (callers fall back to a scan — a damaged
    or stale sidecar can cost a rebuild, never a wrong answer)."""
    table_path = Path(table_path)
    sidecar = route_index_path(table_path)
    try:
        raw = sidecar.read_bytes()
    except OSError:
        return None
    if raw.startswith(_ROUTES_MAGIC_V2):
        header_len = len(_ROUTES_MAGIC_V2) + struct.calcsize(">BI")
        if len(raw) < header_len + 12:
            return None
        algo, crc = struct.unpack_from(">BI", raw, len(_ROUTES_MAGIC_V2))
        tagged = raw[header_len:]
        try:
            if _checksum.checksum_fn(algo)(tagged) != crc:
                return None
        except ValueError:
            return None
        if tagged[:12] != _table_tag(table_path):
            return None  # sidecar of a table that never (or no longer) exists
        payload = tagged[12:]
    elif raw.startswith(_ROUTES_MAGIC_V1):
        payload = raw[len(_ROUTES_MAGIC_V1) :]
    else:
        return None
    try:
        rows = decode(payload)
        index: dict[tuple[str, str, str], set[int]] = {}
        for origin, destination, vessel_type, cells in rows:
            index[(origin, destination, vessel_type)] = set(cells)
    except _PARSE_ERRORS:
        return None
    return index


class SSTableWriter:
    """Writes a sorted inventory table, durably and atomically.

    Entries must arrive in strictly increasing key order (the writer
    enforces it).  The table is staged at ``<path>.tmp``; :meth:`close`
    fsyncs it, publishes the route-index sidecar, then renames the
    table into place and fsyncs the directory — so the final path only
    ever holds a complete, verified table.  On error (including an
    exception inside a ``with`` body) the partial staging files are
    unlinked and the final path is untouched.

    Alongside the table the writer accumulates the route index (which
    cells each CELL_OD_TYPE key touches) and persists it as the
    ``.routes`` sidecar.
    """

    def __init__(
        self,
        path: str | Path,
        block_size: int = 16 * 1024,
        version: int = FORMAT_VERSION,
        checksum_algo: int | None = None,
    ) -> None:
        if block_size < 256:
            raise ValueError(f"block size too small: {block_size}")
        if version not in (2, 3):
            raise ValueError(f"unsupported table format version {version}")
        self._path = Path(path)
        self._temp = fsio.temp_path(self._path)
        self._version = version
        self._algo = (
            _checksum.DEFAULT_ALGO if checksum_algo is None else checksum_algo
        )
        self._crc = _checksum.checksum_fn(self._algo)  # validates the id
        self._handle = fsio.open_file(self._temp, "wb")
        try:
            self._handle.write(_MAGIC_V3 if version == 3 else _MAGIC_V2)
        except BaseException:
            # The constructor failed after staging was opened: clean up
            # here, because __exit__ will never run for this object.
            self._handle.close()
            fsio.unlink(self._temp)
            raise
        self._block_size = block_size
        self._block = bytearray()
        self._block_first_key: bytes | None = None
        # first key, offset, length, crc (crc unused for v2)
        self._index: list[tuple[bytes, int, int, int]] = []
        self._route_index: dict[tuple[str, str, str], set[int]] = {}
        self._last_key: bytes | None = None
        self._entries = 0
        self._closed = False

    @property
    def path(self) -> Path:
        """The final table path (only populated once :meth:`close` ran)."""
        return self._path

    def add(self, key: GroupKey, summary: CellSummary) -> None:
        """Append one entry (keys must be strictly increasing)."""
        key_raw = _key_bytes(key)
        if self._last_key is not None and key_raw <= self._last_key:
            raise ValueError("SSTable entries must be added in increasing key order")
        self._last_key = key_raw
        if key.grouping_set is GroupingSet.CELL_OD_TYPE:
            route = (key.origin, key.destination, key.vessel_type)
            self._route_index.setdefault(route, set()).add(key.cell)
        value_raw = encode(summary.to_dict())
        entry = (
            struct.pack(">HI", len(key_raw), len(value_raw)) + key_raw + value_raw
        )
        if self._block_first_key is None:
            self._block_first_key = key_raw
        self._block.extend(entry)
        self._entries += 1
        if len(self._block) >= self._block_size:
            self._flush_block()

    def close(self) -> None:
        """Flush, write index and footer, fsync, publish sidecar and
        table (in that order: the table rename is the commit point)."""
        if self._closed:
            return
        try:
            self._flush_block()
            index_offset = self._handle.tell()
            if self._version == 3:
                index_payload = encode(
                    [list(entry) for entry in self._index]
                )
            else:
                index_payload = encode(
                    [[first, offset, length] for first, offset, length, _ in self._index]
                )
            self._handle.write(struct.pack(">I", len(index_payload)))
            self._handle.write(index_payload)
            footer_crc = 0
            if self._version == 3:
                fields = struct.pack(
                    ">QQQBI",
                    index_offset,
                    self._entries,
                    len(self._index),
                    self._algo,
                    self._crc(index_payload),
                )
                footer_crc = self._crc(fields)
                self._handle.write(
                    fields + struct.pack(">I", footer_crc) + _MAGIC_V3
                )
            else:
                self._handle.write(
                    struct.pack(
                        _FOOTER_V2_FMT,
                        index_offset,
                        self._entries,
                        len(self._index),
                        _MAGIC_V2,
                    )
                )
            table_size = self._handle.tell()
            fsio.fsync_file(self._handle)
            self._handle.close()
            # Sidecar first (tagged with the not-yet-published table's
            # identity), then the table rename as the commit point: a
            # crash in between leaves a sidecar whose tag matches no
            # table, which readers treat as missing.
            write_route_index(
                self._path,
                self._route_index,
                table_tag=struct.pack(">QI", table_size, footer_crc),
            )
            fsio.rename(self._temp, self._path)
            fsio.fsync_dir(self._path.parent)
        except BaseException:
            self.abort()
            raise
        self._closed = True

    def abort(self) -> None:
        """Discard the in-flight table: close the handle and unlink the
        staging files, leaving the final path exactly as it was."""
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.close()
        except Exception:
            pass
        fsio.unlink(self._temp)
        fsio.unlink(fsio.temp_path(route_index_path(self._path)))

    def __enter__(self) -> "SSTableWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is None:
            self.close()
        else:
            # The body raised: leave no partial table or orphan sidecar.
            self.abort()

    def _flush_block(self) -> None:
        if not self._block:
            return
        offset = self._handle.tell()
        block = bytes(self._block)
        self._handle.write(block)
        self._index.append(
            (bytes(self._block_first_key), offset, len(block), self._crc(block))
        )
        self._block = bytearray()
        self._block_first_key = None


class SSTableReader:
    """Point lookups and ordered scans over a written table.

    Reads both format v3 (checksummed; every block read is verified and
    damage raises :class:`CorruptionError` naming the block) and legacy
    v2 tables (no checksums; parse failures still surface as
    :class:`CorruptionError`, but a bit flip that happens to decode can
    go undetected — rebuild v2 tables to v3 via ``repro compact``).

    Besides :meth:`get`/:meth:`scan`, the reader exposes the block layer
    (:meth:`find_block`, :meth:`read_block`, :meth:`parse_entries`) so a
    serving backend can interpose a block cache without re-implementing
    the file format.  Blocks returned by :meth:`read_block` are already
    verified, so cached blocks never need re-checking.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = fsio.open_file(path, "rb")
        try:
            self._open()
        except SSTableError:
            self._handle.close()
            raise
        except _PARSE_ERRORS as exc:
            self._handle.close()
            raise CorruptionError(
                f"unreadable table metadata: {exc}", path=self._path
            ) from exc
        except OSError as exc:
            self._handle.close()
            raise SSTableError(
                f"I/O error opening inventory table {self._path}: {exc}"
            ) from exc
        # One reader may serve many threads (the query server's worker
        # pool): seek+read on the shared handle must be atomic.
        self._read_lock = threading.Lock()
        #: Bytes touched by the last get(), for the query-vs-scan benchmark.
        self.last_read_bytes = 0
        #: Bytes physically read from disk over the reader's lifetime.
        self.total_read_bytes = 0

    def _open(self) -> None:
        self._handle.seek(0, 2)
        size = self._handle.tell()
        if size < _MAGIC_LEN + _FOOTER_V2_SIZE:
            raise SSTableError(f"not an inventory table: {self._path}")
        self._handle.seek(0)
        magic = self._handle.read(_MAGIC_LEN)
        if magic == _MAGIC_V3:
            self.version = 3
        elif magic == _MAGIC_V2:
            self.version = 2
        else:
            raise SSTableError(f"bad magic in inventory table: {self._path}")
        if self.version == 3:
            self._open_v3(size)
        else:
            self._open_v2(size)

    def _open_v3(self, size: int) -> None:
        if size < _MAGIC_LEN + _FOOTER_V3_SIZE:
            raise CorruptionError("truncated v3 footer", path=self._path)
        self._handle.seek(size - _FOOTER_V3_SIZE)
        footer = self._handle.read(_FOOTER_V3_SIZE)
        (
            index_offset,
            self.entry_count,
            self.block_count,
            self.checksum_algo,
            index_crc,
            footer_crc,
            magic,
        ) = struct.unpack(_FOOTER_V3_FMT, footer)
        if magic != _MAGIC_V3:
            raise SSTableError(
                f"bad footer magic in inventory table: {self._path}"
            )
        try:
            self._crc = _checksum.checksum_fn(self.checksum_algo)
        except ValueError as exc:
            raise CorruptionError(str(exc), path=self._path) from exc
        if self._crc(footer[:_FOOTER_V3_CRC_SCOPE]) != footer_crc:
            raise CorruptionError("footer checksum mismatch", path=self._path)
        self._handle.seek(index_offset)
        (index_length,) = struct.unpack(">I", self._handle.read(4))
        index_payload = self._handle.read(index_length)
        if (
            len(index_payload) != index_length
            or self._crc(index_payload) != index_crc
        ):
            raise CorruptionError("index checksum mismatch", path=self._path)
        raw_index = decode(index_payload)
        self._load_index(raw_index, with_crc=True)

    def _open_v2(self, size: int) -> None:
        self.checksum_algo = None
        self._crc = None
        self._handle.seek(size - _FOOTER_V2_SIZE)
        index_offset, self.entry_count, self.block_count, magic = struct.unpack(
            _FOOTER_V2_FMT, self._handle.read(_FOOTER_V2_SIZE)
        )
        if magic != _MAGIC_V2:
            raise SSTableError(
                f"bad footer magic in inventory table: {self._path}"
            )
        self._handle.seek(index_offset)
        (index_length,) = struct.unpack(">I", self._handle.read(4))
        raw_index = decode(self._handle.read(index_length))
        self._load_index(raw_index, with_crc=False)

    def _load_index(self, raw_index: object, with_crc: bool) -> None:
        width = 4 if with_crc else 3
        if not isinstance(raw_index, list) or any(
            not isinstance(entry, list)
            or len(entry) != width
            or not isinstance(entry[0], bytes)
            or not all(
                isinstance(value, int) and value >= 0 for value in entry[1:]
            )
            for entry in raw_index
        ):
            raise CorruptionError("malformed block index", path=self._path)
        self._block_keys = [entry[0] for entry in raw_index]
        self._block_spans = [(entry[1], entry[2]) for entry in raw_index]
        self._block_crcs = (
            [entry[3] for entry in raw_index]
            if with_crc
            else [None] * len(raw_index)
        )

    @property
    def path(self) -> Path:
        """The table file this reader serves from."""
        return self._path

    def find_block(self, key_raw: bytes) -> int | None:
        """Index of the single block that could hold a raw key, or
        ``None`` when the key precedes the first block."""
        block_index = bisect_right(self._block_keys, key_raw) - 1
        return None if block_index < 0 else block_index

    def read_block(self, block_index: int) -> bytes:
        """Read one data block from disk and verify its checksum (no
        caching here — serving backends layer their cache on top, and
        only ever cache verified blocks)."""
        offset, length = self._block_spans[block_index]
        with obs.span(SPAN_READ_BLOCK, block=block_index, bytes=length):
            try:
                with self._read_lock:
                    self._handle.seek(offset)
                    block = self._handle.read(length)
                    self.total_read_bytes += length
            except OSError as exc:
                raise SSTableError(
                    f"I/O error reading block {block_index} of "
                    f"{self._path}: {exc}"
                ) from exc
            if len(block) != length:
                raise CorruptionError(
                    f"short read ({len(block)} of {length} bytes)",
                    path=self._path,
                    block_index=block_index,
                )
            expected = self._block_crcs[block_index]
            if expected is not None and self._crc(block) != expected:
                raise CorruptionError(
                    "block checksum mismatch",
                    path=self._path,
                    block_index=block_index,
                )
            return block

    @staticmethod
    def parse_entries(block: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield each (raw key, raw value) entry of one block.

        Malformed framing raises :class:`CorruptionError` — for v3
        blocks the checksum makes that unreachable, for v2 blocks it is
        the only line of defence.
        """
        position = 0
        length = len(block)
        while position < length:
            try:
                key_len, value_len = struct.unpack_from(">HI", block, position)
            except struct.error as exc:
                raise CorruptionError(f"truncated entry header: {exc}") from exc
            position += 6
            if position + key_len + value_len > length:
                raise CorruptionError(
                    f"entry overruns its block by "
                    f"{position + key_len + value_len - length} bytes"
                )
            key_raw = block[position : position + key_len]
            position += key_len
            value_raw = block[position : position + value_len]
            position += value_len
            yield key_raw, value_raw

    def get(self, key: GroupKey) -> CellSummary | None:
        """Point lookup: reads (and verifies) one block."""
        key_raw = _key_bytes(key)
        block_index = self.find_block(key_raw)
        if block_index is None:
            return None
        block = self.read_block(block_index)
        self.last_read_bytes = len(block)
        for entry_key, value_raw in self.parse_entries(block):
            if entry_key == key_raw:
                return _decode_summary(value_raw, self._path, block_index)
            if entry_key > key_raw:
                return None
        return None

    def scan(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """Yield every (key, summary) in key order."""
        for block_index in range(len(self._block_spans)):
            block = self.read_block(block_index)
            for key_raw, value_raw in self.parse_entries(block):
                yield (
                    _decode_key(key_raw, self._path, block_index),
                    _decode_summary(value_raw, self._path, block_index),
                )

    def close(self) -> None:
        """Close the underlying file."""
        self._handle.close()

    def __enter__(self) -> "SSTableReader":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def _decode_key(key_raw: bytes, path: Path, block_index: int) -> GroupKey:
    try:
        return _key_from_bytes(key_raw)
    except _PARSE_ERRORS as exc:
        raise CorruptionError(
            f"undecodable key: {exc}", path=path, block_index=block_index
        ) from exc


def _decode_summary(value_raw: bytes, path: Path, block_index: int) -> CellSummary:
    try:
        return CellSummary.from_dict(decode(value_raw))
    except _PARSE_ERRORS as exc:
        raise CorruptionError(
            f"undecodable summary: {exc}", path=path, block_index=block_index
        ) from exc


# -- verification and salvage ----------------------------------------------------


@dataclass
class TableCheck:
    """The result of :func:`verify_table` (what ``repro fsck`` prints)."""

    path: Path
    ok: bool
    version: int | None = None
    checksum: str | None = None
    entry_count: int = 0
    entries_readable: int = 0
    block_count: int = 0
    bad_blocks: list[int] = field(default_factory=list)
    route_sidecar: str = "missing"  # "ok" | "missing" | "unreadable"
    errors: list[str] = field(default_factory=list)

    def lines(self) -> list[str]:
        """A human-readable report."""
        status = "ok" if self.ok else "CORRUPT"
        out = [f"{self.path}: {status}"]
        if self.version is not None:
            out.append(
                f"  format v{self.version}"
                + (f" ({self.checksum})" if self.checksum else " (no checksums)")
            )
            out.append(
                f"  entries {self.entries_readable:,}/{self.entry_count:,} "
                f"readable, blocks "
                f"{self.block_count - len(self.bad_blocks)}/{self.block_count} good"
            )
            out.append(f"  route sidecar: {self.route_sidecar}")
        for error in self.errors:
            out.append(f"  error: {error}")
        return out


def verify_table(path: str | Path) -> TableCheck:
    """Verify a table end to end: footer, index, every block checksum,
    every entry decode, global key order, entry-count agreement.  Never
    raises for damage — it is the thing that *reports* damage."""
    path = Path(path)
    check = TableCheck(path=path, ok=False)
    try:
        reader = SSTableReader(path)
    except (SSTableError, OSError) as exc:
        check.errors.append(str(exc))
        return check
    try:
        check.version = reader.version
        if reader.checksum_algo is not None:
            check.checksum = _checksum.algo_name(reader.checksum_algo)
        check.entry_count = reader.entry_count
        check.block_count = reader.block_count
        last_key: bytes | None = None
        for block_index in range(len(reader._block_spans)):
            try:
                block = reader.read_block(block_index)
                for key_raw, value_raw in reader.parse_entries(block):
                    _decode_key(key_raw, path, block_index)
                    _decode_summary(value_raw, path, block_index)
                    if last_key is not None and key_raw <= last_key:
                        raise CorruptionError(
                            "keys out of order", path=path, block_index=block_index
                        )
                    last_key = key_raw
                    check.entries_readable += 1
            except SSTableError as exc:
                check.bad_blocks.append(block_index)
                check.errors.append(str(exc))
        if check.entries_readable != check.entry_count and not check.bad_blocks:
            check.errors.append(
                f"footer claims {check.entry_count} entries, "
                f"found {check.entries_readable}"
            )
        check.route_sidecar = (
            "ok"
            if read_route_index(path) is not None
            else ("unreadable" if route_index_path(path).exists() else "missing")
        )
        check.ok = (
            not check.bad_blocks
            and not check.errors
            and check.entries_readable == check.entry_count
        )
    finally:
        reader.close()
    return check


@dataclass
class SalvageReport:
    """What :func:`salvage_table` recovered."""

    output: Path
    entries_recovered: int
    entries_lost: int
    blocks_skipped: list[int]


def salvage_table(path: str | Path, output: str | Path) -> SalvageReport:
    """Copy every readable entry of a damaged table into a fresh v3
    table at ``output``, skipping blocks that fail their checksum or do
    not parse.  Routes recorded in the damaged table's sidecar are
    merged into the salvaged sidecar (stale cells are harmless: route
    lookups drop cells whose summaries no longer exist).

    Requires the footer and index to be intact (they locate the blocks);
    raises :class:`SSTableError`/:class:`CorruptionError` otherwise.
    """
    path = Path(path)
    output = Path(output)
    if output.resolve() == path.resolve():
        raise ValueError("salvage output must not be the damaged table itself")
    recovered = 0
    skipped: list[int] = []
    with SSTableReader(path) as reader:
        lost_total = reader.entry_count
        with SSTableWriter(output) as writer:
            for block_index in range(len(reader._block_spans)):
                entries: list[tuple[GroupKey, CellSummary]] = []
                try:
                    block = reader.read_block(block_index)
                    for key_raw, value_raw in reader.parse_entries(block):
                        entries.append(
                            (
                                _decode_key(key_raw, path, block_index),
                                _decode_summary(value_raw, path, block_index),
                            )
                        )
                # repro: allow[REP005] salvage exists to skip unreadable blocks; each skip is recorded in the report
                except SSTableError:
                    skipped.append(block_index)
                    continue
                for key, summary in entries:
                    writer.add(key, summary)
                    recovered += 1
    old_routes = read_route_index(path)
    if old_routes:
        merged = read_route_index(output) or {}
        for route, cells in old_routes.items():
            merged.setdefault(route, set()).update(cells)
        write_route_index(output, merged)
    return SalvageReport(
        output=output,
        entries_recovered=recovered,
        entries_lost=max(0, lost_total - recovered),
        blocks_skipped=skipped,
    )


def file_checksum(path: str | Path, algo: int | None = None) -> int:
    """Whole-file checksum (streamed), used by the build manifest to
    verify a window table byte-for-byte before resuming past it."""
    crc_fn = _checksum.checksum_fn(
        _checksum.DEFAULT_ALGO if algo is None else algo
    )
    value = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return value
            value = crc_fn(chunk, value)


def write_inventory(
    inventory: "Inventory", path: str | Path, version: int = FORMAT_VERSION
) -> int:
    """Persist a whole inventory; returns the number of entries written."""
    entries = sorted(inventory.items(), key=lambda kv: _key_bytes(kv[0]))
    with SSTableWriter(path, version=version) as writer:
        for key, summary in entries:
            writer.add(key, summary)
    return len(entries)


def open_inventory(path: str | Path) -> SSTableReader:
    """Open a persisted inventory for point lookups."""
    return SSTableReader(path)
