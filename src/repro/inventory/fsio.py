"""The filesystem seam: every durable write goes through here.

Crash safety is a *protocol*, not a property of any one call: write to a
temporary file in the same directory, fsync the file, rename it into
place, fsync the directory.  This module centralises that protocol so

- the storage layer (:mod:`repro.inventory.sstable`, the pipeline's
  windowed builds) cannot accidentally write a table in place, and
- the deterministic fault harness (:mod:`repro.testing.faults`) has one
  narrow surface to interpose on: ``hooks`` is a mutable indirection
  table the harness patches to inject torn writes, ``ENOSPC``, read
  ``EIO``, bit flips and crash-before-rename at exact operation indices.

Production code calls the module-level functions; only the fault
harness touches ``hooks``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO

_real_open = open

#: Suffix for in-flight temporary files (same directory as the target,
#: so the final rename never crosses a filesystem boundary).
TMP_SUFFIX = ".tmp"


class _Hooks:
    """The patchable syscall table (see :mod:`repro.testing.faults`)."""

    __slots__ = ("open", "replace", "fsync", "unlink")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Restore the real filesystem operations."""
        self.open = _real_open
        self.replace = os.replace
        self.fsync = os.fsync
        self.unlink = os.unlink


hooks = _Hooks()


def temp_path(path: str | Path) -> Path:
    """The staging path a durable write of ``path`` goes through."""
    path = Path(path)
    return path.with_name(path.name + TMP_SUFFIX)


def open_file(path: str | Path, mode: str) -> IO[bytes]:
    """Open a file through the (patchable) seam."""
    return hooks.open(path, mode)


def rename(src: str | Path, dst: str | Path) -> None:
    """Atomically move ``src`` over ``dst`` (the commit point)."""
    hooks.replace(str(src), str(dst))


def fsync_file(handle: IO[bytes]) -> None:
    """Flush user-space buffers and force the file to stable storage."""
    handle.flush()
    hooks.fsync(handle.fileno())


def fsync_dir(path: str | Path) -> None:
    """Force a directory entry (a rename) to stable storage."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        hooks.fsync(fd)
    finally:
        os.close(fd)


def unlink(path: str | Path) -> None:
    """Remove a file, tolerating its absence."""
    try:
        hooks.unlink(str(path))
    except FileNotFoundError:
        pass


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Durably replace ``path`` with ``payload``: temp → fsync → rename
    → directory fsync.  On any error the temp file is removed and the
    previous contents of ``path`` (if any) are untouched."""
    path = Path(path)
    temp = temp_path(path)
    handle = open_file(temp, "wb")
    try:
        handle.write(payload)
        fsync_file(handle)
    except BaseException:
        handle.close()
        unlink(temp)
        raise
    handle.close()
    rename(temp, path)
    fsync_dir(path.parent)
