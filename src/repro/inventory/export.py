"""GeoJSON export: inventories as standard GIS features.

The paper's figures are maps; real consumers of a mobility inventory load
it into GIS tooling (QGIS, kepler.gl, deck.gl).  ``inventory_to_geojson``
emits one Polygon feature per cell with the headline statistics as
properties, so any GeoJSON viewer reproduces Figures 1/4/5/6 directly.

Cells crossing the antimeridian are split-safe: their vertex longitudes
are unwrapped to one side so the polygon never spans ±180°.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from pathlib import Path

from repro.hexgrid import cell_to_boundary
from repro.inventory import fsio
from repro.inventory.keys import GroupingSet
from repro.inventory.store import Inventory
from repro.inventory.summary import CellSummary


def cell_feature(
    cell: int,
    summary: CellSummary,
    extra_properties: dict | None = None,
) -> dict:
    """One GeoJSON Feature for a cell and its summary."""
    boundary = cell_to_boundary(cell)
    ring = [[lon, lat] for lat, lon in boundary]
    ring = _unwrap_antimeridian(ring)
    ring.append(ring[0])  # close the ring
    speed = summary.speed_percentiles()
    properties = {
        "cell": f"{cell:016x}",
        "records": summary.records,
        "ships": summary.ships.cardinality(),
        "trips": summary.trips.cardinality(),
        "mean_speed_kn": _round(summary.mean_speed_kn()),
        "speed_p50_kn": _round(speed[1]) if speed else None,
        "mean_course_deg": _round(summary.mean_course_deg()),
        "mean_ata_h": _round(
            summary.mean_ata_s() / 3600.0 if summary.mean_ata_s() else None
        ),
        "top_destination": summary.top_destination(),
    }
    if extra_properties:
        properties.update(extra_properties)
    return {
        "type": "Feature",
        "geometry": {"type": "Polygon", "coordinates": [ring]},
        "properties": properties,
    }


def inventory_to_geojson(
    inventory: Inventory,
    vessel_type: str | None = None,
    predicate: Callable[[CellSummary], bool] | None = None,
    max_features: int | None = None,
) -> dict:
    """A FeatureCollection of the inventory's cells.

    :param vessel_type: export the per-type breakdown instead of the
        pure-cell grouping.
    :param predicate: optional filter on summaries (e.g. only dense cells).
    :param max_features: cap the output (features are ordered by record
        count, densest first, so a cap keeps the most informative cells).
    """
    wanted = (
        GroupingSet.CELL if vessel_type is None else GroupingSet.CELL_TYPE
    )
    selected = [
        (key, summary)
        for key, summary in inventory.items()
        if key.grouping_set is wanted
        and (vessel_type is None or key.vessel_type == vessel_type)
        and (predicate is None or predicate(summary))
    ]
    selected.sort(key=lambda pair: -pair[1].records)
    if max_features is not None:
        selected = selected[:max_features]
    features = [cell_feature(key.cell, summary) for key, summary in selected]
    return {"type": "FeatureCollection", "features": features}


def write_geojson(
    inventory: Inventory,
    path: str | Path,
    vessel_type: str | None = None,
    predicate: Callable[[CellSummary], bool] | None = None,
    max_features: int | None = None,
) -> int:
    """Write a FeatureCollection to disk; returns the feature count."""
    collection = inventory_to_geojson(
        inventory,
        vessel_type=vessel_type,
        predicate=predicate,
        max_features=max_features,
    )
    # A GeoJSON export is a durable artifact like any table: publish it
    # atomically so a crash mid-export never leaves a half-written file
    # where a consumer (QGIS, a dashboard job) expects a previous one.
    payload = json.dumps(collection, separators=(",", ":")).encode("utf-8")
    fsio.atomic_write_bytes(path, payload)
    return len(collection["features"])


def _round(value: float | None) -> float | None:
    return None if value is None else round(value, 2)


def _unwrap_antimeridian(ring: list[list[float]]) -> list[list[float]]:
    lons = [lon for lon, _lat in ring]
    if max(lons) - min(lons) <= 180.0:
        return ring
    # The cell straddles ±180°: shift the negative side up by 360.
    return [
        [lon + 360.0 if lon < 0.0 else lon, lat] for lon, lat in ring
    ]
