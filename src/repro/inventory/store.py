"""The queryable global inventory (in-memory backend).

"Stakeholders can retrieve the historical statistical summary for each
cell area, as well as the most frequent direct cell transition per market
and port connections, by querying for a specific location" (§1).  The
:class:`Inventory` answers exactly those queries:

- :meth:`Inventory.summary_at` — point lookup by (lat, lon) with optional
  vessel-type and route breakdown;
- :meth:`Inventory.top_destinations_at` — the destination-prediction
  primitive;
- :meth:`Inventory.route_cells` — all cells known for an
  (origin, destination, type) key, the route-forecasting input;
- :meth:`Inventory.merge` — inventories from disjoint time windows or
  regions combine exactly (the summary monoid lifts to the whole store).

The position queries live in
:class:`~repro.inventory.backend.InventoryQueryMixin`, shared with the
disk-backed :class:`~repro.inventory.backend.SSTableInventory`; both
satisfy the :class:`~repro.inventory.backend.QueryableInventory`
protocol the apps consume.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.inventory.backend import InventoryQueryMixin
from repro.inventory.keys import GroupKey, GroupingSet
from repro.inventory.summary import CellSummary, SummaryConfig, DEFAULT_SUMMARY_CONFIG


class Inventory(InventoryQueryMixin):
    """A mapping of group identifiers to cell summaries, plus query sugar."""

    def __init__(
        self,
        resolution: int,
        config: SummaryConfig = DEFAULT_SUMMARY_CONFIG,
    ) -> None:
        self.resolution = resolution
        self.config = config
        self._groups: dict[GroupKey, CellSummary] = {}
        # Secondary index: (origin, destination, vessel_type) → cells.
        self._route_index: dict[tuple[str, str, str], set[int]] | None = None

    # -- building -----------------------------------------------------------------

    def put(self, key: GroupKey, summary: CellSummary) -> None:
        """Insert or merge one group's summary.

        An existing route index is maintained incrementally — a stream of
        puts (e.g. :meth:`merge`) must not force a full rebuild on the
        next :meth:`route_cells` call.
        """
        existing = self._groups.get(key)
        if existing is None:
            self._groups[key] = summary
            if (
                self._route_index is not None
                and key.grouping_set is GroupingSet.CELL_OD_TYPE
            ):
                route = (key.origin, key.destination, key.vessel_type)
                self._route_index.setdefault(route, set()).add(key.cell)
        else:
            existing.merge(summary)

    def merge(self, other: "Inventory") -> "Inventory":
        """Fold another inventory in (same resolution required)."""
        if other.resolution != self.resolution:
            raise ValueError(
                f"cannot merge inventories at resolutions {self.resolution} "
                f"and {other.resolution}"
            )
        for key, summary in other._groups.items():
            self.put(key, summary)
        return self

    # -- inspection ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, key: GroupKey) -> bool:
        return key in self._groups

    def items(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """All (key, summary) pairs, unordered."""
        return iter(self._groups.items())

    def get(self, key: GroupKey) -> CellSummary | None:
        """Exact-key lookup."""
        return self._groups.get(key)

    def cells(self) -> set[int]:
        """Distinct cells present (over all grouping sets)."""
        return {key.cell for key in self._groups}

    def group_count(self, grouping_set: GroupingSet) -> int:
        """Number of groups in one grouping set."""
        return sum(
            1 for key in self._groups if key.grouping_set is grouping_set
        )

    def total_records(self) -> int:
        """Records folded into the pure-cell grouping set (each input
        record counts once there)."""
        return sum(
            summary.records
            for key, summary in self._groups.items()
            if key.grouping_set is GroupingSet.CELL
        )

    # -- queries ---------------------------------------------------------------------
    # summary_at / top_destinations_at come from InventoryQueryMixin.

    def route_cells(
        self, origin: str, destination: str, vessel_type: str
    ) -> dict[int, CellSummary]:
        """All cells for which the (origin, destination, type) key exists —
        "the full set of possible transition locations for the selected
        key" (§4.1.3)."""
        if self._route_index is None:
            self._build_route_index()
        cells = self._route_index.get((origin, destination, vessel_type), set())
        result = {}
        for cell in cells:
            key = GroupKey(
                cell=cell,
                vessel_type=vessel_type,
                origin=origin,
                destination=destination,
            )
            result[cell] = self._groups[key]
        return result

    def _build_route_index(self) -> None:
        index: dict[tuple[str, str, str], set[int]] = {}
        for key in self._groups:
            if key.grouping_set is GroupingSet.CELL_OD_TYPE:
                route = (key.origin, key.destination, key.vessel_type)
                index.setdefault(route, set()).add(key.cell)
        self._route_index = index
