"""The queryable global inventory.

"Stakeholders can retrieve the historical statistical summary for each
cell area, as well as the most frequent direct cell transition per market
and port connections, by querying for a specific location" (§1).  The
:class:`Inventory` answers exactly those queries:

- :meth:`Inventory.summary_at` — point lookup by (lat, lon) with optional
  vessel-type and route breakdown;
- :meth:`Inventory.top_destinations_at` — the destination-prediction
  primitive;
- :meth:`Inventory.route_cells` — all cells known for an
  (origin, destination, type) key, the route-forecasting input;
- :meth:`Inventory.merge` — inventories from disjoint time windows or
  regions combine exactly (the summary monoid lifts to the whole store).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.hexgrid import latlng_to_cell
from repro.inventory.keys import GroupKey, GroupingSet
from repro.inventory.summary import CellSummary, SummaryConfig, DEFAULT_SUMMARY_CONFIG


class Inventory:
    """A mapping of group identifiers to cell summaries, plus query sugar."""

    def __init__(
        self,
        resolution: int,
        config: SummaryConfig = DEFAULT_SUMMARY_CONFIG,
    ) -> None:
        self.resolution = resolution
        self.config = config
        self._groups: dict[GroupKey, CellSummary] = {}
        # Secondary index: (origin, destination, vessel_type) → cells.
        self._route_index: dict[tuple[str, str, str], set[int]] | None = None

    # -- building -----------------------------------------------------------------

    def put(self, key: GroupKey, summary: CellSummary) -> None:
        """Insert or merge one group's summary."""
        existing = self._groups.get(key)
        if existing is None:
            self._groups[key] = summary
        else:
            existing.merge(summary)
        self._route_index = None

    def merge(self, other: "Inventory") -> "Inventory":
        """Fold another inventory in (same resolution required)."""
        if other.resolution != self.resolution:
            raise ValueError(
                f"cannot merge inventories at resolutions {self.resolution} "
                f"and {other.resolution}"
            )
        for key, summary in other._groups.items():
            self.put(key, summary)
        return self

    # -- inspection ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, key: GroupKey) -> bool:
        return key in self._groups

    def items(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """All (key, summary) pairs, unordered."""
        return iter(self._groups.items())

    def get(self, key: GroupKey) -> CellSummary | None:
        """Exact-key lookup."""
        return self._groups.get(key)

    def cells(self) -> set[int]:
        """Distinct cells present (over all grouping sets)."""
        return {key.cell for key in self._groups}

    def group_count(self, grouping_set: GroupingSet) -> int:
        """Number of groups in one grouping set."""
        return sum(
            1 for key in self._groups if key.grouping_set is grouping_set
        )

    def total_records(self) -> int:
        """Records folded into the pure-cell grouping set (each input
        record counts once there)."""
        return sum(
            summary.records
            for key, summary in self._groups.items()
            if key.grouping_set is GroupingSet.CELL
        )

    # -- queries ---------------------------------------------------------------------

    def summary_at(
        self,
        lat: float,
        lon: float,
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> CellSummary | None:
        """The summary for the cell containing a position.

        Provide ``vessel_type`` for the per-market breakdown and both
        ``origin`` and ``destination`` for the per-route breakdown.
        """
        if (origin is None) != (destination is None):
            raise ValueError(
                "origin and destination must be provided together"
            )
        if origin is not None and vessel_type is None:
            raise ValueError("route breakdowns require a vessel type")
        cell = latlng_to_cell(lat, lon, self.resolution)
        return self._groups.get(
            GroupKey(
                cell=cell,
                vessel_type=vessel_type,
                origin=origin,
                destination=destination,
            )
        )

    def top_destinations_at(
        self, lat: float, lon: float, vessel_type: str | None = None, n: int = 5
    ) -> list[tuple[str, int]]:
        """Most frequent historical destinations of vessels crossing the
        cell at a position: the destination-prediction primitive."""
        cell = latlng_to_cell(lat, lon, self.resolution)
        best: list[tuple[str, int]] = []
        if vessel_type is not None:
            summary = self._groups.get(GroupKey(cell=cell, vessel_type=vessel_type))
            if summary is not None:
                best = [
                    (item.value, item.count)
                    for item in summary.destinations.top(n)
                ]
        if not best:
            summary = self._groups.get(GroupKey(cell=cell))
            if summary is not None:
                best = [
                    (item.value, item.count)
                    for item in summary.destinations.top(n)
                ]
        return best

    def route_cells(
        self, origin: str, destination: str, vessel_type: str
    ) -> dict[int, CellSummary]:
        """All cells for which the (origin, destination, type) key exists —
        "the full set of possible transition locations for the selected
        key" (§4.1.3)."""
        if self._route_index is None:
            self._build_route_index()
        cells = self._route_index.get((origin, destination, vessel_type), set())
        result = {}
        for cell in cells:
            key = GroupKey(
                cell=cell,
                vessel_type=vessel_type,
                origin=origin,
                destination=destination,
            )
            result[cell] = self._groups[key]
        return result

    def _build_route_index(self) -> None:
        index: dict[tuple[str, str, str], set[int]] = {}
        for key in self._groups:
            if key.grouping_set is GroupingSet.CELL_OD_TYPE:
                route = (key.origin, key.destination, key.vessel_type)
                index.setdefault(route, set()).add(key.cell)
        self._route_index = index
