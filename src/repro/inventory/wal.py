"""Checksummed write-ahead log for live ingestion.

The WAL is the durability half of the live write path
(:mod:`repro.inventory.live`): every ingested record is appended here
*before* it touches the in-memory memtable, so a crash at any point
loses nothing that was acknowledged.  The format is deliberately dumb —
sequential segment files of length-prefixed, CRC-protected entries —
because dumb formats recover predictably:

- **Segments** are named ``wal-<seq>.log`` (zero-padded, so lexical
  order is replay order) and start with an 8-byte magic plus one
  checksum-algorithm byte (the same registry as the table format, so a
  segment written where native CRC32C exists replays anywhere).
- **Entries** are ``[u32 length][u32 crc][payload]``; the CRC covers
  the length prefix *and* the payload, so a corrupted length field
  cannot silently re-frame the stream.
- **Appends** go through :mod:`repro.inventory.fsio` — the single
  durable-write seam — via one ``write`` call per entry, so the
  deterministic fault harness (:mod:`repro.testing.faults`) can tear,
  short-write or crash any individual append, and the REP001 durability
  rule holds with no pragma: :func:`WalWriter.append` is the module's
  one append path and it never opens a file raw.
- **Fsync policy** is explicit: ``sync_every`` (fsync after every N-th
  append; 1 = group-commit-of-one, the durable default) and
  ``sync_interval_s`` (an upper bound on how stale the disk may be).
  Records are *acked* only once covered by an fsync.

Replay distinguishes the two failure classes the recovery contract
cares about:

- a **torn tail** — the final entry of the *last* segment is incomplete
  or fails its CRC with nothing after it — is what a crash mid-append
  legitimately leaves behind; replay recovers to the last good entry
  and (by default) truncates the garbage so the segment is clean for
  the next reader (``wal.truncated_tail`` counts these);
- anything else — a bad entry *inside* a segment, a bad entry in a
  non-final segment, a mangled header — cannot be produced by a crash
  of this writer and raises a typed
  :class:`~repro.inventory.sstable.CorruptionError`, never a silently
  short replay.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.engine.metrics import CounterSet
from repro.inventory import checksum as _checksum
from repro.inventory import fsio
from repro.inventory.sstable import CorruptionError
from repro.obs import registry

SPAN_REPLAY = registry.register_span(
    "wal.replay",
    "replaying WAL segments into a fresh memtable on live-inventory open",
)

COUNTER_REPLAYED = registry.register_counter(
    "wal.replayed",
    "WAL entries successfully replayed on recovery",
)
COUNTER_TRUNCATED_TAIL = registry.register_counter(
    "wal.truncated_tail",
    "torn WAL segment tails recovered-to-last-good on replay",
)
COUNTER_APPENDS = registry.register_counter(
    "wal.appends",
    "entries appended to the write-ahead log",
)
COUNTER_FSYNCS = registry.register_counter(
    "wal.fsyncs",
    "fsync calls issued by the WAL writer (policy-driven and explicit)",
)
COUNTER_SEGMENTS_RETIRED = registry.register_counter(
    "wal.segments_retired",
    "WAL segments deleted after their contents were durably flushed",
)

#: Segment header: magic then one checksum-algorithm byte.
_MAGIC = b"POLWAL1\n"
_HEADER_LEN = len(_MAGIC) + 1
#: Per-entry frame header: big-endian u32 payload length, u32 CRC.
_ENTRY_HEADER = struct.Struct(">II")
#: Segment files: ``wal-<seq>.log``, zero-padded so lexical == numeric order.
_SEGMENT_GLOB = "wal-*.log"
_SEGMENT_FMT = "wal-{seq:010d}.log"
#: Rotation threshold for new segments (appends never split an entry).
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024


def segment_path(directory: str | Path, seq: int) -> Path:
    """The path of segment ``seq`` under ``directory``."""
    return Path(directory) / _SEGMENT_FMT.format(seq=seq)


def list_segments(directory: str | Path) -> list[tuple[int, Path]]:
    """All WAL segments under ``directory`` as (seq, path), replay order.

    A segment whose name does not parse back to its sequence number is
    reported as hard corruption — segment names are part of the format.
    """
    out: list[tuple[int, Path]] = []
    for path in sorted(Path(directory).glob(_SEGMENT_GLOB)):
        stem = path.name[len("wal-") : -len(".log")]
        if not stem.isdigit():
            raise CorruptionError("unparseable WAL segment name", path=path)
        out.append((int(stem), path))
    return out


@dataclass(frozen=True)
class SegmentReport:
    """One segment's verification outcome (``repro fsck --wal``).

    ``status`` is ``ok``, ``torn-tail`` (recoverable: replay truncates
    to the last good entry) or ``corrupt`` (hard: replay raises).
    """

    seq: int
    path: Path
    status: str
    entries: int
    detail: str = ""


@dataclass(frozen=True)
class WalCheck:
    """Aggregate WAL verification result (``verify_wal``)."""

    directory: Path
    segments: tuple[SegmentReport, ...]

    @property
    def entries(self) -> int:
        """Total replayable entries across all segments."""
        return sum(report.entries for report in self.segments)

    @property
    def hard_corruption(self) -> bool:
        """True when replay would raise instead of recovering."""
        return any(report.status == "corrupt" for report in self.segments)

    @property
    def torn_tail(self) -> bool:
        """True when the final segment ends in a recoverable torn entry."""
        return any(report.status == "torn-tail" for report in self.segments)

    @property
    def ok(self) -> bool:
        """True when every segment verified clean end to end."""
        return not self.hard_corruption and not self.torn_tail

    def lines(self) -> list[str]:
        """Human-readable report lines (the fsck output)."""
        out = [f"wal: {self.directory} ({len(self.segments)} segment(s))"]
        for report in self.segments:
            line = f"  {report.path.name}: {report.status}, {report.entries} entr(ies)"
            if report.detail:
                line += f" — {report.detail}"
            out.append(line)
        if self.hard_corruption:
            out.append("  verdict: HARD CORRUPTION — replay will raise; restore from backup")
        elif self.torn_tail:
            out.append("  verdict: torn tail — recoverable, replay truncates to last good entry")
        else:
            out.append("  verdict: clean")
        return out


@dataclass(frozen=True)
class ReplayResult:
    """What :func:`replay` recovered.

    ``last_seq`` is the highest segment sequence seen (0 when the log is
    empty) — the writer continues at ``last_seq + 1``.
    """

    entries: tuple[bytes, ...]
    last_seq: int
    truncated_tails: int


class _SegmentScan:
    """Parse one segment's raw bytes into entries.

    ``good_offset`` tracks the end of the last fully-verified entry so a
    torn tail can be truncated back to it.
    """

    def __init__(self, path: Path, data: bytes) -> None:
        self.path = path
        self.data = data
        self.entries: list[bytes] = []
        self.good_offset = 0
        self.torn_detail = ""

    def scan(self) -> str:
        """Parse; returns ``ok``, ``torn-tail`` or raises nothing.

        Hard corruption is returned as ``corrupt`` with the detail in
        ``torn_detail`` — the caller decides whether to raise (replay)
        or report (verify).
        """
        data = self.data
        size = len(data)
        if size == 0:
            return "ok"  # freshly-truncated or never-written segment
        if size < _HEADER_LEN:
            self.torn_detail = "truncated segment header"
            return "torn-tail" if data == _MAGIC[:size] else "corrupt"
        if data[: len(_MAGIC)] != _MAGIC:
            self.torn_detail = "bad segment magic"
            return "corrupt"
        try:
            crc = _checksum.checksum_fn(data[len(_MAGIC)])
        except ValueError:
            self.torn_detail = f"unknown checksum algorithm id {data[len(_MAGIC)]}"
            return "corrupt"
        offset = _HEADER_LEN
        self.good_offset = offset
        while offset < size:
            remaining = size - offset
            if remaining < _ENTRY_HEADER.size:
                self.torn_detail = f"torn entry header at offset {offset}"
                return "torn-tail"
            length, expected = _ENTRY_HEADER.unpack_from(data, offset)
            end = offset + _ENTRY_HEADER.size + length
            if end > size:
                self.torn_detail = (
                    f"entry at offset {offset} declares {length} bytes, "
                    f"{remaining - _ENTRY_HEADER.size} remain"
                )
                return "torn-tail"
            payload = data[offset + _ENTRY_HEADER.size : end]
            if crc(data[offset : offset + 4] + payload) != expected:
                self.torn_detail = f"CRC mismatch at offset {offset}"
                # A crash can only tear the *final* bytes of the file: a
                # bad CRC with more entries behind it is bit rot.
                return "torn-tail" if end == size else "corrupt"
            self.entries.append(payload)
            offset = end
            self.good_offset = offset
        return "ok"


def _scan_segment(path: Path) -> _SegmentScan:
    handle = fsio.open_file(path, "rb")
    try:
        data = handle.read()
    finally:
        handle.close()
    return _SegmentScan(path, data)


def _truncate_segment(scan: _SegmentScan) -> None:
    """Cut a torn tail back to the last verified entry, durably."""
    handle = fsio.open_file(scan.path, "r+b")
    try:
        handle.truncate(scan.good_offset)
        fsio.fsync_file(handle)
    finally:
        handle.close()


def replay(
    directory: str | Path,
    *,
    min_seq: int = 0,
    repair: bool = True,
    counters: CounterSet | None = None,
) -> ReplayResult:
    """Recover every durable entry from segments with seq > ``min_seq``.

    A torn tail on the *last* segment is recovered-to-last-good (and
    truncated when ``repair`` is true, so the segment stays appendable
    and later replays do not mistake the old tear for interior rot).
    Any other damage raises :class:`CorruptionError` — recovery is never
    silently short.
    """
    segments = [(seq, path) for seq, path in list_segments(directory) if seq > min_seq]
    entries: list[bytes] = []
    truncated = 0
    last_seq = max((seq for seq, _ in segments), default=0)
    for seq, path in segments:
        scan = _scan_segment(path)
        status = scan.scan()
        if status == "corrupt" or (status == "torn-tail" and seq != last_seq):
            raise CorruptionError(
                scan.torn_detail or "unreadable WAL segment", path=path
            )
        if status == "torn-tail":
            truncated += 1
            if counters is not None:
                counters.increment(COUNTER_TRUNCATED_TAIL)
            if repair:
                _truncate_segment(scan)
        entries.extend(scan.entries)
    if counters is not None and entries:
        counters.increment(COUNTER_REPLAYED, len(entries))
    return ReplayResult(
        entries=tuple(entries), last_seq=last_seq, truncated_tails=truncated
    )


def verify_wal(directory: str | Path) -> WalCheck:
    """Check every segment without modifying anything (``fsck --wal``).

    Unlike :func:`replay` this never raises on damage: each segment gets
    a :class:`SegmentReport` and the caller triages.  A torn tail on a
    non-final segment is reported as ``corrupt`` (replay would refuse
    it), matching the recovery semantics exactly.
    """
    directory = Path(directory)
    segments = list_segments(directory)
    last_seq = max((seq for seq, _ in segments), default=0)
    reports = []
    for seq, path in segments:
        try:
            scan = _scan_segment(path)
            status = scan.scan()
        except OSError as exc:
            reports.append(
                SegmentReport(seq, path, "corrupt", 0, f"unreadable: {exc}")
            )
            continue
        if status == "torn-tail" and seq != last_seq:
            status = "corrupt"
            scan.torn_detail += " (non-final segment: not a crash artifact)"
        reports.append(
            SegmentReport(seq, path, status, len(scan.entries), scan.torn_detail)
        )
    return WalCheck(directory=directory, segments=tuple(reports))


class WalWriter:
    """Appends entries to segment files under an explicit fsync policy.

    One instance owns the log's tail: ``append`` frames and writes the
    entry (a single seam ``write``), then applies the fsync policy.
    ``durable_entries`` tells the caller how many appended entries are
    covered by an fsync — the ack watermark.  Not thread-safe; the
    owning :class:`~repro.inventory.live.LiveInventory` serialises
    writers under its own lock.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        start_seq: int = 1,
        sync_every: int = 1,
        sync_interval_s: float | None = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        counters: CounterSet | None = None,
    ) -> None:
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        if sync_interval_s is not None and sync_interval_s <= 0:
            raise ValueError("sync_interval_s must be positive")
        if segment_bytes < _HEADER_LEN + _ENTRY_HEADER.size:
            raise ValueError(f"segment_bytes too small: {segment_bytes}")
        self._directory = Path(directory)
        self.sync_every = sync_every
        self.sync_interval_s = sync_interval_s
        self.segment_bytes = segment_bytes
        self._counters = counters
        self._algo = _checksum.DEFAULT_ALGO
        self._crc = _checksum.checksum_fn(self._algo)
        self._appended = 0
        self._durable = 0
        self._last_sync = time.monotonic()
        self._handle: IO[bytes] | None = None
        self._seq = start_seq - 1
        self._segment_size = 0
        self._closed = False
        self._open_segment(start_seq)

    # -- state ---------------------------------------------------------------------

    @property
    def current_seq(self) -> int:
        """Sequence number of the segment currently being appended to."""
        return self._seq

    @property
    def appended_entries(self) -> int:
        """Entries appended this session (durable or not)."""
        return self._appended

    @property
    def durable_entries(self) -> int:
        """Entries covered by an fsync — the ack watermark."""
        return self._durable

    # -- the single append path (REP001: every byte goes through fsio) --------------

    def append(self, payload: bytes) -> int:
        """Append one entry; returns this session's entry ordinal.

        The entry reaches the OS in one seam ``write``; durability
        follows the fsync policy (call :meth:`sync` to force it).
        """
        if self._closed:
            raise ValueError("WAL writer is closed")
        if self._segment_size >= self.segment_bytes:
            self.rotate()
        handle = self._handle
        assert handle is not None
        frame = struct.pack(">I", len(payload))
        entry = frame + struct.pack(">I", self._crc(frame + payload)) + payload
        handle.write(entry)
        self._segment_size += len(entry)
        self._appended += 1
        if self._counters is not None:
            self._counters.increment(COUNTER_APPENDS)
        if self._should_sync():
            self.sync()
        return self._appended

    def _should_sync(self) -> bool:
        if self._appended - self._durable >= self.sync_every:
            return True
        if self.sync_interval_s is not None:
            return time.monotonic() - self._last_sync >= self.sync_interval_s
        return False

    def sync(self) -> int:
        """Force every appended entry durable; returns the watermark."""
        if self._closed:
            raise ValueError("WAL writer is closed")
        if self._durable != self._appended:
            handle = self._handle
            assert handle is not None
            fsio.fsync_file(handle)
            self._durable = self._appended
            if self._counters is not None:
                self._counters.increment(COUNTER_FSYNCS)
        self._last_sync = time.monotonic()
        return self._durable

    # -- segments ------------------------------------------------------------------

    def rotate(self) -> int:
        """Seal the current segment (fsynced) and open the next one.

        Returns the sealed segment's sequence number — the flush
        boundary: every entry appended so far lives in a segment with
        seq <= the returned value.
        """
        sealed = self._seq
        self.sync()
        handle = self._handle
        assert handle is not None
        handle.close()
        self._open_segment(sealed + 1)
        return sealed

    def _open_segment(self, seq: int) -> None:
        path = segment_path(self._directory, seq)
        handle = fsio.open_file(path, "ab")
        try:
            if handle.tell() == 0:
                handle.write(_MAGIC + bytes([self._algo]))
                fsio.fsync_file(handle)
                if self._counters is not None:
                    self._counters.increment(COUNTER_FSYNCS)
                fsio.fsync_dir(self._directory)
        except BaseException:
            handle.close()
            raise
        self._handle = handle
        self._seq = seq
        self._segment_size = handle.tell()
        self._last_sync = time.monotonic()

    def retire_through(self, seq: int) -> int:
        """Delete segments with sequence <= ``seq`` (never the active one).

        Called only after the contents of those segments are durably
        published as tables; returns how many segments were removed.
        """
        retired = 0
        for existing_seq, path in list_segments(self._directory):
            if existing_seq <= seq and existing_seq != self._seq:
                fsio.unlink(path)
                retired += 1
        if retired and self._counters is not None:
            self._counters.increment(COUNTER_SEGMENTS_RETIRED, retired)
        return retired

    def close(self) -> None:
        """Fsync and release the active segment handle."""
        if self._closed:
            return
        try:
            self.sync()
        finally:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None
