"""Pluggable inventory backends: one query API, two storage engines.

"Stakeholders can retrieve the historical statistical summary for each
cell area … by querying for a specific location" (§1).  The paper's
serving story only works if those queries can be answered without first
materializing the whole inventory in memory.  This module makes the
query surface a *protocol* so the use-case apps and the CLI are agnostic
to where the summaries live:

- :class:`QueryableInventory` — the structural protocol every backend
  satisfies (point lookup, ``summary_at``, ``top_destinations_at``,
  ``route_cells``, ``cells``, ``items``);
- :class:`InventoryQueryMixin` — the shared position-query logic,
  expressed purely in terms of ``get`` + ``resolution`` so both backends
  answer identically by construction;
- :class:`SSTableInventory` — serves queries straight from a persisted
  table through an LRU :class:`BlockCache` (hit/miss/eviction counters in
  an :class:`~repro.engine.metrics.CounterSet`), using the table's
  ``.routes`` sidecar so ``route_cells`` needs no full scan;
- the in-memory :class:`~repro.inventory.store.Inventory` conforms by
  inheriting the mixin.

A point lookup through :class:`SSTableInventory` touches exactly one
data block (a cache miss) or zero bytes of disk (a hit) — the bounded
I/O behind the paper's "99.7 % fewer hits" claim, now measurable via the
cache counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterator
from pathlib import Path
from types import TracebackType
from typing import Protocol, runtime_checkable

from repro.engine.metrics import CounterSet
from repro.hexgrid import get_resolution, latlng_to_cell
from repro.inventory import sstable
from repro.inventory.codec import decode
from repro.inventory.keys import GroupKey, GroupingSet
from repro.inventory.summary import CellSummary
from repro.obs import registry
from repro.obs import trace as obs

#: One disk-backed point lookup (find block, load via cache, scan entries).
SPAN_GET = registry.register_span(
    "inventory.get",
    "one disk-backed point lookup through the block cache "
    "(attrs: found; counter deltas: block_cache.hits / block_cache.misses)",
)


@runtime_checkable
class QueryableInventory(Protocol):
    """What the use-case apps require of an inventory, regardless of
    whether it lives in memory or on disk."""

    resolution: int

    def get(self, key: GroupKey) -> CellSummary | None:
        """Exact-key point lookup."""
        ...

    def summary_at(
        self,
        lat: float,
        lon: float,
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> CellSummary | None:
        """The summary for the cell containing a position."""
        ...

    def top_destinations_at(
        self, lat: float, lon: float, vessel_type: str | None = None, n: int = 5
    ) -> list[tuple[str, int]]:
        """Most frequent historical destinations at a position."""
        ...

    def route_cells(
        self, origin: str, destination: str, vessel_type: str
    ) -> dict[int, CellSummary]:
        """All cells known for an (origin, destination, type) key."""
        ...

    def cells(self) -> set[int]:
        """Distinct cells present (over all grouping sets)."""
        ...

    def items(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """All (key, summary) pairs."""
        ...


class InventoryQueryMixin:
    """Position-query sugar shared by every backend.

    Everything here reduces to ``self.get`` and ``self.resolution``, so a
    backend that answers point lookups correctly answers the position
    queries correctly too — the cross-backend equivalence the tests
    assert is structural, not coincidental.
    """

    resolution: int

    def get(self, key: GroupKey) -> CellSummary | None:  # pragma: no cover
        """Exact-key point lookup (each backend provides its own)."""
        raise NotImplementedError

    def summary_at(
        self,
        lat: float,
        lon: float,
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> CellSummary | None:
        """The summary for the cell containing a position.

        Provide ``vessel_type`` for the per-market breakdown and both
        ``origin`` and ``destination`` for the per-route breakdown.
        """
        if (origin is None) != (destination is None):
            raise ValueError(
                "origin and destination must be provided together"
            )
        if origin is not None and vessel_type is None:
            raise ValueError("route breakdowns require a vessel type")
        cell = latlng_to_cell(lat, lon, self.resolution)
        return self.get(
            GroupKey(
                cell=cell,
                vessel_type=vessel_type,
                origin=origin,
                destination=destination,
            )
        )

    def top_destinations_at(
        self, lat: float, lon: float, vessel_type: str | None = None, n: int = 5
    ) -> list[tuple[str, int]]:
        """Most frequent historical destinations of vessels crossing the
        cell at a position: the destination-prediction primitive."""
        cell = latlng_to_cell(lat, lon, self.resolution)
        best: list[tuple[str, int]] = []
        if vessel_type is not None:
            summary = self.get(GroupKey(cell=cell, vessel_type=vessel_type))
            if summary is not None:
                best = [
                    (item.value, item.count)
                    for item in summary.destinations.top(n)
                ]
        if not best:
            summary = self.get(GroupKey(cell=cell))
            if summary is not None:
                best = [
                    (item.value, item.count)
                    for item in summary.destinations.top(n)
                ]
        return best


class BlockCache:
    """A tiny LRU cache of SSTable data blocks.

    Capacity is counted in blocks (≈ ``block_size`` bytes each), so the
    memory ceiling is ``capacity × block_size`` regardless of table size.
    Hits, misses and evictions are surfaced through a
    :class:`~repro.engine.metrics.CounterSet` for benchmarks and tests.

    ``get``/``put`` are thread-safe: under the query server one cache is
    shared by every worker thread answering requests, and the LRU
    reordering (``move_to_end``) corrupts the ``OrderedDict`` if two
    threads interleave it.
    """

    HITS = registry.register_counter(
        "block_cache.hits",
        "point lookups answered from a cached SSTable block (zero disk I/O)",
    )
    MISSES = registry.register_counter(
        "block_cache.misses",
        "point lookups that had to read (and verify) a block from disk",
    )
    EVICTIONS = registry.register_counter(
        "block_cache.evictions",
        "cached blocks dropped because the LRU cache was at capacity",
    )

    def __init__(self, capacity: int = 64, counters: CounterSet | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counters = counters if counters is not None else CounterSet()
        self._blocks: OrderedDict[int, bytes] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, block_index: int) -> bytes | None:
        """The cached block, refreshed to most-recently-used, or ``None``."""
        with self._lock:
            block = self._blocks.get(block_index)
            if block is not None:
                self._blocks.move_to_end(block_index)
        if block is None:
            self.counters.increment(self.MISSES)
            return None
        self.counters.increment(self.HITS)
        return block

    def put(self, block_index: int, block: bytes) -> None:
        """Insert a block, evicting the least recently used at capacity."""
        evictions = 0
        with self._lock:
            self._blocks[block_index] = block
            self._blocks.move_to_end(block_index)
            while len(self._blocks) > self.capacity:
                self._blocks.popitem(last=False)
                evictions += 1
        if evictions:
            self.counters.increment(self.EVICTIONS, evictions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    @property
    def hits(self) -> int:
        """Lookups answered from cache so far."""
        return self.counters.value(self.HITS)

    @property
    def misses(self) -> int:
        """Lookups that went to disk so far."""
        return self.counters.value(self.MISSES)

    @property
    def evictions(self) -> int:
        """Blocks evicted by the LRU policy so far."""
        return self.counters.value(self.EVICTIONS)

    def clear(self) -> None:
        """Drop every cached block (counters are preserved)."""
        with self._lock:
            self._blocks.clear()


class SSTableInventory(InventoryQueryMixin):
    """A read-only inventory served directly from a persisted table.

    Point lookups touch at most one data block, route lookups go through
    the persisted ``.routes`` sidecar (rebuilt from a one-time scan and
    re-persisted when missing), and repeated access to hot blocks is
    absorbed by the LRU :class:`BlockCache`.  Nothing here ever
    materializes the full store.
    """

    def __init__(
        self,
        path: str | Path,
        resolution: int | None = None,
        cache_blocks: int = 64,
        counters: CounterSet | None = None,
    ) -> None:
        """
        :param path: a table written by :class:`SSTableWriter` /
            :func:`write_inventory` / :func:`merge_tables`.
        :param resolution: the grid resolution; inferred from the table's
            first key when omitted (cell ids encode their resolution).
        :param cache_blocks: block-cache capacity, in blocks.
        :param counters: an external :class:`CounterSet` to share cache
            counters with (a fresh one otherwise).
        """
        self._path = Path(path)
        self._reader = sstable.SSTableReader(path)
        self.cache = BlockCache(cache_blocks, counters)
        self._route_index: dict[tuple[str, str, str], set[int]] | None = None
        self._route_lock = threading.Lock()
        if resolution is None:
            resolution = self._infer_resolution()
        self.resolution = resolution

    # -- lifecycle -----------------------------------------------------------------

    @property
    def path(self) -> Path:
        """The table file being served."""
        return self._path

    @property
    def reader(self) -> sstable.SSTableReader:
        """The underlying table reader (for format-level introspection)."""
        return self._reader

    def close(self) -> None:
        """Release the table file handle."""
        self._reader.close()

    def __enter__(self) -> "SSTableInventory":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def cache_stats(self) -> dict[str, int]:
        """Current block-cache counters (hits, misses, evictions)."""
        return self.cache.counters.as_dict()

    # -- inspection ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._reader.entry_count

    def __contains__(self, key: GroupKey) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """All (key, summary) pairs in key order.

        Full scans bypass the block cache on purpose: one pass over a
        large table must not evict the hot blocks point lookups rely on.
        """
        return self._reader.scan()

    def cells(self) -> set[int]:
        """Distinct cells present (one full key scan; answers that need
        to stay cheap should come from point or route lookups)."""
        return {key.cell for key, _ in self.items()}

    # -- queries -------------------------------------------------------------------

    def get(self, key: GroupKey) -> CellSummary | None:
        """Point lookup through the block cache: at most one block read."""
        with obs.span(SPAN_GET) as sp:
            key_raw = sstable._key_bytes(key)
            block_index = self._reader.find_block(key_raw)
            if block_index is None:
                sp.set("found", False)
                return None
            block = self._load_block(block_index, sp)
            for entry_key, value_raw in self._reader.parse_entries(block):
                if entry_key == key_raw:
                    sp.set("found", True)
                    return CellSummary.from_dict(decode(value_raw))
                if entry_key > key_raw:
                    break
            sp.set("found", False)
            return None

    def route_cells(
        self, origin: str, destination: str, vessel_type: str
    ) -> dict[int, CellSummary]:
        """All cells for which the (origin, destination, type) key exists,
        resolved via the persisted route index + cached point lookups."""
        if self._route_index is None:
            with self._route_lock:
                if self._route_index is None:
                    self._load_route_index()
        cells = self._route_index.get((origin, destination, vessel_type), set())
        result = {}
        for cell in sorted(cells):
            summary = self.get(
                GroupKey(
                    cell=cell,
                    vessel_type=vessel_type,
                    origin=origin,
                    destination=destination,
                )
            )
            if summary is not None:
                result[cell] = summary
        return result

    # -- internals -----------------------------------------------------------------

    def _load_block(
        self, block_index: int, sp: obs.SpanLike = obs.NOOP_SPAN
    ) -> bytes:
        block = self.cache.get(block_index)
        if block is None:
            sp.add(BlockCache.MISSES)
            block = self._reader.read_block(block_index)
            self.cache.put(block_index, block)
        else:
            sp.add(BlockCache.HITS)
        return block

    def _load_route_index(self) -> None:
        index = sstable.read_route_index(self._path)
        if index is None:
            # Legacy table without a sidecar: one recovery scan, then
            # persist so the next open is O(1) again.
            index = {}
            for key, _ in self.items():
                if key.grouping_set is GroupingSet.CELL_OD_TYPE:
                    route = (key.origin, key.destination, key.vessel_type)
                    index.setdefault(route, set()).add(key.cell)
            try:
                sstable.write_route_index(self._path, index)
            except OSError:  # read-only media: serve from memory only
                pass
        self._route_index = index

    def _infer_resolution(self) -> int:
        for key, _ in self.items():
            return get_resolution(key.cell)
        raise ValueError(
            f"cannot infer the resolution of an empty table {self._path}; "
            "pass resolution= explicitly"
        )


def open_backend(
    path: str | Path,
    resolution: int | None = None,
    cache_blocks: int = 64,
) -> SSTableInventory:
    """Open a persisted table as a servable :class:`QueryableInventory`."""
    return SSTableInventory(path, resolution=resolution, cache_blocks=cache_blocks)
