"""Block checksums for the on-disk inventory format.

Format v3 (``POLINV3``) checksums every data block, the sparse index and
the footer so a bit flip anywhere in a table surfaces as a typed
:class:`~repro.inventory.sstable.CorruptionError` instead of a silently
wrong :class:`~repro.inventory.summary.CellSummary` — the failure class
``tests/test_failure_injection.py`` declares worse than a crash.

Two algorithms are registered, and every table records which one it was
written with (a single algorithm byte in the footer), so readers never
guess:

- **CRC32C** (Castagnoli, the polynomial storage systems standardise on
  for its better burst-error detection and hardware support).  The pure
  Python implementation below is the reference; when a native
  ``crc32c`` module is importable it transparently replaces it.
- **CRC32** (IEEE, via :func:`zlib.crc32`) — C speed everywhere the
  standard library exists.

The *writer default* is the fastest verified implementation available:
CRC32C when a native implementation is importable, CRC32 otherwise
(the pure-Python CRC32C runs ~500× slower than zlib and would dominate
scans and compactions).  Either way the choice is recorded per file and
both sides of the wire agree byte-for-byte.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable

#: Algorithm ids recorded in the table footer (one byte).
CRC32C = 1
CRC32 = 2

_CASTAGNOLI_POLY = 0x82F63B78


def _build_crc32c_table() -> tuple[int, ...]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _CASTAGNOLI_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _build_crc32c_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``, continuing from ``value``.

    Pure-Python reference implementation (table-driven); pinned against
    the RFC 3720 test vectors in the test suite.
    """
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32(data: bytes, value: int = 0) -> int:
    """CRC32 (IEEE) of ``data``, continuing from ``value``."""
    return zlib.crc32(data, value) & 0xFFFFFFFF


_FUNCTIONS: dict[int, Callable[..., int]] = {CRC32C: crc32c, CRC32: crc32}
_NAMES = {CRC32C: "crc32c", CRC32: "crc32"}

#: What new tables are written with: the fastest verified implementation.
DEFAULT_ALGO = CRC32

try:  # pragma: no cover - depends on the environment
    from crc32c import crc32c as _native_crc32c  # type: ignore[import-not-found]

    _FUNCTIONS[CRC32C] = lambda data, value=0: _native_crc32c(data, value)
    DEFAULT_ALGO = CRC32C
except ImportError:
    pass


def checksum_fn(algo: int) -> Callable[..., int]:
    """The checksum callable for a recorded algorithm id.

    Raises :class:`ValueError` for ids no registered algorithm carries —
    readers treat that as footer corruption.
    """
    try:
        return _FUNCTIONS[algo]
    except KeyError:
        raise ValueError(f"unknown checksum algorithm id {algo}") from None


def algo_name(algo: int) -> str:
    """Human-readable name for reports (``repro fsck``)."""
    return _NAMES.get(algo, f"unknown({algo})")
