"""A compact self-describing binary codec for summary payloads.

A small CBOR-flavoured encoding for the JSON-ish values the sketches
serialise to (None, bools, ints, floats, strings, bytes, lists, dicts).
Versus JSON it is ~40 % smaller (no quoting, binary floats and varint
integers), decodes without string parsing, and round-trips int keys and
bytes natively — the properties an on-disk inventory format needs.

Wire format: one type tag byte, then a payload.

=====  ============================================================
tag    payload
=====  ============================================================
``N``  none — empty
``T``  true — empty
``F``  false — empty
``i``  zig-zag varint integer
``f``  8-byte IEEE-754 big-endian float
``s``  varint byte-length, then UTF-8 bytes
``b``  varint length, then raw bytes
``l``  varint element count, then each element encoded
``d``  varint pair count, then alternating encoded keys and values
=====  ============================================================
"""

from __future__ import annotations

import struct


class CodecError(ValueError):
    """Raised for unencodable values or malformed payloads."""


def encode(value: object) -> bytes:
    """Encode a value tree to bytes."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def decode(payload: bytes) -> object:
    """Decode bytes produced by :func:`encode`.

    Raises :class:`CodecError` on trailing garbage or truncation.
    """
    value, offset = _decode_from(payload, 0)
    if offset != len(payload):
        raise CodecError(
            f"trailing bytes after value: {len(payload) - offset} left"
        )
    return value


# -- varints --------------------------------------------------------------------


def _write_uvarint(value: int, out: bytearray) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(payload: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise CodecError("truncated varint")
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 127:
            raise CodecError("varint too long")


# -- values ---------------------------------------------------------------------


def _encode_into(value: object, out: bytearray) -> None:
    if value is None:
        out.append(ord("N"))
    elif value is True:
        out.append(ord("T"))
    elif value is False:
        out.append(ord("F"))
    elif isinstance(value, int):
        out.append(ord("i"))
        _write_uvarint(_zz(value), out)
    elif isinstance(value, float):
        out.append(ord("f"))
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(ord("s"))
        _write_uvarint(len(raw), out)
        out.extend(raw)
    elif isinstance(value, bytes):
        out.append(ord("b"))
        _write_uvarint(len(value), out)
        out.extend(value)
    elif isinstance(value, (list, tuple)):
        out.append(ord("l"))
        _write_uvarint(len(value), out)
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(ord("d"))
        _write_uvarint(len(value), out)
        for key, item in value.items():
            _encode_into(key, out)
            _encode_into(item, out)
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}")


def _zz(value: int) -> int:
    # Standard zig-zag for arbitrary-precision ints: non-negatives map to
    # even numbers, negatives to odd.
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzz(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


def _decode_from(payload: bytes, offset: int) -> tuple[object, int]:
    if offset >= len(payload):
        raise CodecError("truncated value")
    tag = payload[offset]
    offset += 1
    if tag == ord("N"):
        return None, offset
    if tag == ord("T"):
        return True, offset
    if tag == ord("F"):
        return False, offset
    if tag == ord("i"):
        raw, offset = _read_uvarint(payload, offset)
        return _unzz(raw), offset
    if tag == ord("f"):
        if offset + 8 > len(payload):
            raise CodecError("truncated float")
        return struct.unpack(">d", payload[offset : offset + 8])[0], offset + 8
    if tag == ord("s"):
        length, offset = _read_uvarint(payload, offset)
        if offset + length > len(payload):
            raise CodecError("truncated string")
        return payload[offset : offset + length].decode("utf-8"), offset + length
    if tag == ord("b"):
        length, offset = _read_uvarint(payload, offset)
        if offset + length > len(payload):
            raise CodecError("truncated bytes")
        return payload[offset : offset + length], offset + length
    if tag == ord("l"):
        count, offset = _read_uvarint(payload, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_from(payload, offset)
            items.append(item)
        return items, offset
    if tag == ord("d"):
        count, offset = _read_uvarint(payload, offset)
        result = {}
        for _ in range(count):
            key, offset = _decode_from(payload, offset)
            value, offset = _decode_from(payload, offset)
            result[key] = value
        return result, offset
    raise CodecError(f"unknown type tag {tag!r}")
