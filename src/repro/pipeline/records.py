"""Record models flowing between pipeline stages.

Each stage narrows and enriches the records: raw protocol reports become
:class:`CleanRecord` after validation and enrichment, :class:`TripRecord`
after trip-semantics annotation, and :class:`CellRecord` after spatial
projection — the final shape the feature extractor aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CleanRecord:
    """A validated, enriched position report (post §3.3.1)."""

    mmsi: int
    ts: float
    lat: float
    lon: float
    sog: float
    cog: float
    heading: int | None
    status: int
    vessel_type: str
    grt: int


@dataclass(frozen=True, slots=True)
class TripRecord:
    """A clean record annotated with trip semantics (post §3.3.2).

    ``eto_s`` is the elapsed time from departure, ``ata_s`` the actual
    remaining time to arrival — both derived purely by subtracting the
    report timestamp from the trip's endpoint timestamps.
    """

    mmsi: int
    ts: float
    lat: float
    lon: float
    sog: float
    cog: float
    heading: int | None
    status: int
    vessel_type: str
    grt: int
    trip_id: str
    origin: str
    destination: str
    depart_ts: float
    arrive_ts: float

    @property
    def eto_s(self) -> float:
        """Elapsed time from origin, seconds."""
        return self.ts - self.depart_ts

    @property
    def ata_s(self) -> float:
        """Actual time to arrival, seconds."""
        return self.arrive_ts - self.ts


@dataclass(frozen=True, slots=True)
class CellRecord:
    """A trip record projected onto the grid (post §3.3.3).

    ``next_cell`` is the next *different* cell this vessel's trip visits,
    or ``None`` at the trip's end — the raw material of the transitions
    feature.  ``extras`` holds fused non-AIS feature values, aligned with
    the pipeline's configured extra features.
    """

    mmsi: int
    ts: float
    sog: float
    cog: float
    heading: int | None
    vessel_type: str
    trip_id: str
    origin: str
    destination: str
    eto_s: float
    ata_s: float
    cell: int
    next_cell: int | None
    extras: tuple = ()
