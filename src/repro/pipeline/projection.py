"""Projection to the spatial index (§3.3.3) and transition derivation.

Each trip record gets the cell containing its position at the configured
resolution.  Within a trip's time order, a record's ``next_cell`` is the
next *different* cell the vessel reaches — "a summation of individual
transitions from a cell to another with respect to the original order of
AIS messages within each trip" (§3.3.4).

With ``densify=True`` the lattice line between non-adjacent consecutive
cells is traced (:func:`repro.hexgrid.grid_path_cells`) so that sparse
reporting still yields neighbor-to-neighbor transitions; the synthetic
intermediate records carry the interpolating record's features.
"""

from __future__ import annotations

from repro.hexgrid import grid_path_cells, latlng_to_cell
from repro.pipeline.records import CellRecord, TripRecord


def project_trip(
    records: list[TripRecord],
    resolution: int,
    densify: bool = False,
    extra_features: tuple = (),
) -> list[CellRecord]:
    """Cell-projected records of one trip, in time order.

    ``extra_features`` (:class:`~repro.pipeline.extras.ExtraFeature`) are
    sampled at each record's position and timestamp; their values ride on
    the cell records into the summaries.
    """
    if not records:
        return []
    cells = [
        latlng_to_cell(record.lat, record.lon, resolution) for record in records
    ]
    output: list[CellRecord] = []
    for index, (record, cell) in enumerate(zip(records, cells)):
        extras = tuple(
            feature.fn(record.lat, record.lon, record.ts)
            for feature in extra_features
        )
        next_cell = _next_different(cells, index)
        if densify and next_cell is not None and next_cell != cell:
            path = grid_path_cells(cell, next_cell)
            if len(path) > 2:
                output.append(_make_cell_record(record, cell, path[1], extras))
                for step, intermediate in enumerate(path[1:-1]):
                    output.append(
                        _make_cell_record(
                            record, intermediate, path[step + 2], extras
                        )
                    )
                continue
        output.append(_make_cell_record(record, cell, next_cell, extras))
    return output


def _next_different(cells: list[int], index: int) -> int | None:
    current = cells[index]
    for cell in cells[index + 1 :]:
        if cell != current:
            return cell
    return None


def _make_cell_record(
    record: TripRecord, cell: int, next_cell: int | None, extras: tuple = ()
) -> CellRecord:
    return CellRecord(
        mmsi=record.mmsi,
        ts=record.ts,
        sog=record.sog,
        cog=record.cog,
        heading=record.heading,
        vessel_type=record.vessel_type,
        trip_id=record.trip_id,
        origin=record.origin,
        destination=record.destination,
        eto_s=record.eto_s,
        ata_s=record.ata_s,
        cell=cell,
        next_cell=next_cell,
        extras=extras,
    )
