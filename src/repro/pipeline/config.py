"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hexgrid import MAX_RESOLUTION
from repro.inventory.summary import SummaryConfig
from repro.pipeline.extras import ExtraFeature


@dataclass(frozen=True)
class PipelineConfig:
    """Every knob of the methodology.

    Defaults follow the paper: H3-equivalent resolution 6, the 50-knot
    feasibility threshold, commercial vessels above 5000 GRT only.
    """

    resolution: int = 6
    max_transition_speed_kn: float = 50.0
    #: In-geofence records slower than this are port stops; faster ones
    #: are transits and stay part of the trip (§3.3.2).
    stop_speed_kn: float = 2.0
    min_grt: int = 5_000
    commercial_only: bool = True
    #: Trace the lattice line between non-adjacent consecutive cells so
    #: transition counts stay neighbor-to-neighbor even when the reporting
    #: interval spans several cells.
    densify_transitions: bool = False
    #: Resolution of the geofence port index (coarser than the analysis
    #: resolution; only used for candidate lookup).
    geofence_index_resolution: int = 5
    #: Run the funnel on columnar record batches
    #: (:mod:`repro.pipeline.vectorized`).  Bit-identical to the scalar
    #: path — the equivalence suite pins byte-equal SSTables — so this
    #: is a pure performance switch; ``False`` selects the scalar
    #: reference implementation.
    vectorized: bool = True
    summary: SummaryConfig = field(default_factory=SummaryConfig)
    #: Fused non-AIS features (§5 future work), e.g.
    #: :func:`repro.pipeline.extras.wind_features`.
    extra_features: tuple[ExtraFeature, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.resolution <= MAX_RESOLUTION:
            raise ValueError(f"resolution out of range: {self.resolution}")
        if self.max_transition_speed_kn <= 0.0:
            raise ValueError("feasibility threshold must be positive")

    @property
    def effective_summary(self) -> SummaryConfig:
        """The summary config with the extra-feature names wired in."""
        names = tuple(feature.name for feature in self.extra_features)
        if names == self.summary.extra_names:
            return self.summary
        from dataclasses import replace

        return replace(self.summary, extra_names=names)
