"""Port geofencing (§3.3.2's spatial technique).

A :class:`PortIndex` answers "which port, if any, contains this position?"
in O(1): ports are pre-registered into the grid cells their geofence can
touch at a coarse index resolution; a lookup hashes the query position to
its cell, then haversine-checks the handful of candidate ports registered
there.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.geo.distance import haversine_m
from repro.hexgrid import grid_disk, latlng_to_cell
from repro.hexgrid.lattice import cell_spacing_m
from repro.world.ports import Port


class PortIndex:
    """Cell-bucketed port lookup."""

    def __init__(self, ports: Iterable[Port], index_resolution: int = 5) -> None:
        self.index_resolution = index_resolution
        self._ports = tuple(ports)
        self._buckets: dict[int, tuple[Port, ...]] = {}
        spacing = cell_spacing_m(index_resolution)
        staging: dict[int, list[Port]] = {}
        for port in self._ports:
            center = latlng_to_cell(port.lat, port.lon, index_resolution)
            # The geofence circle can poke into cells within radius +
            # one spacing of the center cell.  The equal-area projection
            # stretches geodesic distance by 1/cos(lat) at worst, so widen
            # the ring accordingly for high-latitude ports.
            stretch = 1.0 / max(0.2, math.cos(math.radians(port.lat)))
            rings = int(port.radius_m * stretch / spacing) + 2
            for cell in grid_disk(center, rings):
                staging.setdefault(cell, []).append(port)
        self._buckets = {cell: tuple(ports) for cell, ports in staging.items()}

    @property
    def ports(self) -> tuple[Port, ...]:
        """The indexed ports."""
        return self._ports

    def port_at(self, lat: float, lon: float) -> Port | None:
        """The port whose geofence contains the position, or ``None``.

        Overlapping geofences (rare: adjacent terminal pairs) resolve to
        the nearest port center.
        """
        cell = latlng_to_cell(lat, lon, self.index_resolution)
        candidates = self._buckets.get(cell)
        if not candidates:
            return None
        best: Port | None = None
        best_distance = math.inf
        for port in candidates:
            distance = haversine_m(lat, lon, port.lat, port.lon)
            if distance <= port.radius_m and distance < best_distance:
                best = port
                best_distance = distance
        return best

    def bucket_count(self) -> int:
        """Number of cells with registered candidates (index footprint)."""
        return len(self._buckets)
