"""Columnar record batches: struct-of-arrays twins of the record models.

The scalar pipeline moves one frozen dataclass per record between
stages; at archive scale the boxing (attribute access, per-record tuple
fan-out, kwargs calls) dominates the funnel's wall time.  A
:class:`RecordBatch` keeps the *same fields* as its record class but
stores each as one column — ``array('d')``/``array('q')`` for numerics
(zero-copy views via :meth:`RecordBatch.memoryview_of`), plain lists for
strings and tuples — so the batch kernels in
:mod:`repro.pipeline.vectorized` iterate tight local-variable loops
instead of object graphs.

Three concrete batches mirror the three record shapes:

==================  ==========================================  =================
:class:`CleanBatch`   :class:`~repro.pipeline.records.CleanRecord`  post-enrichment
:class:`TripBatch`    :class:`~repro.pipeline.records.TripRecord`   post trip-annotation
:class:`CellBatch`    :class:`~repro.pipeline.records.CellRecord`   post projection
==================  ==========================================  =================

``from_records``/``to_records`` are exact inverses (the round-trip
property test pins this): optional integer columns (``heading``,
``next_cell``) encode ``None`` as :data:`NULL_INT`, which is safe
because both fields are non-negative in every valid record — a negative
input is rejected rather than silently aliased.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Sequence
from typing import ClassVar

from repro.pipeline.records import CellRecord, CleanRecord, TripRecord

#: Sentinel for ``None`` in optional integer columns.  Headings are
#: 0–510 degrees and cell ids are positive, so -1 never collides.
NULL_INT = -1

#: Column kinds: 64-bit float, 64-bit int, optional 64-bit int
#: (``None`` ↔ :data:`NULL_INT`), and arbitrary objects (strings,
#: extras tuples) in a plain list.
FLOAT = "f8"
INT = "i8"
OPT_INT = "i8?"
OBJ = "obj"


class RecordBatch:
    """Base struct-of-arrays batch; subclasses declare ``SPEC``/``RECORD``.

    ``SPEC`` lists ``(field_name, kind)`` pairs in the record class's
    field order, so ``RECORD(*row)`` reconstructs a record positionally.
    """

    #: (field, kind) pairs in record-field order.
    SPEC: ClassVar[tuple[tuple[str, str], ...]] = ()
    #: The frozen dataclass a row of this batch round-trips to.
    RECORD: ClassVar[type] = object

    __slots__ = ("_length",)

    def __init__(self, **columns: Sequence) -> None:
        length: int | None = None
        for name, _kind in self.SPEC:
            column = columns.pop(name)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ValueError(
                    f"column {name!r} has {len(column)} rows, expected {length}"
                )
            setattr(self, name, column)
        if columns:
            raise ValueError(f"unknown columns: {sorted(columns)}")
        self._length = length or 0

    def __len__(self) -> int:
        return self._length

    @classmethod
    def from_records(cls, records: Iterable) -> "RecordBatch":
        """Build a batch from record instances (columnar transpose)."""
        records = list(records)
        columns: dict[str, Sequence] = {}
        for name, kind in cls.SPEC:
            if kind == FLOAT:
                columns[name] = array(
                    "d", (getattr(r, name) for r in records)
                )
            elif kind == INT:
                columns[name] = array(
                    "q", (getattr(r, name) for r in records)
                )
            elif kind == OPT_INT:
                columns[name] = array(
                    "q", (_encode_opt(getattr(r, name), name) for r in records)
                )
            else:
                columns[name] = [getattr(r, name) for r in records]
        return cls(**columns)

    def to_records(self) -> list:
        """The rows as record instances (inverse of :meth:`from_records`)."""
        columns = []
        for name, kind in self.SPEC:
            column = getattr(self, name)
            if kind == OPT_INT:
                column = [None if v == NULL_INT else v for v in column]
            columns.append(column)
        record = self.RECORD
        return [record(*row) for row in zip(*columns)] if self._length else []

    def column(self, name: str) -> Sequence:
        """The raw column storage for a field (array or list)."""
        if name not in {field for field, _ in self.SPEC}:
            raise KeyError(f"no column {name!r} in {type(self).__name__}")
        return getattr(self, name)

    def memoryview_of(self, name: str) -> memoryview:
        """A zero-copy :class:`memoryview` over a numeric column."""
        column = self.column(name)
        if not isinstance(column, array):
            raise TypeError(f"column {name!r} is not numeric")
        return memoryview(column)

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """A new batch over rows ``[start, stop)`` (columns are copied —
        ``array`` slicing has no view form)."""
        columns = {
            name: getattr(self, name)[start:stop] for name, _ in self.SPEC
        }
        return type(self)(**columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rows={self._length})"


def _encode_opt(value: int | None, name: str) -> int:
    if value is None:
        return NULL_INT
    if value < 0:
        raise ValueError(
            f"optional column {name!r} cannot store negative value {value}"
        )
    return value


class CleanBatch(RecordBatch):
    """Columnar :class:`~repro.pipeline.records.CleanRecord` rows."""

    SPEC = (
        ("mmsi", INT),
        ("ts", FLOAT),
        ("lat", FLOAT),
        ("lon", FLOAT),
        ("sog", FLOAT),
        ("cog", FLOAT),
        ("heading", OPT_INT),
        ("status", INT),
        ("vessel_type", OBJ),
        ("grt", INT),
    )
    RECORD = CleanRecord
    __slots__ = tuple(name for name, _ in SPEC)


class TripBatch(RecordBatch):
    """Columnar :class:`~repro.pipeline.records.TripRecord` rows.

    The pipeline produces one ``TripBatch`` per trip, so ``trip_id``,
    ``origin``, ``destination``, ``depart_ts`` and ``arrive_ts`` are
    constant columns there — but the layout does not *require* it, and
    ``from_records`` accepts arbitrary row mixes.
    """

    SPEC = (
        ("mmsi", INT),
        ("ts", FLOAT),
        ("lat", FLOAT),
        ("lon", FLOAT),
        ("sog", FLOAT),
        ("cog", FLOAT),
        ("heading", OPT_INT),
        ("status", INT),
        ("vessel_type", OBJ),
        ("grt", INT),
        ("trip_id", OBJ),
        ("origin", OBJ),
        ("destination", OBJ),
        ("depart_ts", FLOAT),
        ("arrive_ts", FLOAT),
    )
    RECORD = TripRecord
    __slots__ = tuple(name for name, _ in SPEC)


class CellBatch(RecordBatch):
    """Columnar :class:`~repro.pipeline.records.CellRecord` rows."""

    SPEC = (
        ("mmsi", INT),
        ("ts", FLOAT),
        ("sog", FLOAT),
        ("cog", FLOAT),
        ("heading", OPT_INT),
        ("vessel_type", OBJ),
        ("trip_id", OBJ),
        ("origin", OBJ),
        ("destination", OBJ),
        ("eto_s", FLOAT),
        ("ata_s", FLOAT),
        ("cell", INT),
        ("next_cell", OPT_INT),
        ("extras", OBJ),
    )
    RECORD = CellRecord
    __slots__ = tuple(name for name, _ in SPEC)
