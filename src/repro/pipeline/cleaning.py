"""Data cleaning and preprocessing (§3.3.1).

In the paper's words: partition by vessel identifier, drop out-of-range
field values, sort by reported timestamp, compute pairwise time gaps and
haversine distances, drop non-feasible transitions (implied speed over 50
knots), annotate with static vessel information, and drop non-commercial
vessels.  All functions here are module-level so every scheduler backend
can run them.
"""

from __future__ import annotations

from repro.ais.messages import HEADING_NOT_AVAILABLE, PositionReport
from repro.ais.validation import is_valid_position_report
from repro.ais.vesseltypes import COMMERCIAL_SEGMENTS
from repro.geo.distance import speed_between_knots
from repro.pipeline.records import CleanRecord
from repro.world.fleet import Vessel


def key_by_mmsi(report: PositionReport) -> tuple[int, PositionReport]:
    """Partitioning key: the vessel identifier."""
    return report.mmsi, report


def sort_and_dedupe(reports: list[PositionReport]) -> list[PositionReport]:
    """Order one vessel's reports by reported timestamp and drop exact
    duplicates (same timestamp and position)."""
    reports = sorted(reports, key=lambda r: r.epoch_ts)
    deduped: list[PositionReport] = []
    last_signature: tuple | None = None
    for report in reports:
        signature = (report.epoch_ts, report.lat, report.lon)
        if signature == last_signature:
            continue
        deduped.append(report)
        last_signature = signature
    return deduped


def feasibility_filter(
    reports: list[PositionReport], max_speed_kn: float = 50.0
) -> list[PositionReport]:
    """Drop reports implying impossible jumps from the last accepted one.

    A single GPS teleport spike is rejected because the jump *to* it is
    infeasible, and the following genuine report is then re-checked
    against the pre-spike position, which it passes.
    """
    accepted: list[PositionReport] = []
    for report in reports:
        if accepted:
            previous = accepted[-1]
            implied = speed_between_knots(
                previous.lat,
                previous.lon,
                previous.epoch_ts,
                report.lat,
                report.lon,
                report.epoch_ts,
            )
            if implied > max_speed_kn:
                continue
        accepted.append(report)
    return accepted


def commercial_vessel(
    mmsi: int,
    static_by_mmsi: dict[int, Vessel],
    min_grt: int = 5_000,
    commercial_only: bool = True,
) -> Vessel | None:
    """The fleet filter shared by the scalar and batch enrichment paths.

    Returns the vessel's static record, or ``None`` when the vessel is
    filtered out (unknown MMSI, non-commercial segment, or below the
    tonnage threshold).
    """
    vessel = static_by_mmsi.get(mmsi)
    if vessel is None:
        return None
    if commercial_only and vessel.segment not in COMMERCIAL_SEGMENTS:
        return None
    if vessel.grt < min_grt:
        return None
    return vessel


def enrich_track(
    mmsi: int,
    reports: list[PositionReport],
    static_by_mmsi: dict[int, Vessel],
    min_grt: int = 5_000,
    commercial_only: bool = True,
) -> list[CleanRecord] | None:
    """Attach static vessel data; apply the commercial-fleet filter.

    Returns ``None`` when the whole vessel is filtered out (unknown MMSI,
    non-commercial segment, or below the tonnage threshold).
    """
    vessel = commercial_vessel(
        mmsi, static_by_mmsi, min_grt=min_grt, commercial_only=commercial_only
    )
    if vessel is None:
        return None
    segment = vessel.segment.value
    return [
        CleanRecord(
            mmsi=report.mmsi,
            ts=report.epoch_ts,
            lat=report.lat,
            lon=report.lon,
            sog=report.sog,
            cog=report.cog,
            heading=(
                None if report.heading == HEADING_NOT_AVAILABLE else report.heading
            ),
            status=report.status,
            vessel_type=segment,
            grt=vessel.grt,
        )
        for report in reports
    ]


def validate(report: PositionReport) -> bool:
    """The per-record protocol validation predicate."""
    return is_valid_position_report(report)
