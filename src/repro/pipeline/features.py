"""Feature extraction (§3.3.4): grouping sets → summary aggregation.

"The GS set corresponds to the mapping phase while the aggregated
statistics correspond to the reduce phase."  Concretely:

- **map**: each cell record fans out to one (group identifier, record)
  pair per grouping set (Table 2);
- **reduce**: ``combine_by_key`` folds records into
  :class:`~repro.inventory.summary.CellSummary` sketches map-side and
  merges partial summaries reduce-side (Table 3).
"""

from __future__ import annotations

from repro.inventory.keys import keys_for_record
from repro.inventory.summary import CellSummary, SummaryConfig
from repro.pipeline.records import CellRecord


def fan_out(record: CellRecord) -> list[tuple[tuple, CellRecord]]:
    """One (key-tuple, record) pair per grouping set the record feeds.

    Keys travel through the shuffle as plain tuples (cheap to hash and
    pickle); they are rebuilt into :class:`GroupKey` when the inventory is
    assembled.
    """
    return [
        (key.to_tuple(), record)
        for key in keys_for_record(
            cell=record.cell,
            vessel_type=record.vessel_type,
            origin=record.origin,
            destination=record.destination,
        )
    ]


def make_update(config: SummaryConfig):
    """A (summary, record) → summary folder bound to a sketch config."""

    def update(summary: CellSummary, record: CellRecord) -> CellSummary:
        summary.update(
            mmsi=record.mmsi,
            sog=record.sog,
            cog=record.cog,
            heading=record.heading,
            trip_id=record.trip_id,
            eto_s=record.eto_s,
            ata_s=record.ata_s,
            origin=record.origin,
            destination=record.destination,
            next_cell=record.next_cell,
            extras=record.extras,
        )
        return summary

    return update


def make_create(config: SummaryConfig):
    """A record → fresh summary constructor bound to a sketch config."""
    update = make_update(config)

    def create(record: CellRecord) -> CellSummary:
        return update(CellSummary(config), record)

    return create


def merge_summaries(a: CellSummary, b: CellSummary) -> CellSummary:
    """Reduce-side combiner: the summary monoid's merge."""
    return a.merge(b)
