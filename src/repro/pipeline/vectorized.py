"""Batch kernels for the pipeline funnel (the columnar hot path).

Each kernel is the struct-of-arrays twin of a scalar stage function and
is **bit-identical** to it by construction: per sketch and per group,
the batched path applies exactly the float/int operations the scalar
path applies, in the same order — it only amortizes everything that is
*not* a sketch operand across a batch or a run of rows:

- trig and bin-index work for course/heading is computed once per row
  and reused across every grouping set the row feeds;
- rows are folded into summaries per *run* (consecutive rows sharing
  cell, next-cell, trip, vessel type, O/D and MMSI — the shape trip
  projection naturally emits), so the per-row costs of the scalar path
  (grouping-set fan-out tuples, kwargs dispatch, per-row dict probes,
  one HyperLogLog hash per row for idempotent members) collapse to
  once-per-run;
- Space-Saving counts use the weighted update, which is exactly
  equivalent to repeated unit updates.

The equivalence suite (``tests/test_batch_equivalence.py``) pins the
result: byte-identical summaries and SSTables against the scalar
funnel on a seeded world.
"""

from __future__ import annotations

from array import array
from math import cos, radians, sin

from repro.ais.messages import HEADING_NOT_AVAILABLE, PositionReport
from repro.hexgrid import grid_path_cells, latlng_to_cell
from repro.inventory.summary import CellSummary, SummaryConfig
from repro.pipeline.batches import NULL_INT, CellBatch, CleanBatch, TripBatch
from repro.pipeline.cleaning import commercial_vessel
from repro.pipeline.geofence import PortIndex
from repro.sketches.hyperloglog import hash64
from repro.pipeline.trips import DEFAULT_STOP_SPEED_KN, trip_spans
from repro.world.fleet import Vessel


def enrich_track_batch(
    mmsi: int,
    reports: list[PositionReport],
    static_by_mmsi: dict[int, Vessel],
    min_grt: int = 5_000,
    commercial_only: bool = True,
) -> CleanBatch | None:
    """Batch twin of :func:`repro.pipeline.cleaning.enrich_track`.

    Builds the clean columns straight from the protocol reports — no
    intermediate ``CleanRecord`` boxing.  Returns ``None`` for vessels
    the fleet filter drops, exactly as the scalar path does.
    """
    vessel = commercial_vessel(
        mmsi, static_by_mmsi, min_grt=min_grt, commercial_only=commercial_only
    )
    if vessel is None:
        return None
    segment = vessel.segment.value
    n = len(reports)
    return CleanBatch(
        mmsi=array("q", (r.mmsi for r in reports)),
        ts=array("d", (r.epoch_ts for r in reports)),
        lat=array("d", (r.lat for r in reports)),
        lon=array("d", (r.lon for r in reports)),
        sog=array("d", (r.sog for r in reports)),
        cog=array("d", (r.cog for r in reports)),
        heading=array(
            "q",
            (
                NULL_INT if r.heading == HEADING_NOT_AVAILABLE else r.heading
                for r in reports
            ),
        ),
        status=array("q", (r.status for r in reports)),
        vessel_type=[segment] * n,
        grt=array("q", [vessel.grt] * n),
    )


def annotate_trips_batch(
    batch: CleanBatch,
    port_index: PortIndex,
    stop_speed_kn: float = DEFAULT_STOP_SPEED_KN,
) -> list[TripBatch]:
    """Batch twin of :func:`repro.pipeline.trips.annotate_trips`.

    Returns one :class:`TripBatch` per trip, in trip order — the same
    records, in the same order, as the scalar path's flattened
    ``TripRecord`` stream (it shares the :func:`trip_spans` state
    machine outright).
    """
    if not len(batch):
        return []
    lats = batch.lat
    lons = batch.lon
    sogs = batch.sog
    port_at = port_index.port_at
    port_labels = [
        port_at(lats[i], lons[i]) if sogs[i] < stop_speed_kn else None
        for i in range(len(batch))
    ]
    ts = batch.ts
    trips: list[TripBatch] = []
    for counter, (start, end, origin, destination) in enumerate(
        trip_spans(port_labels)
    ):
        n = end - start
        trip_id = f"{batch.mmsi[start]}-{counter:04d}"
        trips.append(
            TripBatch(
                mmsi=batch.mmsi[start:end],
                ts=ts[start:end],
                lat=lats[start:end],
                lon=lons[start:end],
                sog=sogs[start:end],
                cog=batch.cog[start:end],
                heading=batch.heading[start:end],
                status=batch.status[start:end],
                vessel_type=batch.vessel_type[start:end],
                grt=batch.grt[start:end],
                trip_id=[trip_id] * n,
                origin=[origin] * n,
                destination=[destination] * n,
                depart_ts=array("d", [ts[start]]) * n,
                arrive_ts=array("d", [ts[end - 1]]) * n,
            )
        )
    return trips


def project_batch(
    batch: TripBatch,
    resolution: int,
    densify: bool = False,
    extra_features: tuple = (),
) -> CellBatch:
    """Batch twin of :func:`repro.pipeline.projection.project_trip`.

    Row-for-row identical output (including the densified intermediate
    records); ``eto_s``/``ata_s`` are the same float subtractions the
    ``TripRecord`` properties perform.
    """
    n = len(batch)
    lats = batch.lat
    lons = batch.lon
    ts = batch.ts
    cells = [latlng_to_cell(lats[i], lons[i], resolution) for i in range(n)]

    out_index: list[int] = []  # source row of each output row
    out_cell = array("q")
    out_next = array("q")
    out_extras: list[tuple] = []

    next_cell = NULL_INT
    for index in range(n - 1, -1, -1):
        # Scanning backwards makes "next different cell" O(1) per row.
        cell = cells[index]
        if index + 1 < n and cells[index + 1] != cell:
            next_cell = cells[index + 1]
        extras = (
            tuple(
                feature.fn(lats[index], lons[index], ts[index])
                for feature in extra_features
            )
            if extra_features
            else ()
        )
        if densify and next_cell != NULL_INT and next_cell != cell:
            path = grid_path_cells(cell, next_cell)
            if len(path) > 2:
                rows = [(cell, path[1])]
                rows.extend(
                    (intermediate, path[step + 2])
                    for step, intermediate in enumerate(path[1:-1])
                )
                for row_cell, row_next in reversed(rows):
                    out_index.append(index)
                    out_cell.append(row_cell)
                    out_next.append(row_next)
                    out_extras.append(extras)
                continue
        out_index.append(index)
        out_cell.append(cell)
        out_next.append(next_cell)
        out_extras.append(extras)

    out_index.reverse()
    out_cell.reverse()
    out_next.reverse()
    out_extras.reverse()

    sogs = batch.sog
    cogs = batch.cog
    headings = batch.heading
    mmsis = batch.mmsi
    vessel_types = batch.vessel_type
    trip_ids = batch.trip_id
    origins = batch.origin
    destinations = batch.destination
    departs = batch.depart_ts
    arrives = batch.arrive_ts
    return CellBatch(
        mmsi=array("q", (mmsis[i] for i in out_index)),
        ts=array("d", (ts[i] for i in out_index)),
        sog=array("d", (sogs[i] for i in out_index)),
        cog=array("d", (cogs[i] for i in out_index)),
        heading=array("q", (headings[i] for i in out_index)),
        vessel_type=[vessel_types[i] for i in out_index],
        trip_id=[trip_ids[i] for i in out_index],
        origin=[origins[i] for i in out_index],
        destination=[destinations[i] for i in out_index],
        eto_s=array("d", (ts[i] - departs[i] for i in out_index)),
        ata_s=array("d", (arrives[i] - ts[i] for i in out_index)),
        cell=out_cell,
        next_cell=out_next,
        extras=out_extras,
    )


def aggregate_partition(batches, config: SummaryConfig):
    """Fold one partition of :class:`CellBatch` es into partial summaries.

    The batch twin of the engine's map-side combine over
    ``fan_out``/``make_update``: yields ``(key_tuple, CellSummary)``
    pairs in first-touch order — the same order, holding the same sketch
    states bit for bit, as the scalar map-side pass over the flattened
    rows.
    """
    partials: dict[tuple, CellSummary] = {}
    for batch in batches:
        _fold_batch(partials, batch, config)
    return iter(partials.items())


def _fold_batch(
    partials: dict, batch: CellBatch, config: SummaryConfig
) -> None:
    n = len(batch)
    if n == 0:
        return
    cells = batch.cell
    next_cells = batch.next_cell
    mmsis = batch.mmsi
    trip_ids = batch.trip_id
    vessel_types = batch.vessel_type
    origins = batch.origin
    destinations = batch.destination
    sogs = batch.sog
    cogs = batch.cog
    headings = batch.heading
    etos = batch.eto_s
    atas = batch.ata_s
    all_extras = batch.extras
    extra_names = config.extra_names

    # Per-row trig/bin work, computed once and shared by every grouping
    # set the row feeds.
    bin_width = config.direction_bin_deg
    num_bins = int(360.0 / bin_width)
    last_bin = num_bins - 1
    cog_cos: list[float] = []
    cog_sin: list[float] = []
    cog_bin: list[int] = []
    for cog in cogs:
        rad = radians(cog)
        cog_cos.append(cos(rad))
        cog_sin.append(sin(rad))
        index = int((cog % 360.0) / bin_width)
        cog_bin.append(index if index < last_bin else last_bin)
    head_cos: list[float] = [0.0] * n
    head_sin: list[float] = [0.0] * n
    head_bin: list[int] = [0] * n
    any_heading = False
    for i, heading in enumerate(headings):
        if heading != NULL_INT:
            any_heading = True
            rad = radians(heading)
            head_cos[i] = cos(rad)
            head_sin[i] = sin(rad)
            index = int((heading % 360.0) / bin_width)
            head_bin[i] = index if index < last_bin else last_bin

    partials_get = partials.get
    # One trip batch carries one vessel and one trip, so the run loop's
    # MMSI/trip hashes memoise to a handful of BLAKE2b calls per batch.
    memo_mmsi = memo_trip = None
    memo_mmsi_hash = memo_trip_hash = 0
    start = 0
    while start < n:
        cell = cells[start]
        next_cell = next_cells[start]
        trip_id = trip_ids[start]
        vessel_type = vessel_types[start]
        origin = origins[start]
        destination = destinations[start]
        mmsi = mmsis[start]
        stop = start + 1
        while (
            stop < n
            and cells[stop] == cell
            and next_cells[stop] == next_cell
            and mmsis[stop] == mmsi
            and trip_ids[stop] == trip_id
            and vessel_types[stop] == vessel_type
            and origins[stop] == origin
            and destinations[stop] == destination
        ):
            stop += 1
        run = stop - start

        # The BLAKE2b hashes feed every grouping set's HLL unchanged —
        # hoist them out of the per-key loop (and, for runs, out of the
        # per-row repetition: repeated HLL updates of one value are
        # idempotent, so once per run suffices).
        if mmsi != memo_mmsi:
            memo_mmsi, memo_mmsi_hash = mmsi, hash64(mmsi)
        mmsi_hash = memo_mmsi_hash
        if trip_id is None:
            trip_hash = None
        else:
            if trip_id != memo_trip:
                memo_trip, memo_trip_hash = trip_id, hash64(trip_id)
            trip_hash = memo_trip_hash

        # The scalar fan-out order (keys_for_record): CELL, CELL_TYPE,
        # then CELL_OD_TYPE when the record has full O/D semantics —
        # preserved here so partials keep the same first-touch order.
        keys = [(cell, None, None, None), (cell, vessel_type, None, None)]
        if origin is not None and destination is not None:
            keys.append((cell, vessel_type, origin, destination))

        if run == 1:
            # Single-row run (the common case at fine grid resolutions):
            # feed the row's precomputed components straight into each
            # sketch, no slices or count dicts.
            sog = sogs[start]
            eto = etos[start]
            ata = atas[start]
            ccos = cog_cos[start]
            csin = cog_sin[start]
            cbin = cog_bin[start]
            has_heading = headings[start] != NULL_INT
            if has_heading:
                hcos = head_cos[start]
                hsin = head_sin[start]
                hbin = head_bin[start]
            extras = all_extras[start] if extra_names else ()
            for key in keys:
                summary = partials_get(key)
                if summary is None:
                    summary = partials[key] = CellSummary(config)
                summary.records += 1
                summary.ships.update_hashed(mmsi_hash)
                course = summary.course
                course.sum_cos += ccos
                course.sum_sin += csin
                course.count += 1
                hist = summary.course_bins
                hist.counts[cbin] += 1
                hist.total += 1
                if has_heading:
                    heading = summary.heading
                    heading.sum_cos += hcos
                    heading.sum_sin += hsin
                    heading.count += 1
                    hist = summary.heading_bins
                    hist.counts[hbin] += 1
                    hist.total += 1
                summary.speed.update(sog)
                summary.speed_quantiles.update(sog)
                if trip_hash is not None:
                    summary.trips.update_hashed(trip_hash)
                summary.eto.update(eto)
                summary.eto_quantiles.update(eto)
                summary.ata.update(ata)
                summary.ata_quantiles.update(ata)
                if origin is not None:
                    summary.origins.update(origin)
                if destination is not None:
                    summary.destinations.update(destination)
                if next_cell != NULL_INT:
                    summary.transitions.update(next_cell)
                if extras:
                    extras_sketches = summary.extras
                    for name, value in zip(extra_names, extras):
                        if value is not None:
                            extras_sketches[name].update(value)
            start = stop
            continue

        run_cog_cos = cog_cos[start:stop]
        run_cog_sin = cog_sin[start:stop]
        run_cog_bins = _bin_counts(cog_bin, start, stop)
        run_sog = sogs[start:stop]
        run_eto = etos[start:stop]
        run_ata = atas[start:stop]
        run_head_cos: list[float] = []
        run_head_sin: list[float] = []
        run_head_bins: list[tuple[int, int]] = []
        if any_heading:
            indices = [
                i for i in range(start, stop) if headings[i] != NULL_INT
            ]
            if indices:
                run_head_cos = [head_cos[i] for i in indices]
                run_head_sin = [head_sin[i] for i in indices]
                head_counts: dict[int, int] = {}
                for i in indices:
                    b = head_bin[i]
                    head_counts[b] = head_counts.get(b, 0) + 1
                run_head_bins = list(head_counts.items())
        run_extras: list[list[float]] = []
        if extra_names:
            for slot in range(len(extra_names)):
                values = []
                for i in range(start, stop):
                    extras = all_extras[i]
                    if extras:
                        value = extras[slot]
                        if value is not None:
                            values.append(value)
                run_extras.append(values)

        for key in keys:
            summary = partials_get(key)
            if summary is None:
                summary = partials[key] = CellSummary(config)
            summary.records += run
            summary.ships.update_hashed(mmsi_hash)
            summary.course.update_components(run_cog_cos, run_cog_sin)
            summary.course_bins.add_bin_counts(run_cog_bins)
            if run_head_cos:
                summary.heading.update_components(run_head_cos, run_head_sin)
                summary.heading_bins.add_bin_counts(run_head_bins)
            summary.speed.update_many(run_sog)
            summary.speed_quantiles.update_many(run_sog)
            if trip_hash is not None:
                summary.trips.update_hashed(trip_hash)
            summary.eto.update_many(run_eto)
            summary.eto_quantiles.update_many(run_eto)
            summary.ata.update_many(run_ata)
            summary.ata_quantiles.update_many(run_ata)
            if origin is not None:
                summary.origins.update(origin, run)
            if destination is not None:
                summary.destinations.update(destination, run)
            if next_cell != NULL_INT:
                summary.transitions.update(next_cell, run)
            if extra_names:
                extras_sketches = summary.extras
                for name, values in zip(extra_names, run_extras):
                    if values:
                        extras_sketches[name].update_many(values)

        start = stop


def _bin_counts(bins: list[int], start: int, stop: int) -> list[tuple[int, int]]:
    counts: dict[int, int] = {}
    for i in range(start, stop):
        b = bins[i]
        counts[b] = counts.get(b, 0) + 1
    return list(counts.items())
