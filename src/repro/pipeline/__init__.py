"""The Patterns-of-Life pipeline: the paper's methodology (§3).

Stages, in the execution-flow order of Figure 3, each implemented as a
job over the :mod:`repro.engine` operator algebra:

1. **Cleaning & preprocessing** (§3.3.1, :mod:`repro.pipeline.cleaning`) —
   protocol range validation, per-vessel timestamp ordering,
   deduplication, the 50-knot transition-feasibility filter, static-data
   enrichment and the commercial-fleet filter.
2. **Trip semantics extraction** (§3.3.2, :mod:`repro.pipeline.trips`) —
   geofencing against the port database, trip segmentation between
   consecutive port stops, ETO/ATA annotation; unannotatable records are
   excluded.
3. **Projection to the spatial index** (§3.3.3,
   :mod:`repro.pipeline.projection`) — cell assignment at the configured
   resolution and per-trip cell-transition derivation.
4. **Feature extraction** (§3.3.4, :mod:`repro.pipeline.features`) —
   grouping-set fan-out (Table 2) and summary aggregation (Table 3) via
   ``combine_by_key`` over the :class:`~repro.inventory.summary.CellSummary`
   monoid.

:func:`repro.pipeline.run.build_inventory` chains all four and returns the
inventory plus the per-stage record funnel (Figure 2) and stage timings
(Figure 3).
"""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.records import CellRecord, CleanRecord, TripRecord
from repro.pipeline.geofence import PortIndex
from repro.pipeline.extras import ExtraFeature, wind_features
from repro.pipeline.run import PipelineResult, build_inventory
from repro.pipeline.streaming import StreamingInventoryBuilder, StreamStats

__all__ = [
    "PipelineConfig",
    "CleanRecord",
    "TripRecord",
    "CellRecord",
    "PortIndex",
    "ExtraFeature",
    "wind_features",
    "PipelineResult",
    "build_inventory",
    "StreamingInventoryBuilder",
    "StreamStats",
]
