"""Incremental inventory building from a live AIS stream.

The batch pipeline (§3) processes an archive; the paper's use cases (§4)
talk about *streaming applications* that query the inventory per live
message.  This module closes the loop: a
:class:`StreamingInventoryBuilder` consumes position reports one at a
time, replicating the batch semantics incrementally —

- per-record protocol validation,
- per-vessel monotone-time enforcement and deduplication (a stream cannot
  re-sort the past, so late/duplicate arrivals are dropped),
- the 50-knot transition-feasibility filter against the last accepted fix,
- stop-speed geofencing and trip segmentation between port stops,
- cell projection, transition derivation and summary aggregation the
  moment a trip completes.

On clean, time-ordered input the streaming builder produces exactly the
batch pipeline's inventory (asserted by the equivalence tests); on dirty
input it degrades gracefully where a stream must (reordering beyond the
horizon is unrecoverable online).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ais.messages import PositionReport
from repro.inventory.keys import GroupKey
from repro.inventory.store import Inventory
from repro.pipeline import cleaning
from repro.pipeline.config import PipelineConfig
from repro.pipeline.features import fan_out, make_create, make_update
from repro.pipeline.geofence import PortIndex
from repro.pipeline.projection import project_trip
from repro.pipeline.records import CleanRecord, TripRecord
from repro.pipeline.trips import _annotate_gap  # shared gap annotation
from repro.world.fleet import Vessel
from repro.world.ports import Port


@dataclass
class _VesselState:
    """Per-vessel stream state."""

    records: list[CleanRecord] = field(default_factory=list)
    last_ts: float = float("-inf")
    last_signature: tuple | None = None
    last_accepted: CleanRecord | None = None
    last_port: str | None = None
    trip_counter: int = 0


@dataclass
class StreamStats:
    """Why records were dropped, and what was produced."""

    ingested: int = 0
    invalid: int = 0
    stale_or_duplicate: int = 0
    infeasible: int = 0
    non_commercial: int = 0
    trips_completed: int = 0


class StreamingInventoryBuilder:
    """Builds the global inventory from a live report stream."""

    def __init__(
        self,
        fleet: list[Vessel],
        ports: tuple[Port, ...],
        config: PipelineConfig | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        summary_config = self.config.effective_summary
        self.inventory = Inventory(self.config.resolution, summary_config)
        self.stats = StreamStats()
        self._static = {vessel.mmsi: vessel for vessel in fleet}
        self._port_index = PortIndex(
            ports, index_resolution=self.config.geofence_index_resolution
        )
        self._states: dict[int, _VesselState] = {}
        self._create = make_create(summary_config)
        self._update = make_update(summary_config)

    def ingest(self, report: PositionReport) -> list[TripRecord]:
        """Feed one report; returns the records of any trip it completed."""
        self.stats.ingested += 1
        if not cleaning.validate(report):
            self.stats.invalid += 1
            return []
        record = self._enrich(report)
        if record is None:
            return []
        state = self._states.setdefault(report.mmsi, _VesselState())
        if not self._accept(state, report, record):
            return []
        return self._advance_trip_machine(state, record)

    def ingest_many(self, reports) -> int:
        """Feed a whole iterable; returns the number of trips completed."""
        completed = 0
        for report in reports:
            if self.ingest(report):
                completed += 1
        return completed

    # -- internals ----------------------------------------------------------

    def _enrich(self, report: PositionReport) -> CleanRecord | None:
        enriched = cleaning.enrich_track(
            report.mmsi,
            [report],
            self._static,
            min_grt=self.config.min_grt,
            commercial_only=self.config.commercial_only,
        )
        if enriched is None:
            self.stats.non_commercial += 1
            return None
        return enriched[0]

    def _accept(
        self, state: _VesselState, report: PositionReport, record: CleanRecord
    ) -> bool:
        signature = (report.epoch_ts, report.lat, report.lon)
        if report.epoch_ts < state.last_ts or signature == state.last_signature:
            self.stats.stale_or_duplicate += 1
            return False
        if state.last_accepted is not None:
            from repro.geo.distance import speed_between_knots

            implied = speed_between_knots(
                state.last_accepted.lat,
                state.last_accepted.lon,
                state.last_accepted.ts,
                record.lat,
                record.lon,
                record.ts,
            )
            if implied > self.config.max_transition_speed_kn:
                self.stats.infeasible += 1
                return False
        state.last_ts = report.epoch_ts
        state.last_signature = signature
        state.last_accepted = record
        return True

    def _advance_trip_machine(
        self, state: _VesselState, record: CleanRecord
    ) -> list[TripRecord]:
        port = None
        if record.sog < self.config.stop_speed_kn:
            port = self._port_index.port_at(record.lat, record.lon)
        if port is None:
            # Under way: part of a candidate trip only once an origin stop
            # is known (records before the first stop are unannotatable).
            if state.last_port is not None:
                state.records.append(record)
            return []
        completed: list[TripRecord] = []
        if state.records and state.last_port is not None:
            if port.port_id != state.last_port:
                completed = _annotate_gap(
                    state.records,
                    0,
                    len(state.records),
                    state.last_port,
                    port.port_id,
                    state.trip_counter,
                )
                state.trip_counter += 1
                if completed:
                    self._fold_trip(completed)
                    self.stats.trips_completed += 1
        state.records = []
        state.last_port = port.port_id
        return completed

    def _fold_trip(self, trip: list[TripRecord]) -> None:
        cell_records = project_trip(
            trip,
            self.config.resolution,
            densify=self.config.densify_transitions,
            extra_features=self.config.extra_features,
        )
        staged: dict[tuple, object] = {}
        for cell_record in cell_records:
            for key_tuple, value in fan_out(cell_record):
                if key_tuple in staged:
                    staged[key_tuple] = self._update(staged[key_tuple], value)
                else:
                    staged[key_tuple] = self._create(value)
        for key_tuple, summary in staged.items():
            self.inventory.put(GroupKey.from_tuple(key_tuple), summary)
