"""End-to-end pipeline orchestration.

:func:`build_inventory` wires the four stages into one engine job graph
and materializes the global inventory, recording the per-stage record
funnel (what Figure 2 depicts on the English Channel subset) and, when the
engine collects metrics, the stage timings behind Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ais.messages import PositionReport
from repro.engine import Engine
from repro.inventory.keys import GroupKey
from repro.inventory.store import Inventory
from repro.pipeline import cleaning
from repro.pipeline.config import PipelineConfig
from repro.pipeline.features import fan_out, make_create, make_update, merge_summaries
from repro.pipeline.geofence import PortIndex
from repro.pipeline.projection import project_trip
from repro.pipeline.trips import annotate_trips
from repro.world.fleet import Vessel
from repro.world.ports import Port


@dataclass
class PipelineResult:
    """The inventory plus everything needed to reproduce Figures 2 and 3."""

    inventory: Inventory
    funnel: dict[str, int] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def funnel_rows(self) -> list[tuple[str, int]]:
        """(stage, records) rows in pipeline order."""
        return list(self.funnel.items())


def build_inventory(
    positions: list[PositionReport],
    fleet: list[Vessel],
    ports: tuple[Port, ...],
    config: PipelineConfig | None = None,
    engine: Engine | None = None,
) -> PipelineResult:
    """Run the full methodology over a positional-report archive.

    :param positions: raw (dirty) archive, any order.
    :param fleet: static-report inventory to enrich from.
    :param ports: the external port database for geofencing.
    :param engine: an optional pre-configured engine (scheduler,
        partitions, spill, metrics); a default serial engine otherwise.
    """
    config = config or PipelineConfig()
    own_engine = engine is None
    engine = engine or Engine()
    static_by_mmsi = {vessel.mmsi: vessel for vessel in fleet}
    port_index = PortIndex(
        ports, index_resolution=config.geofence_index_resolution
    )
    funnel: dict[str, int] = {"raw": len(positions)}

    try:
        raw = engine.parallelize(positions)
        valid = raw.filter(cleaning.validate).persist()
        funnel["valid_fields"] = valid.count()

        tracks = (
            valid.map(cleaning.key_by_mmsi)
            .group_by_key()
            .map_values(cleaning.sort_and_dedupe)
            .map_values(
                lambda reports: cleaning.feasibility_filter(
                    reports, config.max_transition_speed_kn
                )
            )
            .persist()
        )
        funnel["feasible"] = sum(
            len(reports) for _, reports in tracks.collect()
        )

        enriched = (
            tracks.map(
                lambda kv: (
                    kv[0],
                    cleaning.enrich_track(
                        kv[0],
                        kv[1],
                        static_by_mmsi,
                        min_grt=config.min_grt,
                        commercial_only=config.commercial_only,
                    ),
                )
            )
            .filter(lambda kv: kv[1] is not None)
            .persist()
        )
        funnel["commercial"] = sum(
            len(records) for _, records in enriched.collect()
        )

        trip_records = (
            enriched.map_values(
                lambda records: annotate_trips(
                    records, port_index, stop_speed_kn=config.stop_speed_kn
                )
            )
            .flat_map_values(
                lambda records: _split_by_trip(records)
            )
            .persist()
        )
        funnel["with_trip_semantics"] = sum(
            len(trip) for _, trip in trip_records.collect()
        )

        cell_records = trip_records.map_values(
            lambda trip: project_trip(
                trip,
                config.resolution,
                densify=config.densify_transitions,
                extra_features=config.extra_features,
            )
        ).flat_map(lambda kv: kv[1])

        summary_config = config.effective_summary
        grouped = cell_records.flat_map(fan_out).combine_by_key(
            create=make_create(summary_config),
            merge_value=make_update(summary_config),
            merge_combiners=merge_summaries,
            label="aggregate_summaries",
        )

        inventory = Inventory(config.resolution, summary_config)
        for key_tuple, summary in grouped.collect():
            inventory.put(GroupKey.from_tuple(key_tuple), summary)
        funnel["inventory_groups"] = len(inventory)
        funnel["inventory_cells"] = len(inventory.cells())

        stage_seconds = (
            dict(engine.metrics.by_label()) if engine.metrics is not None else {}
        )
        return PipelineResult(
            inventory=inventory, funnel=funnel, stage_seconds=stage_seconds
        )
    finally:
        if own_engine:
            engine.close()


def _split_by_trip(records):
    """Group a vessel's trip records into per-trip lists (records arrive
    time-ordered, trips are contiguous runs of one trip id)."""
    trips: list[list] = []
    current_id: str | None = None
    for record in records:
        if record.trip_id != current_id:
            trips.append([])
            current_id = record.trip_id
        trips[-1].append(record)
    return trips
