"""End-to-end pipeline orchestration.

:func:`build_inventory` wires the four stages into one engine job graph
and materializes the global inventory, recording the per-stage record
funnel (what Figure 2 depicts on the English Channel subset) and, when the
engine collects metrics, the stage timings behind Figure 3.

Two output modes:

- **in-memory** (default): the result carries a fully materialized
  :class:`~repro.inventory.store.Inventory` — right for notebooks, tests
  and small archives;
- **on-disk** (``output=path``): the archive is split into ingestion
  windows, each window's inventory is persisted as an SSTable, and the
  window tables are compacted with
  :func:`~repro.inventory.compaction.merge_tables` into one servable
  table (the LSM pattern §5 alludes to).  The result carries the output
  path instead of a store; serve it with
  :class:`~repro.inventory.backend.SSTableInventory`.

On-disk builds are **resumable**: a build manifest
(:mod:`repro.pipeline.manifest`) is written atomically after every
completed window, and staging tables are kept when a build dies.
Re-running with ``resume=True`` verifies each surviving window table
against its recorded checksum, reuses the verified ones (funnel counts
and cell sets included) and rebuilds only what is missing or damaged —
producing output byte-identical to an uninterrupted build.  On success
the staging tables and the manifest are removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.ais.messages import PositionReport
from repro.engine import Engine
from repro.engine.memory import gc_paused
from repro.inventory.compaction import merge_tables
from repro.inventory.keys import GroupKey
from repro.inventory.sstable import (
    file_checksum,
    route_index_path,
    write_inventory,
)
from repro.inventory.store import Inventory
from repro.obs import registry
from repro.obs import trace as obs
from repro.pipeline import cleaning, vectorized
from repro.pipeline import manifest as build_manifests
from repro.pipeline.config import PipelineConfig
from repro.pipeline.features import fan_out, make_create, make_update, merge_summaries
from repro.pipeline.geofence import PortIndex
from repro.pipeline.projection import project_trip
from repro.pipeline.trips import annotate_trips
from repro.world.fleet import Vessel
from repro.world.ports import Port

if TYPE_CHECKING:  # imported lazily at runtime (serving is optional)
    from repro.server.sharding import Placement

# The paper's Figure-3 execution funnel, one span per stage.  ``repro
# trace`` over a traced build renders exactly this stage set; the CLI
# test pins it.
SPAN_BUILD = registry.register_span(
    "pipeline.build", "one whole build_inventory run (root of a build trace)"
)
SPAN_WINDOW = registry.register_span(
    "pipeline.window",
    "one ingestion window of an on-disk build (attrs: window index, reused)",
)
SPAN_CLEAN = registry.register_span(
    "pipeline.clean",
    "cleaning: field validation, per-vessel dedupe/sort, feasibility filter",
)
SPAN_ENRICH = registry.register_span(
    "pipeline.enrich",
    "enrichment: static-report join, GRT/commercial filters",
)
SPAN_TRIPS = registry.register_span(
    "pipeline.trips",
    "trip extraction: geofenced port calls, trip identity, O/D annotation",
)
SPAN_PROJECT = registry.register_span(
    "pipeline.project",
    "grid projection: trips densified onto hexagonal cells "
    "(forced eagerly only while tracing; lazy inside aggregation otherwise)",
)
SPAN_AGGREGATE = registry.register_span(
    "pipeline.aggregate",
    "feature extraction: grouping-set fan-out and combine_by_key reduce",
)
SPAN_COMPACT = registry.register_span(
    "pipeline.compact", "k-way merge of window tables into the output table"
)
SPAN_SHARD = registry.register_span(
    "pipeline.shard",
    "sharded builds only: split of the compacted table into per-shard "
    "tables + placement manifest (attrs: shards)",
)


@dataclass
class PipelineResult:
    """The inventory plus everything needed to reproduce Figures 2 and 3.

    ``inventory`` is ``None`` for on-disk builds — the groups live in the
    table at ``output`` (open it with
    :class:`~repro.inventory.backend.SSTableInventory`).
    """

    inventory: Inventory | None
    funnel: dict[str, int] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Compacted table path for on-disk builds, ``None`` otherwise.
    output: Path | None = None
    #: Entries in the compacted table for on-disk builds.
    entries: int = 0
    #: The published placement manifest for sharded builds
    #: (``shards > 1``): which shard table serves which slice of the
    #: key-space.  ``None`` for single-table builds.
    placement: "Placement | None" = None

    def shard_tables(self) -> list[Path]:
        """Per-shard table paths of a sharded build (empty otherwise)."""
        if self.placement is None or self.output is None:
            return []
        return [
            self.output.with_name(spec.table) for spec in self.placement.shards
        ]

    def funnel_rows(self) -> list[tuple[str, int]]:
        """(stage, records) rows in pipeline order."""
        return list(self.funnel.items())


def build_inventory(
    positions: list[PositionReport],
    fleet: list[Vessel],
    ports: tuple[Port, ...],
    config: PipelineConfig | None = None,
    engine: Engine | None = None,
    output: str | Path | None = None,
    windows: int = 1,
    resume: bool = False,
    shards: int = 1,
) -> PipelineResult:
    """Run the full methodology over a positional-report archive.

    :param positions: raw (dirty) archive, any order.
    :param fleet: static-report inventory to enrich from.
    :param ports: the external port database for geofencing.
    :param engine: an optional pre-configured engine (scheduler,
        partitions, spill, metrics); a default serial engine otherwise.
    :param output: when given, persist the inventory as a compacted
        SSTable at this path instead of returning an in-memory store.
    :param windows: number of equal-duration ingestion windows for the
        on-disk build (each window becomes one table before compaction).
        Trips straddling a window boundary lose their cross-window
        context, exactly as in a real windowed ingestion.
    :param resume: continue an interrupted on-disk build: windows whose
        staging tables survive and verify against the build manifest are
        reused instead of re-run.  A manifest from different inputs (or
        a damaged one) is discarded and the build starts clean, so
        ``resume=True`` is always safe to pass.
    :param shards: with ``shards > 1`` (on-disk builds only), also split
        the compacted table into per-shard SSTables by consistent
        hashing on cells and publish the placement manifest next to the
        output — the inputs a sharded serving tier (``repro route``)
        deploys from.  ``shards=1`` (default) stays the single-table
        reference path and touches none of the sharding machinery.
    """
    config = config or PipelineConfig()
    if resume and output is None:
        raise ValueError("resume=True requires an output path")
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if shards > 1 and output is None:
        raise ValueError("sharded builds require an output path")
    own_engine = engine is None
    engine = engine or Engine()
    try:
        with obs.span(
            SPAN_BUILD,
            raw=len(positions),
            windows=windows,
            on_disk=output is not None,
        ):
            if output is None:
                if windows != 1:
                    raise ValueError("windowed builds require an output path")
                inventory, funnel = _build_window(
                    positions, fleet, ports, config, engine
                )
                funnel["inventory_groups"] = len(inventory)
                funnel["inventory_cells"] = len(inventory.cells())
                return PipelineResult(
                    inventory=inventory,
                    funnel=funnel,
                    stage_seconds=_stage_seconds(engine),
                )
            result = _build_to_table(
                positions, fleet, ports, config, engine, Path(output), windows,
                resume=resume,
            )
            if shards > 1:
                # Lazy import: the pipeline does not depend on the
                # serving tier unless a sharded build asks for it.
                from repro.server.sharding import publish_split

                with obs.span(SPAN_SHARD, shards=shards):
                    result.placement = publish_split(
                        Path(output), config.resolution, shards=shards
                    )
            return result
    finally:
        if own_engine:
            engine.close()


def _build_to_table(
    positions: list[PositionReport],
    fleet: list[Vessel],
    ports: tuple[Port, ...],
    config: PipelineConfig,
    engine: Engine,
    output: Path,
    windows: int,
    resume: bool = False,
) -> PipelineResult:
    """The on-disk mode: window → per-window table → compact.

    A manifest checkpoints every completed window; on failure the
    staging tables and the manifest are *kept* so a later ``resume=True``
    run picks up where this one died.  Only a successful compaction
    cleans them up.
    """
    if windows < 1:
        raise ValueError(f"need at least one window, got {windows}")
    manifest_file = build_manifests.manifest_path(output)
    fingerprint = build_manifests.build_fingerprint(positions, config, windows)
    manifest = None
    if resume:
        manifest = build_manifests.load_manifest(manifest_file)
        if manifest is not None and manifest.fingerprint != fingerprint:
            manifest = None  # different archive/config/window split: rebuild
    if manifest is None:
        manifest = build_manifests.BuildManifest(fingerprint=fingerprint)

    window_paths: list[Path] = []
    funnel: dict[str, int] = {}
    cells: set[int] = set()
    completed = False
    try:
        for index, position_window in enumerate(_time_windows(positions, windows)):
            path = output.with_name(f"{output.name}.w{index}")
            with obs.span(SPAN_WINDOW, index=index) as window_span:
                record = manifest.verified_window(index, path)
                window_span.set("reused", record is not None)
                if record is None:
                    inventory, window_funnel = _build_window(
                        position_window, fleet, ports, config, engine
                    )
                    write_inventory(inventory, path)
                    record = build_manifests.WindowRecord(
                        index=index,
                        table_name=path.name,
                        entries=len(inventory),
                        table_crc=file_checksum(path),
                        funnel=dict(window_funnel),
                        cells=sorted(inventory.cells()),
                    )
                    manifest.record_window(record)
                    build_manifests.save_manifest(manifest_file, manifest)
            for stage, count in record.funnel.items():
                funnel[stage] = funnel.get(stage, 0) + count
            cells.update(record.cells)
            window_paths.append(path)
        with obs.span(SPAN_COMPACT, tables=len(window_paths)):
            entries = merge_tables(window_paths, output)
        completed = True
    finally:
        if completed:
            for path in window_paths:
                path.unlink(missing_ok=True)
                route_index_path(path).unlink(missing_ok=True)
            build_manifests.delete_manifest(manifest_file)
    funnel["inventory_groups"] = entries
    funnel["inventory_cells"] = len(cells)
    return PipelineResult(
        inventory=None,
        funnel=funnel,
        stage_seconds=_stage_seconds(engine),
        output=output,
        entries=entries,
    )


def _build_window(
    positions: list[PositionReport],
    fleet: list[Vessel],
    ports: tuple[Port, ...],
    config: PipelineConfig,
    engine: Engine,
) -> tuple[Inventory, dict[str, int]]:
    """One pipeline pass over one window; returns (inventory, funnel).

    Dispatches between the columnar (default) and scalar funnels — same
    stages, same spans, same funnel keys, bit-identical inventories
    (the equivalence suite pins it); only the record representation
    between stages differs.
    """
    build = _build_window_batched if config.vectorized else _build_window_scalar
    return build(positions, fleet, ports, config, engine)


def _clean_stage(
    positions: list[PositionReport],
    config: PipelineConfig,
    engine: Engine,
    funnel: dict[str, int],
):
    """§3.3.1 up to per-vessel feasible tracks (shared by both funnels)."""
    with obs.span(SPAN_CLEAN, rows_in=len(positions)) as clean_span:
        raw = engine.parallelize(positions)
        valid = raw.filter(cleaning.validate).persist()
        funnel["valid_fields"] = valid.count()

        tracks = (
            valid.map(cleaning.key_by_mmsi)
            .group_by_key()
            .map_values(cleaning.sort_and_dedupe)
            .map_values(
                lambda reports: cleaning.feasibility_filter(
                    reports, config.max_transition_speed_kn
                )
            )
            .persist()
        )
        funnel["feasible"] = sum(
            len(reports) for _, reports in tracks.collect()
        )
        clean_span.set("rows_out", funnel["feasible"])
    return tracks


def _build_window_scalar(
    positions: list[PositionReport],
    fleet: list[Vessel],
    ports: tuple[Port, ...],
    config: PipelineConfig,
    engine: Engine,
) -> tuple[Inventory, dict[str, int]]:
    """The scalar reference funnel: one frozen record per report."""
    static_by_mmsi = {vessel.mmsi: vessel for vessel in fleet}
    port_index = PortIndex(
        ports, index_resolution=config.geofence_index_resolution
    )
    funnel: dict[str, int] = {"raw": len(positions)}
    tracks = _clean_stage(positions, config, engine, funnel)

    with obs.span(SPAN_ENRICH, rows_in=funnel["feasible"]) as enrich_span:
        enriched = (
            tracks.map(
                lambda kv: (
                    kv[0],
                    cleaning.enrich_track(
                        kv[0],
                        kv[1],
                        static_by_mmsi,
                        min_grt=config.min_grt,
                        commercial_only=config.commercial_only,
                    ),
                )
            )
            .filter(lambda kv: kv[1] is not None)
            .persist()
        )
        funnel["commercial"] = sum(
            len(records) for _, records in enriched.collect()
        )
        enrich_span.set("rows_out", funnel["commercial"])

    with obs.span(SPAN_TRIPS, rows_in=funnel["commercial"]) as trips_span:
        trip_records = (
            enriched.map_values(
                lambda records: annotate_trips(
                    records, port_index, stop_speed_kn=config.stop_speed_kn
                )
            )
            .flat_map_values(
                lambda records: _split_by_trip(records)
            )
            .persist()
        )
        funnel["with_trip_semantics"] = sum(
            len(trip) for _, trip in trip_records.collect()
        )
        trips_span.set("rows_out", funnel["with_trip_semantics"])

    with obs.span(SPAN_PROJECT):
        cell_records = trip_records.map_values(
            lambda trip: project_trip(
                trip,
                config.resolution,
                densify=config.densify_transitions,
                extra_features=config.extra_features,
            )
        ).flat_map(lambda kv: kv[1])
        if obs.enabled():
            # Projection is lazy — it would otherwise run (and be billed)
            # inside the aggregation span.  Force it here while tracing so
            # the Fig. 3 profile attributes its cost to the right stage;
            # untraced builds keep the fused lazy plan.
            cell_records = cell_records.persist()
            cell_records.count()

    with obs.span(SPAN_AGGREGATE) as agg_span:
        summary_config = config.effective_summary
        grouped = cell_records.flat_map(fan_out).combine_by_key(
            create=make_create(summary_config),
            merge_value=make_update(summary_config),
            merge_combiners=merge_summaries,
            label="aggregate_summaries",
        )

        inventory = Inventory(config.resolution, summary_config)
        for key_tuple, summary in grouped.collect():
            inventory.put(GroupKey.from_tuple(key_tuple), summary)
        agg_span.set("groups", len(inventory))
    return inventory, funnel


def _build_window_batched(
    positions: list[PositionReport],
    fleet: list[Vessel],
    ports: tuple[Port, ...],
    config: PipelineConfig,
    engine: Engine,
) -> tuple[Inventory, dict[str, int]]:
    """The columnar funnel: record batches between stages.

    Stage for stage the same plan as the scalar funnel over the same
    persisted ``tracks`` — enrichment emits one :class:`CleanBatch` per
    vessel, trips one :class:`TripBatch` per trip, projection runs
    batch-at-a-time on the engine's ``map_batches`` path, and
    aggregation folds whole partitions of :class:`CellBatch` es into
    partial summaries (:func:`~repro.pipeline.vectorized
    .aggregate_partition`) before the usual combine shuffle.
    """
    static_by_mmsi = {vessel.mmsi: vessel for vessel in fleet}
    port_index = PortIndex(
        ports, index_resolution=config.geofence_index_resolution
    )
    funnel: dict[str, int] = {"raw": len(positions)}
    tracks = _clean_stage(positions, config, engine, funnel)

    with obs.span(SPAN_ENRICH, rows_in=funnel["feasible"]) as enrich_span:
        enriched = (
            tracks.map(
                lambda kv: vectorized.enrich_track_batch(
                    kv[0],
                    kv[1],
                    static_by_mmsi,
                    min_grt=config.min_grt,
                    commercial_only=config.commercial_only,
                )
            )
            .filter(lambda batch: batch is not None)
            .persist()
        )
        funnel["commercial"] = sum(len(batch) for batch in enriched.collect())
        enrich_span.set("rows_out", funnel["commercial"])

    with obs.span(SPAN_TRIPS, rows_in=funnel["commercial"]) as trips_span:
        trip_batches = enriched.flat_map(
            lambda batch: vectorized.annotate_trips_batch(
                batch, port_index, stop_speed_kn=config.stop_speed_kn
            )
        ).persist()
        funnel["with_trip_semantics"] = sum(
            len(trip) for trip in trip_batches.collect()
        )
        trips_span.set("rows_out", funnel["with_trip_semantics"])

    with obs.span(SPAN_PROJECT):
        cell_batches = trip_batches.map_batches(
            lambda trip: vectorized.project_batch(
                trip,
                config.resolution,
                densify=config.densify_transitions,
                extra_features=config.extra_features,
            ),
            label="project_batches",
        )
        if obs.enabled():
            # Same eager-while-tracing rule as the scalar funnel: keep
            # the Fig. 3 attribution honest.
            cell_batches = cell_batches.persist()
            cell_batches.count()

    with obs.span(SPAN_AGGREGATE) as agg_span:
        summary_config = config.effective_summary
        partials = cell_batches.map_partitions(
            lambda _index, batches: vectorized.aggregate_partition(
                batches, summary_config
            ),
            label="aggregate_kernel",
        )
        # Partition-local keys are already unique, so map-side combine
        # is a pass-through; the shuffle + reduce-side merge is shared
        # with the scalar plan (same partitioner, same merge order).
        grouped = partials.combine_by_key(
            create=lambda summary: summary,
            merge_value=merge_summaries,
            merge_combiners=merge_summaries,
            label="aggregate_summaries",
        )

        inventory = Inventory(config.resolution, summary_config)
        # collect() drives the whole lazy chain (kernel, shuffle,
        # reduce), which allocates one summary per live group; pausing
        # the cyclic collector for the stage avoids gen-2 re-scans of
        # that growing, fully-reachable population (~4x on summary
        # creation).  The scalar path stays unwrapped: it is the
        # reference implementation, not the fast path.
        with gc_paused():
            for key_tuple, summary in grouped.collect():
                inventory.put(GroupKey.from_tuple(key_tuple), summary)
        agg_span.set("groups", len(inventory))
    return inventory, funnel


def _time_windows(
    positions: list[PositionReport], windows: int
) -> list[list[PositionReport]]:
    """Split an archive into equal-duration ingestion windows by report
    timestamp (window count is preserved even when some come out empty)."""
    if windows == 1 or not positions:
        return [positions]
    start = min(report.epoch_ts for report in positions)
    end = max(report.epoch_ts for report in positions)
    span = (end - start) or 1.0
    sliced: list[list[PositionReport]] = [[] for _ in range(windows)]
    for report in positions:
        index = min(int((report.epoch_ts - start) / span * windows), windows - 1)
        sliced[index].append(report)
    return sliced


def _stage_seconds(engine: Engine) -> dict[str, float]:
    return dict(engine.metrics.by_label()) if engine.metrics is not None else {}


def _split_by_trip(records):
    """Group a vessel's trip records into per-trip lists (records arrive
    time-ordered, trips are contiguous runs of one trip id)."""
    trips: list[list] = []
    current_id: str | None = None
    for record in records:
        if record.trip_id != current_id:
            trips.append([])
            current_id = record.trip_id
        trips[-1].append(record)
    return trips
