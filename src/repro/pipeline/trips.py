"""Trip semantics extraction (§3.3.2).

"We consider all messages of a specific vessel that have been captured
in-between of consecutive two port stops to be part of the same trip. …
The first and the last records outside port-geometries are considered as
the origin and destination timestamp respectively.  Any message that
cannot be annotated with trip information is excluded."

Given one vessel's clean, time-ordered records, :func:`annotate_trips`
finds the port-*stop* runs, forms a trip from every gap between two
*different* consecutive stops, and annotates the gap's records with the
trip id, endpoints and the derived ETO/ATA features.

A record counts as part of a port stop only when it is inside a port
geofence **and** effectively stationary (below ``stop_speed_kn``).  Mere
presence is not enough: several major geofences sit on through-lanes
(Port Said at the canal mouth, Tanger Med on the Gibraltar approach), and
a vessel steaming through one at transit speed has not called at the port
— without the speed criterion, half of all Asia–Europe trips would appear
to "end" at Port Said.
"""

from __future__ import annotations

from repro.pipeline.geofence import PortIndex
from repro.pipeline.records import CleanRecord, TripRecord

#: Below this speed-over-ground, an in-geofence record is a port stop.
DEFAULT_STOP_SPEED_KN = 2.0


def annotate_trips(
    records: list[CleanRecord],
    port_index: PortIndex,
    stop_speed_kn: float = DEFAULT_STOP_SPEED_KN,
) -> list[TripRecord]:
    """Trip-annotated records of one vessel (unannotatable ones excluded).

    Records that are part of port stops and records in window-edge gaps
    (whose origin or destination stop is unknown) are dropped, exactly as
    the paper excludes them.
    """
    if not records:
        return []
    # Label every record with the port it is *stopped* at (None = under
    # way, whether in open sea or transiting a geofence).
    port_labels = [
        port_index.port_at(record.lat, record.lon)
        if record.sog < stop_speed_kn
        else None
        for record in records
    ]
    trips: list[TripRecord] = []
    for trip_counter, (start, end, origin, destination) in enumerate(
        trip_spans(port_labels)
    ):
        trips.extend(
            _annotate_gap(records, start, end, origin, destination, trip_counter)
        )
    return trips


def trip_spans(port_labels: list) -> list[tuple[int, int, str, str]]:
    """The trip-boundary state machine, shared by the scalar and batch
    annotators.

    Given per-record port-stop labels (a port geometry or ``None``),
    returns ``(start, end, origin_port_id, destination_port_id)`` index
    spans — one per trip, in time order.  Gaps before the first known
    stop and after the last one are excluded (origin or destination
    unknown), exactly as the paper drops unannotatable records.
    """
    spans: list[tuple[int, int, str, str]] = []
    gap_start: int | None = None
    last_port: str | None = None
    for index, port in enumerate(port_labels):
        if port is None:
            if gap_start is None:
                gap_start = index
            continue
        # We are inside a port; close any open gap.
        if gap_start is not None and last_port is not None:
            if port.port_id != last_port:
                spans.append((gap_start, index, last_port, port.port_id))
            gap_start = None
        elif gap_start is not None:
            # Gap started before any known port: origin unknown; exclude.
            gap_start = None
        last_port = port.port_id
    # A trailing gap has no destination stop: excluded.
    return spans


def _annotate_gap(
    records: list[CleanRecord],
    start: int,
    end: int,
    origin: str,
    destination: str,
    trip_counter: int,
) -> list[TripRecord]:
    gap = records[start:end]
    if not gap:
        return []
    trip_id = f"{gap[0].mmsi}-{trip_counter:04d}"
    depart_ts = gap[0].ts
    arrive_ts = gap[-1].ts
    return [
        TripRecord(
            mmsi=record.mmsi,
            ts=record.ts,
            lat=record.lat,
            lon=record.lon,
            sog=record.sog,
            cog=record.cog,
            heading=record.heading,
            status=record.status,
            vessel_type=record.vessel_type,
            grt=record.grt,
            trip_id=trip_id,
            origin=origin,
            destination=destination,
            depart_ts=depart_ts,
            arrive_ts=arrive_ts,
        )
        for record in gap
    ]
