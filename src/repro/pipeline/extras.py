"""Extra (non-AIS) features fused into cell summaries (§5 future work).

"In future work, we intend to extend the proposed methodology to include
features of non-AIS data … combine AIS with weather and commodity data."

An :class:`ExtraFeature` is a named function of (lat, lon, ts) sampled at
every trip record during projection; its values aggregate into a
mergeable :class:`~repro.sketches.moments.MomentsSketch` per group, right
alongside the AIS-native features of Table 3.  The built-in constructor
:func:`wind_features` fuses the synthetic wind climatology; any other
environmental field (waves, currents, commodity indices keyed by region)
plugs in the same way.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.world.weather import WindField


@dataclass(frozen=True)
class ExtraFeature:
    """A named scalar field sampled at (lat, lon, ts).

    ``fn`` may return ``None`` for "no data here", which simply skips the
    record for this feature's statistics.
    """

    name: str
    fn: Callable[[float, float, float], float | None]

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"invalid extra-feature name {self.name!r}")


def wind_features(seed: int = 0) -> tuple[ExtraFeature, ...]:
    """Wind speed and the blow-direction relative meridional component.

    Two fused features per record: the wind speed (m/s) and the signed
    north-south component (m/s, positive = from the north), enough to ask
    per-cell questions like "how windy is this water" and "which way does
    it usually blow" from the inventory.
    """
    field = WindField(seed=seed)

    def speed(lat: float, lon: float, ts: float) -> float:
        return field.wind_at(lat, lon, ts).speed_ms

    def northerly(lat: float, lon: float, ts: float) -> float:
        import math

        sample = field.wind_at(lat, lon, ts)
        return sample.speed_ms * math.cos(math.radians(sample.direction_deg))

    return (
        ExtraFeature("wind_speed_ms", speed),
        ExtraFeature("wind_northerly_ms", northerly),
    )
