"""The build manifest: what makes a killed windowed build resumable.

A windowed on-disk build (:func:`repro.pipeline.run.build_inventory`
with ``output=``) persists one SSTable per ingestion window before
compacting them.  Each window is expensive — a full pipeline pass — so
a build killed after window *k* should not redo windows ``0..k``.

The manifest (``<output>.manifest``, JSON) records, per completed
window: its staging-table checksum (whole file, so resume trusts bytes
not timestamps), its entry count, its funnel counts and its cell set —
everything needed to *reuse* the window without re-running it and still
produce a byte-identical final table and an identical funnel.

A **fingerprint** of the inputs (archive digest, pipeline config,
window count, format version) guards against resuming across a changed
world: a stale manifest is silently discarded and the build starts
clean.  The manifest itself is written atomically after every window
(:func:`repro.inventory.fsio.atomic_write_bytes`) and deleted on
success, so its very existence means "an interrupted build left
reusable work here".
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.inventory import fsio
from repro.inventory.sstable import FORMAT_VERSION, file_checksum

MANIFEST_SUFFIX = ".manifest"
_MANIFEST_FORMAT = 1


def manifest_path(output: str | Path) -> Path:
    """Where the manifest of a windowed build to ``output`` lives."""
    output = Path(output)
    return output.with_name(output.name + MANIFEST_SUFFIX)


def archive_digest(positions) -> dict:
    """A cheap, order-sensitive digest of a positional-report archive
    (count + CRC over (mmsi, timestamp) pairs): enough to notice the
    archive a resume was asked to continue is not the one the manifest
    was written for."""
    crc = 0
    for report in positions:
        crc = zlib.crc32(
            struct.pack(">qd", report.mmsi, report.epoch_ts), crc
        )
    return {"count": len(positions), "crc": crc & 0xFFFFFFFF}


def build_fingerprint(positions, config, windows: int) -> dict:
    """The identity of one build: same fingerprint ⇒ same bytes out."""
    return {
        "archive": archive_digest(positions),
        "config": repr(config),
        "windows": windows,
        "table_format": FORMAT_VERSION,
        "manifest_format": _MANIFEST_FORMAT,
    }


@dataclass
class WindowRecord:
    """One completed window's reusable state."""

    index: int
    table_name: str  # staging table filename, relative to the output dir
    entries: int
    table_crc: int  # whole-file checksum of the staging table
    funnel: dict[str, int] = field(default_factory=dict)
    cells: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "table_name": self.table_name,
            "entries": self.entries,
            "table_crc": self.table_crc,
            "funnel": self.funnel,
            "cells": self.cells,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "WindowRecord":
        return cls(
            index=int(raw["index"]),
            table_name=str(raw["table_name"]),
            entries=int(raw["entries"]),
            table_crc=int(raw["table_crc"]),
            funnel={str(k): int(v) for k, v in raw["funnel"].items()},
            cells=[int(cell) for cell in raw["cells"]],
        )


@dataclass
class BuildManifest:
    """The resumable state of one windowed build."""

    fingerprint: dict
    windows: dict[int, WindowRecord] = field(default_factory=dict)

    def record_window(self, record: WindowRecord) -> None:
        self.windows[record.index] = record

    def verified_window(
        self, index: int, table_path: Path
    ) -> WindowRecord | None:
        """The window's record iff its staging table is still on disk
        and byte-identical to what the manifest saw; ``None`` otherwise
        (the window is then rebuilt — resume never trusts blindly)."""
        record = self.windows.get(index)
        if record is None or record.table_name != table_path.name:
            return None
        try:
            if file_checksum(table_path) != record.table_crc:
                return None
        except OSError:
            return None
        return record


def save_manifest(path: str | Path, manifest: BuildManifest) -> None:
    """Atomically persist the manifest (called after every window, so a
    kill at any point loses at most the window in flight)."""
    payload = json.dumps(
        {
            "fingerprint": manifest.fingerprint,
            "windows": [
                record.to_dict()
                for _, record in sorted(manifest.windows.items())
            ],
        },
        sort_keys=True,
    ).encode("utf-8")
    fsio.atomic_write_bytes(path, payload)


def load_manifest(path: str | Path) -> BuildManifest | None:
    """Read a manifest back; ``None`` when absent or damaged (a damaged
    manifest costs a clean rebuild, never a wrong resume)."""
    try:
        raw = json.loads(Path(path).read_text())
        windows = [WindowRecord.from_dict(entry) for entry in raw["windows"]]
        return BuildManifest(
            fingerprint=raw["fingerprint"],
            windows={record.index: record for record in windows},
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def delete_manifest(path: str | Path) -> None:
    """Remove the manifest (the build committed; nothing left to resume)."""
    fsio.unlink(path)
