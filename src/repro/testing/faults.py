"""Deterministic fault injection for the storage layer.

Crash-safety claims are worthless untested, and testing them with real
power cuts does not fit in CI.  This harness replays the failure modes a
long-running AIS archive actually meets — torn writes, full disks, read
errors, bit rot, crashes between operations — *deterministically*: a
:class:`FaultPlan` names exact operation indices ("the 3rd write",
"the 1st rename"), so every red run replays byte-for-byte.

It works by patching the storage layer's filesystem seam
(:mod:`repro.inventory.fsio`): every ``open``/``write``/``read``/
``rename``/``fsync`` the SSTable writer, reader and sidecar writer
perform is counted, and when a counter hits a planned fault index the
fault fires:

- ``torn``   (write)  — a prefix of the buffer reaches the file, then
  the process "dies" (:class:`SimulatedCrash`); the cut point derives
  from the plan's seed;
- ``short``  (write)  — a prefix of the buffer reaches the file but the
  call *reports full success* and the process lives on (the
  short-append a flaky disk or interposing layer produces): whatever
  checks durability later must catch the hole.  Combined with a later
  ``crash`` it is the WAL matrix's short-append-then-die scenario;
- ``enospc`` (write)  — ``OSError(ENOSPC)``, the classic full disk;
- ``crash``  (write/rename/fsync/unlink) — :class:`SimulatedCrash`
  *before* the operation takes effect.  Crash-before-rename is the
  canonical atomicity probe; crash-before-unlink is the WAL's
  crash-between-flush-publish-and-segment-retire window — the flushed
  table is durably committed but its WAL segments were never deleted,
  and reopening must not replay (double-count) them;
- ``dropped``(fsync)  — the fsync silently does nothing (a lying disk
  or an eat-my-data layer).  The process lives on believing the data
  durable; a later ``crash`` models fsync-dropped-then-crash.  Because
  the harness cannot un-write the OS page cache, campaigns use this to
  assert recovery stays *consistent* when durability is betrayed (no
  corruption, no partial records), not to assert the lost-ack itself;
- ``eio``    (read)   — ``OSError(EIO)``, dying media;
- ``bitflip``(read)   — one bit of the returned data flips silently
  (position derives from the seed): the misread checksums must catch.

After a crash fires, the harness freezes the filesystem: subsequent
writes, renames and unlinks become no-ops (a dead process cleans
nothing up), which is exactly the on-disk state a recovery path must
cope with.

Typical campaign::

    counts = record_ops(build)          # how many ops does a build do?
    for index in range(counts["write"]):
        plan = FaultPlan.single("write", index, "torn", seed=7)
        with FaultInjector(plan) as injector:
            try:
                build()
            except (SimulatedCrash, OSError):
                pass
        assert_table_absent_or_valid()  # never a partial at a final path
"""

from __future__ import annotations

import errno
import os
import random
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.inventory import fsio

#: Operation kinds the harness counts.
OPS = ("write", "read", "rename", "fsync", "unlink")

#: Which fault kinds are meaningful for which operation.
VALID_KINDS = {
    "write": frozenset({"torn", "short", "enospc", "crash"}),
    "read": frozenset({"eio", "bitflip"}),
    "rename": frozenset({"crash"}),
    "fsync": frozenset({"crash", "dropped"}),
    "unlink": frozenset({"crash"}),
}


class SimulatedCrash(RuntimeError):
    """The process 'died' at an injected fault point.  Code under test
    must treat this like a real crash: whatever was not yet durable is
    gone, and recovery starts from the on-disk state alone."""


@dataclass(frozen=True)
class Fault:
    """One planned fault: the ``index``-th ``op`` fails with ``kind``."""

    op: str
    index: int
    kind: str

    def __post_init__(self) -> None:
        if self.op not in VALID_KINDS:
            raise ValueError(f"unknown operation {self.op!r}")
        if self.kind not in VALID_KINDS[self.op]:
            raise ValueError(
                f"fault kind {self.kind!r} does not apply to {self.op!r} "
                f"(valid: {sorted(VALID_KINDS[self.op])})"
            )
        if self.index < 0:
            raise ValueError(f"fault index must be >= 0, got {self.index}")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults.  The seed drives every nondeterministic
    detail (torn-write cut points, flipped bit positions), so one plan
    is one exact failure scenario."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    @classmethod
    def single(cls, op: str, index: int, kind: str, seed: int = 0) -> "FaultPlan":
        """The one-fault plan the matrix tests sweep."""
        return cls(faults=(Fault(op, index, kind),), seed=seed)

    def rng_for(self, fault: Fault) -> random.Random:
        """A generator whose stream depends only on (plan seed, fault)."""
        return random.Random(f"{self.seed}:{fault.op}:{fault.index}:{fault.kind}")


class FaultInjector:
    """Context manager that installs a :class:`FaultPlan` on the
    filesystem seam.  Exposes ``counts`` (ops seen so far), ``triggered``
    (faults that actually fired) and ``crashed``."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self.counts: dict[str, int] = dict.fromkeys(OPS, 0)
        self.triggered: list[Fault] = []
        self.crashed = False
        self._pending = {(f.op, f.index): f for f in self.plan.faults}

    # -- lifecycle -----------------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        fsio.hooks.open = self._open
        fsio.hooks.replace = self._replace
        fsio.hooks.fsync = self._fsync
        fsio.hooks.unlink = self._unlink
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        fsio.hooks.reset()

    # -- fault dispatch ------------------------------------------------------------

    def _next(self, op: str) -> Fault | None:
        index = self.counts[op]
        self.counts[op] = index + 1
        fault = self._pending.pop((op, index), None)
        if fault is not None:
            self.triggered.append(fault)
        return fault

    def _crash(self, fault: Fault) -> None:
        self.crashed = True
        raise SimulatedCrash(
            f"injected crash at {fault.op} #{fault.index} ({fault.kind})"
        )

    # -- patched seam --------------------------------------------------------------

    def _open(self, path, mode):
        if self.crashed:
            raise SimulatedCrash("filesystem frozen after injected crash")
        return _FaultFile(fsio._real_open(path, mode), self)

    def _replace(self, src, dst):
        if self.crashed:
            return  # a dead process renames nothing
        fault = self._next("rename")
        if fault is not None and fault.kind == "crash":
            self._crash(fault)  # strictly *before* the rename lands
        os.replace(src, dst)

    def _fsync(self, fd):
        if self.crashed:
            return
        fault = self._next("fsync")
        if fault is not None:
            if fault.kind == "crash":
                self._crash(fault)
            if fault.kind == "dropped":
                return  # the disk lied: nothing reached stable storage
        os.fsync(fd)

    def _unlink(self, path):
        if self.crashed:
            return  # a dead process cleans nothing up
        fault = self._next("unlink")
        if fault is not None and fault.kind == "crash":
            self._crash(fault)  # strictly *before* the entry disappears
        os.unlink(path)


class _FaultFile:
    """A file object that routes ``write``/``read`` through the injector
    and passes everything else straight through."""

    def __init__(self, inner, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def write(self, data) -> int:
        injector = self._injector
        if injector.crashed:
            return len(data)  # swallowed: the process is 'dead'
        fault = injector._next("write")
        if fault is None:
            return self._inner.write(data)
        if fault.kind == "enospc":
            raise OSError(errno.ENOSPC, "no space left on device (injected)")
        if fault.kind == "short":
            # A prefix lands, but the caller is told everything did; the
            # process lives on.  Durability checks must catch the hole.
            if data:
                cut = injector.plan.rng_for(fault).randrange(len(data))
                self._inner.write(data[:cut])
                self._inner.flush()
            return len(data)
        if fault.kind == "torn":
            if data:
                cut = injector.plan.rng_for(fault).randrange(len(data))
                self._inner.write(data[:cut])
                self._inner.flush()
            injector._crash(fault)
        injector._crash(fault)  # kind == "crash": nothing reaches the file
        raise AssertionError("unreachable")

    def read(self, size=-1):
        injector = self._injector
        if injector.crashed:
            raise SimulatedCrash("filesystem frozen after injected crash")
        fault = injector._next("read")
        if fault is not None and fault.kind == "eio":
            raise OSError(errno.EIO, "input/output error (injected)")
        data = self._inner.read(size)
        if fault is not None and fault.kind == "bitflip" and data:
            rng = injector.plan.rng_for(fault)
            position = rng.randrange(len(data))
            bit = 1 << rng.randrange(8)
            flipped = bytearray(data)
            flipped[position] ^= bit
            data = bytes(flipped)
        return data

    # -- passthrough ---------------------------------------------------------------

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __enter__(self):
        self._inner.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        return self._inner.__exit__(exc_type, exc, tb)

    def __iter__(self):
        return iter(self._inner)


def record_ops(action: Callable[[], object]) -> dict[str, int]:
    """Run ``action`` under a fault-free injector and return how many of
    each operation it performed — the index space a matrix sweeps."""
    with FaultInjector(FaultPlan()) as injector:
        action()
    return dict(injector.counts)


@dataclass
class MatrixOutcome:
    """Bookkeeping for one fault-matrix cell (used by the test suite to
    report coverage: every cell must be 'error' or 'recovered', never
    'silent')."""

    fault: Fault
    outcome: str  # "error" | "recovered" | "silent"
    detail: str = ""
    plan: FaultPlan = field(default_factory=FaultPlan)
