"""Test-support machinery that ships with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness: it interposes on the storage layer's filesystem seam
(:mod:`repro.inventory.fsio`) to inject torn writes, short appends,
``ENOSPC``, read ``EIO``, single-bit flips, silently-dropped fsyncs and
crash-before-rename/-unlink at exact, replayable operation indices.  It lives in the package (not under ``tests/``) so
benchmarks, examples and downstream users can drive the same campaigns
the fault-matrix suite runs in CI.
"""

from repro.testing.faults import (
    Fault,
    FaultPlan,
    FaultInjector,
    SimulatedCrash,
    record_ops,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "SimulatedCrash",
    "record_ops",
]
