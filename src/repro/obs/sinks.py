"""Trace sinks: where closed spans go.

Three shapes, matching the three consumers:

- :class:`JsonlSink` — one JSON object per line, append-only; the
  durable form ``repro build --trace`` writes and ``repro trace`` reads
  back into a profile;
- :class:`RingBufferSink` — the last N spans in memory, served live
  through the server's ``trace`` request (bounded, so a long-running
  server cannot leak);
- :class:`ProfileSink` — rolls spans up as they close into a per-name
  aggregate (count / errors / total wall / total CPU / p50 / p99 via the
  repo's own t-digest), the table behind the paper's Figure-3 stage
  breakdown.

All sinks are thread-safe: under the query server, spans close on many
worker threads at once.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Iterable, Iterator
from types import TracebackType
from dataclasses import dataclass
from pathlib import Path

from repro.sketches import TDigest


class JsonlSink:
    """Appends each span record as one JSON line to a file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None

    def record(self, record: dict) -> None:
        """Write one span record (opens the file lazily, append mode)."""
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")

    def close(self) -> None:
        """Flush and close the file (reopens lazily if recorded to again)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def read_trace(path: str | Path) -> Iterator[dict]:
    """Yield the span records of a JSONL trace file, in file order."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


class RingBufferSink:
    """Keeps the most recent ``capacity`` span records in memory."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._spans: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, record: dict) -> None:
        """Append one record, evicting the oldest at capacity."""
        with self._lock:
            self._spans.append(record)

    def spans(self, n: int | None = None) -> list[dict]:
        """The most recent ``n`` records (all retained ones by default),
        oldest first."""
        with self._lock:
            items = list(self._spans)
        return items if n is None else items[-n:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        """Drop every retained record."""
        with self._lock:
            self._spans.clear()


@dataclass
class ProfileRow:
    """One span name's aggregate in a profile table."""

    name: str
    count: int
    errors: int
    total_s: float
    cpu_s: float
    p50_ms: float
    p99_ms: float


class ProfileSink:
    """Aggregates spans by name into count/total/p50/p99 rows."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._aggregates: dict[str, list] = {}  # name -> [count, errors, wall, cpu, digest]

    def record(self, record: dict) -> None:
        """Fold one span record into its name's aggregate."""
        wall = float(record.get("wall_s", 0.0))
        with self._lock:
            agg = self._aggregates.get(record["name"])
            if agg is None:
                agg = [0, 0, 0.0, 0.0, TDigest()]
                self._aggregates[record["name"]] = agg
            agg[0] += 1
            if record.get("status") == "error":
                agg[1] += 1
            agg[2] += wall
            agg[3] += float(record.get("cpu_s", 0.0))
            agg[4].update(wall * 1e3)

    def rows(self) -> list[ProfileRow]:
        """The per-name profile, most total wall time first."""
        with self._lock:
            rows = [
                ProfileRow(
                    name=name,
                    count=agg[0],
                    errors=agg[1],
                    total_s=agg[2],
                    cpu_s=agg[3],
                    p50_ms=agg[4].quantile(0.50) if agg[0] else 0.0,
                    p99_ms=agg[4].quantile(0.99) if agg[0] else 0.0,
                )
                for name, agg in self._aggregates.items()
            ]
        rows.sort(key=lambda row: -row.total_s)
        return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._aggregates)

    def clear(self) -> None:
        """Drop every aggregate."""
        with self._lock:
            self._aggregates.clear()


def profile_records(records: Iterable[dict]) -> list[ProfileRow]:
    """Aggregate an iterable of span records into profile rows."""
    sink = ProfileSink()
    for record in records:
        sink.record(record)
    return sink.rows()


def render_profile(rows: list[ProfileRow], limit: int | None = None) -> list[str]:
    """A profile as aligned text lines (the ``repro trace`` table)."""
    total = sum(row.total_s for row in rows) or 1.0
    lines = [
        f"{'span':<28} {'count':>7} {'errors':>6} {'total':>9} "
        f"{'share':>6} {'p50':>9} {'p99':>9}"
    ]
    shown = rows if limit is None else rows[:limit]
    for row in shown:
        lines.append(
            f"{row.name:<28} {row.count:>7,} {row.errors:>6,} "
            f"{row.total_s:>8.3f}s {row.total_s / total:>6.1%} "
            f"{row.p50_ms:>7.2f}ms {row.p99_ms:>7.2f}ms"
        )
    if limit is not None and len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span names")
    return lines
