"""The span tracer: contextvars-propagated timed sections, stdlib only.

One global tracer, disabled by default.  Instrumented code writes::

    with obs.span("pipeline.clean", rows_in=n) as sp:
        ...
        sp.set("rows_out", m)
        sp.add("block_cache.hits", hits)

and pays **one attribute read and one shared no-op object** when tracing
is off — the disabled path allocates nothing, takes no locks and records
nothing, which is what lets the hot paths (block reads, server requests)
stay instrumented permanently (the serving benchmark asserts the
overhead bound).

When enabled (:func:`configure` with one or more sinks), every closed
span is emitted to every sink as a plain dict: name, trace/span/parent
ids, start timestamp, wall seconds, thread-CPU seconds, attributes,
counter deltas and an ok/error status.  Propagation:

- **nesting** rides a :class:`contextvars.ContextVar`, so it is correct
  per-thread and per-asyncio-task by construction;
- **thread pools** submit through ``contextvars.copy_context()`` (the
  schedulers and the server's executor do this when tracing is on), so
  worker-side spans parent under the span active at submit time;
- **forked workers** inherit the context through the fork; the child
  redirects its spans into a buffer (:func:`begin_collect` /
  :func:`end_collect`), ships them back over the result pipe, and the
  parent :func:`replay`\\ s them — ids stay globally unique because they
  come from ``os.urandom``, which does not repeat across forks.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from collections.abc import Callable
from contextvars import ContextVar, Token
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Protocol, TypeVar


class SpanSink(Protocol):
    """Anything that can receive finished span records."""

    def record(self, record: dict) -> None:
        """Consume one span record (a plain dict)."""
        ...


_S = TypeVar("_S")


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagated identity: which trace, and which span is open."""

    trace_id: str
    span_id: str


_ACTIVE: ContextVar[TraceContext | None] = ContextVar("repro_obs_active", default=None)


def _new_id() -> str:
    """A 64-bit random hex id — unique across threads *and* forks."""
    return os.urandom(8).hex()


class Span:
    """One live timed section; emitted to the sinks as a dict on close."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs", "counters",
        "start_ts", "status", "error", "_token", "_wall0", "_cpu0", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, int] = {}
        self.status = "ok"
        self.error: str | None = None

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (overwrites)."""
        self.attrs[key] = value

    def add(self, counter: str, amount: int = 1) -> None:
        """Accumulate a counter delta attached to this span at close."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def __enter__(self) -> "Span":
        parent = _ACTIVE.get()
        if parent is None:
            self.trace_id = _new_id()
            self.parent_id = None
        else:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        self.span_id = _new_id()
        self._token = _ACTIVE.set(TraceContext(self.trace_id, self.span_id))
        self.start_ts = time.time()
        self._cpu0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.thread_time() - self._cpu0
        _ACTIVE.reset(self._token)
        if exc_type is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        record = {
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "ts": self.start_ts,
            "wall_s": wall,
            "cpu_s": cpu,
            "status": self.status,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.attrs:
            record["attrs"] = self.attrs
        if self.counters:
            record["counters"] = self.counters
        self._tracer.emit(record)


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled.

    Stateless, so one instance serves every call site concurrently; its
    methods exist so instrumented code never branches on tracing state.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        """Discard an attribute (tracing is off)."""

    def add(self, counter: str, amount: int = 1) -> None:
        """Discard a counter delta (tracing is off)."""


NOOP_SPAN = _NoopSpan()

#: What :func:`span` hands out — accepted anywhere a span is threaded
#: through as an argument (e.g. cache-miss accounting in the backend).
SpanLike = Span | _NoopSpan


class Tracer:
    """Holds the sink list and the enabled flag; one global instance."""

    def __init__(self) -> None:
        self.enabled = False
        self._sinks: tuple[SpanSink, ...] = ()
        self._lock = threading.Lock()

    def configure(self, *sinks: SpanSink) -> None:
        """Install sinks and enable tracing (replaces existing sinks)."""
        with self._lock:
            self._sinks = tuple(sinks)
            self.enabled = bool(sinks)

    def add_sink(self, sink: SpanSink) -> None:
        """Append one sink (enables tracing)."""
        with self._lock:
            self._sinks = self._sinks + (sink,)
            self.enabled = True

    def disable(self) -> None:
        """Drop every sink and return to the no-op path."""
        with self._lock:
            self._sinks = ()
            self.enabled = False

    def sinks(self) -> tuple[SpanSink, ...]:
        """The currently installed sinks."""
        return self._sinks

    def find_sink(self, sink_type: type[_S]) -> _S | None:
        """The first installed sink of a given type, or ``None``."""
        for sink in self._sinks:
            if isinstance(sink, sink_type):
                return sink
        return None

    def emit(self, record: dict) -> None:
        """Deliver one finished span record to every sink."""
        for sink in self._sinks:
            sink.record(record)


_TRACER = Tracer()


def span(name: str, **attrs: object) -> Span | _NoopSpan:
    """Open a span (context manager).  Near-free when tracing is off."""
    tracer = _TRACER
    if not tracer.enabled:
        return NOOP_SPAN
    return Span(tracer, name, attrs)


def traced(
    name: str | Callable[..., Any] | None = None, **attrs: object
) -> Callable[..., Any]:
    """Decorator form of :func:`span`; default name is the qualname."""
    def _decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        label = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def _wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return _wrapper

    if callable(name):  # bare @traced
        fn, name = name, None
        return _decorate(fn)
    return _decorate


def enabled() -> bool:
    """Whether tracing is currently on (cheap: one attribute read)."""
    return _TRACER.enabled


def configure(*sinks: SpanSink) -> None:
    """Install sinks on the global tracer and enable it."""
    _TRACER.configure(*sinks)


def add_sink(sink: SpanSink) -> None:
    """Append one sink to the global tracer."""
    _TRACER.add_sink(sink)


def disable() -> None:
    """Disable the global tracer and drop its sinks."""
    _TRACER.disable()


def find_sink(sink_type: type[_S]) -> _S | None:
    """The first installed sink of a type on the global tracer."""
    return _TRACER.find_sink(sink_type)


def current_context() -> TraceContext | None:
    """The active (trace id, span id), or ``None`` outside any span."""
    return _ACTIVE.get()


def activate(context: TraceContext | None) -> Token[TraceContext | None]:
    """Adopt a propagated context in this thread/task; returns the reset
    token for :func:`deactivate` (used when ``copy_context`` cannot be,
    e.g. adopting a context shipped across a process boundary)."""
    return _ACTIVE.set(context)


def deactivate(token: Token[TraceContext | None]) -> None:
    """Undo :func:`activate`."""
    _ACTIVE.reset(token)


class _CollectBuffer:
    """Sink that buffers records in a plain list (fork-side transport)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def record(self, record: dict) -> None:
        """Append one span record to the buffer."""
        self.records.append(record)


def begin_collect() -> list[dict] | None:
    """Redirect all spans into an in-memory buffer (fork-side).

    Called by a forked worker right after the fork: the inherited sinks
    (open files, shared ring buffers) belong to the parent and must not
    be written from the child.  Returns the buffer, or ``None`` when
    tracing is disabled.  Single-threaded use only — the child owns its
    copy of the tracer.
    """
    tracer = _TRACER
    if not tracer.enabled:
        return None
    buffer = _CollectBuffer()
    tracer._sinks = (buffer,)
    return buffer


def end_collect(buffer: list[dict] | _CollectBuffer | None) -> list[dict]:
    """The records captured since :func:`begin_collect` (empty if off)."""
    if buffer is None:
        return []
    return buffer.records


def replay(records: list[dict]) -> None:
    """Emit records captured in another process into this tracer's sinks."""
    tracer = _TRACER
    if not tracer.enabled:
        return
    for record in records:
        tracer.emit(record)
