"""The observability registry: every span and counter name, with meaning.

Instrumented modules *declare* their span and counter names here at
import time (``SPAN_X = register_span("x", "…")``), which buys two
things:

- ``docs/METRICS.md`` is **generated** from the registry
  (:func:`generate_metrics_doc`, or ``python -m repro.obs.registry``),
  so the reference lists exactly what the code emits;
- the docs-sync test (``tests/test_docs_metrics_sync.py``) walks the
  registry after importing every ``repro`` module and fails when a
  registered name is missing from the committed doc **or** the doc
  names something no longer registered — the reference cannot drift in
  either direction.

Names with one variable segment (per-request-type counters such as
``server.requests.<type>``) are registered once per concrete value the
code can produce, because both the request-type and error-code spaces
are closed sets; a genuinely open name space would be registered as a
single ``prefix.<label>`` entry.
"""

from __future__ import annotations

import importlib
import pkgutil

#: name -> one-line meaning, in registration order.
_SPANS: dict[str, str] = {}
_COUNTERS: dict[str, str] = {}


def register_span(name: str, description: str) -> str:
    """Declare a span name; returns the name so constants read naturally.

    Re-registering the same name with the same description is a no-op
    (modules may be reloaded); conflicting descriptions raise.
    """
    return _register(_SPANS, "span", name, description)


def register_counter(name: str, description: str) -> str:
    """Declare a counter name (same contract as :func:`register_span`)."""
    return _register(_COUNTERS, "counter", name, description)


def _register(table: dict[str, str], kind: str, name: str, description: str) -> str:
    if not name or not description:
        raise ValueError(f"a {kind} needs a non-empty name and description")
    existing = table.get(name)
    if existing is not None and existing != description:
        raise ValueError(
            f"{kind} {name!r} already registered with a different description"
        )
    table[name] = description
    return name


def registered_spans() -> dict[str, str]:
    """Snapshot of all registered span names and meanings."""
    return dict(_SPANS)


def registered_counters() -> dict[str, str]:
    """Snapshot of all registered counter names and meanings."""
    return dict(_COUNTERS)


def import_instrumented() -> None:
    """Import every module under ``repro`` so all registrations run.

    Registration happens at import time, so the registry is only
    complete once the instrumented modules are loaded.  The generator
    and the docs-sync test call this first.
    """
    import repro

    for module in pkgutil.walk_packages(repro.__path__, "repro."):
        if module.name.rpartition(".")[2] == "__main__":
            continue  # executable entry points, not importable libraries
        importlib.import_module(module.name)


_HEADER = """\
# Metrics & span reference

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with:  PYTHONPATH=src python -m repro.obs.registry > docs/METRICS.md
     tests/test_docs_metrics_sync.py fails when this file drifts from the
     registry (repro.obs.registry) in either direction. -->

Every counter and span name the code can emit, from the observability
registry (`repro.obs.registry`).  Counters are monotonic event counts
(`repro.engine.metrics.CounterSet`); spans are timed sections recorded
by the tracer (`repro.obs`) and carry wall/CPU time, attributes and
counter deltas.  `docs/OPERATIONS.md` explains how to read them in
production; `repro trace` renders a recorded trace into the per-stage
profile table.
"""


def generate_metrics_doc() -> str:
    """Render the whole registry as the ``docs/METRICS.md`` markdown."""
    import_instrumented()
    lines = [_HEADER]
    lines.append("## Counters\n")
    lines.append("| counter | meaning |")
    lines.append("|---|---|")
    for name in sorted(_COUNTERS):
        lines.append(f"| `{name}` | {_COUNTERS[name]} |")
    lines.append("")
    lines.append("## Spans\n")
    lines.append("| span | meaning |")
    lines.append("|---|---|")
    for name in sorted(_SPANS):
        lines.append(f"| `{name}` | {_SPANS[name]} |")
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    """CLI entry point: print the generated reference to stdout."""
    print(generate_metrics_doc(), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the docs test
    # `python -m` runs this file as `__main__`, a *second* module object
    # with its own empty tables; delegate to the canonical import that
    # the instrumented modules registered into.
    from repro.obs import registry as _canonical

    raise SystemExit(_canonical.main())
