"""Prometheus-style text exposition of counters and latency gauges.

``repro serve --metrics-port N`` stands a plain stdlib HTTP server next
to the query server; ``GET /metrics`` returns every
:class:`~repro.engine.metrics.CounterSet` counter and every
:class:`~repro.server.metrics.ServerMetrics` latency/queue-wait gauge in
the Prometheus text format (version 0.0.4), so standard scrapers — or
``curl`` — can watch a serving process without speaking the query
protocol.  The renderer works on plain dicts, so anything that can
snapshot itself (server metrics, block-cache counters, a profile sink)
can be exposed.
"""

from __future__ import annotations

import re
import threading
from collections.abc import Callable
from types import TracebackType
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: The Prometheus text-format content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metric_name(name: str, prefix: str = "repro") -> str:
    """A counter/gauge name sanitized to the Prometheus grammar."""
    return _NAME_OK.sub("_", f"{prefix}_{name}")


def render_text(
    counters: dict[str, int],
    gauges: dict[str, float | None] | None = None,
    prefix: str = "repro",
) -> str:
    """Counters (``…_total``) and gauges as Prometheus text lines.

    ``None``-valued gauges (an empty latency digest) are skipped, names
    are sorted so the output is diffable, and dots become underscores.
    """
    lines: list[str] = []
    for name in sorted(counters):
        metric = metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    for name in sorted(gauges or {}):
        value = (gauges or {})[name]
        if value is None:
            continue
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    return "\n".join(lines) + "\n"


def server_exposition(
    snapshot: dict, cache_counters: dict[str, int] | None = None
) -> str:
    """Render a :meth:`ServerMetrics.snapshot` (plus optional block-cache
    counters) as the ``/metrics`` payload."""
    counters = dict(snapshot.get("counters", {}))
    if cache_counters:
        counters.update(cache_counters)
    gauges: dict[str, float | None] = {}
    for group in ("latency_ms", "queue_wait_ms"):
        for stat, value in (snapshot.get(group) or {}).items():
            if stat == "count":
                continue
            gauges[f"server.{group}.{stat}"] = value
    return render_text(counters, gauges)


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``GET /metrics`` from the exporter's collect callable."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Answer one scrape; anything but ``/metrics`` is a 404."""
        if self.path.split("?", 1)[0] != "/metrics":
            self.send_error(404, "only /metrics is served here")
            return
        try:
            body = self.server.collect().encode("utf-8")  # type: ignore[attr-defined]
        except Exception as exc:  # noqa: BLE001 - a scrape must not kill the server
            self.send_error(500, f"collect failed: {type(exc).__name__}")
            return
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request access logging (scrapes are periodic)."""


class MetricsExporter:
    """A background HTTP endpoint exposing one collect() callable.

    ::

        exporter = MetricsExporter(lambda: server_exposition(metrics.snapshot()))
        host, port = exporter.start()
        ...
        exporter.stop()

    Port 0 asks the kernel for a free port (reported by :meth:`start`);
    the serving thread is a daemon, so a crashed process never hangs on
    it.
    """

    def __init__(
        self,
        collect: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._collect = collect
        self._host = host
        self._port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        """Bind, start serving on a daemon thread, return (host, port)."""
        if self._httpd is not None:
            raise RuntimeError("exporter is already started")
        self._httpd = ThreadingHTTPServer(
            (self._host, self._port), _MetricsHandler
        )
        self._httpd.collect = self._collect  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        if self._httpd is None:
            raise RuntimeError("exporter is not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def stop(self) -> None:
        """Stop serving and release the port."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()
