"""End-to-end tracing & profiling: where did this request/build spend its time?

The paper's system is operated as a service — its Figure 3 is literally
a stage-cost breakdown of the production pipeline — and every perf claim
this repo makes needs a seam that can prove it.  ``repro.obs`` is that
seam, stdlib only:

- :mod:`repro.obs.trace` — the contextvars span tracer.  ``span(name)``
  as context manager or ``@traced`` decorator; thread-, fork- and
  asyncio-safe propagation; per-span wall and thread-CPU time; counters
  attached at close.  Disabled by default, and the disabled path is a
  no-op (one attribute read, a shared inert object — asserted by
  benchmark).
- :mod:`repro.obs.sinks` — where spans go: a JSONL trace file, an
  in-memory ring buffer (served live via the server's ``trace``
  request), and an aggregating profile (count/total/p50/p99 per stage,
  via the repo's t-digest) that ``repro trace`` renders.
- :mod:`repro.obs.registry` — the declared universe of span and counter
  names; ``docs/METRICS.md`` is generated from it and a sync test keeps
  the two from drifting.
- :mod:`repro.obs.exposition` — Prometheus-style text exposition of all
  counters/latency gauges (``repro serve --metrics-port``).

Instrumented hot paths: every pipeline stage (the Fig. 3 funnel),
scheduler partition execution and retries, SSTable block reads and
block-cache hits/misses, and every server request with its queue-wait
vs. handler-time split.
"""

from repro.obs.exposition import (
    MetricsExporter,
    render_text,
    server_exposition,
)
from repro.obs.registry import (
    generate_metrics_doc,
    register_counter,
    register_span,
    registered_counters,
    registered_spans,
)
from repro.obs.sinks import (
    JsonlSink,
    ProfileRow,
    ProfileSink,
    RingBufferSink,
    profile_records,
    read_trace,
    render_profile,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    TraceContext,
    Tracer,
    activate,
    add_sink,
    begin_collect,
    configure,
    current_context,
    deactivate,
    disable,
    enabled,
    end_collect,
    find_sink,
    replay,
    span,
    traced,
)

__all__ = [
    "MetricsExporter",
    "NOOP_SPAN",
    "Span",
    "TraceContext",
    "Tracer",
    "JsonlSink",
    "ProfileRow",
    "ProfileSink",
    "RingBufferSink",
    "activate",
    "add_sink",
    "begin_collect",
    "configure",
    "current_context",
    "deactivate",
    "disable",
    "enabled",
    "end_collect",
    "find_sink",
    "generate_metrics_doc",
    "profile_records",
    "read_trace",
    "register_counter",
    "register_span",
    "registered_counters",
    "registered_spans",
    "render_profile",
    "render_text",
    "replay",
    "server_exposition",
    "span",
    "traced",
]
