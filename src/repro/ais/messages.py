"""Typed AIS message models.

Field names and sentinel ("not available") values follow ITU-R M.1371.
Positions carry an ``epoch_ts`` receive timestamp — AIS itself transmits
only the UTC second (0–59); tracking systems stamp arrival time at the
receiver, and that stamped time is what the pipeline sorts and windows by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum


class NavigationStatus(IntEnum):
    """Navigation status codes of position report bits 38–41."""

    UNDER_WAY_ENGINE = 0
    AT_ANCHOR = 1
    NOT_UNDER_COMMAND = 2
    RESTRICTED_MANEUVERABILITY = 3
    CONSTRAINED_BY_DRAUGHT = 4
    MOORED = 5
    AGROUND = 6
    FISHING = 7
    UNDER_WAY_SAILING = 8
    RESERVED_9 = 9
    RESERVED_10 = 10
    POWER_DRIVEN_TOWING_ASTERN = 11
    POWER_DRIVEN_PUSHING_AHEAD = 12
    RESERVED_13 = 13
    AIS_SART = 14
    NOT_DEFINED = 15


#: Sentinel values the protocol uses for "not available".
LON_NOT_AVAILABLE = 181.0
LAT_NOT_AVAILABLE = 91.0
SOG_NOT_AVAILABLE = 102.3
COG_NOT_AVAILABLE = 360.0
HEADING_NOT_AVAILABLE = 511
ROT_NOT_AVAILABLE = -128


@dataclass(slots=True)
class PositionReport:
    """A class-A position report (message types 1, 2 or 3)."""

    mmsi: int
    epoch_ts: float
    lat: float
    lon: float
    sog: float
    cog: float
    heading: int = HEADING_NOT_AVAILABLE
    status: int = int(NavigationStatus.UNDER_WAY_ENGINE)
    rot: int = ROT_NOT_AVAILABLE
    msg_type: int = 1
    repeat: int = 0
    accuracy: bool = False
    maneuver: int = 0
    raim: bool = False
    radio: int = 0

    def __post_init__(self) -> None:
        if self.msg_type not in (1, 2, 3):
            raise ValueError(
                f"position report message type must be 1-3, got {self.msg_type}"
            )

    @property
    def utc_second(self) -> int:
        """The 0–59 UTC second field derived from the receive timestamp."""
        return int(self.epoch_ts) % 60


@dataclass(slots=True)
class ClassBPositionReport:
    """A class-B position report (message type 18) — small craft; the paper
    filters these out of the commercial-fleet analysis."""

    mmsi: int
    epoch_ts: float
    lat: float
    lon: float
    sog: float
    cog: float
    heading: int = HEADING_NOT_AVAILABLE
    repeat: int = 0
    accuracy: bool = False
    raim: bool = False
    radio: int = 0

    msg_type: int = field(default=18, init=False)


@dataclass(slots=True)
class StaticVoyageData:
    """Static and voyage-related data (message type 5, class A)."""

    mmsi: int
    imo: int
    callsign: str
    shipname: str
    ship_type: int
    dim_bow: int = 0
    dim_stern: int = 0
    dim_port: int = 0
    dim_starboard: int = 0
    eta_month: int = 0
    eta_day: int = 0
    eta_hour: int = 24
    eta_minute: int = 60
    draught: float = 0.0
    destination: str = ""
    repeat: int = 0
    ais_version: int = 2
    epfd: int = 1
    dte: bool = False

    msg_type: int = field(default=5, init=False)

    @property
    def length_m(self) -> int:
        """Overall length derived from the bow/stern dimensions."""
        return self.dim_bow + self.dim_stern

    @property
    def beam_m(self) -> int:
        """Beam derived from the port/starboard dimensions."""
        return self.dim_port + self.dim_starboard


@dataclass(slots=True)
class StaticDataReportA:
    """Static data report part A (message type 24, class B): name only."""

    mmsi: int
    shipname: str
    repeat: int = 0

    msg_type: int = field(default=24, init=False)
    part_number: int = field(default=0, init=False)


@dataclass(slots=True)
class StaticDataReportB:
    """Static data report part B (message type 24, class B)."""

    mmsi: int
    ship_type: int
    vendor_id: str = ""
    callsign: str = ""
    dim_bow: int = 0
    dim_stern: int = 0
    dim_port: int = 0
    dim_starboard: int = 0
    repeat: int = 0

    msg_type: int = field(default=24, init=False)
    part_number: int = field(default=1, init=False)
