"""The 6-bit layer beneath every AIS payload.

AIS messages are bit streams; NMEA transports them as "armored" ASCII where
each character carries six bits.  This module provides:

- :class:`BitWriter` / :class:`BitReader` — big-endian bit-level packing
  with signed/unsigned integers and 6-bit-charset strings;
- :func:`armor` / :func:`unarmor` — payload ↔ ASCII conversion, including
  the fill-bit bookkeeping NMEA sentences carry in their last field.
"""

from __future__ import annotations

#: The AIS 6-bit text charset, indexed by 6-bit value (ITU-R M.1371 table 47).
SIXBIT_CHARSET = (
    "@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_ !\"#$%&'()*+,-./0123456789:;<=>?"
)

_CHAR_TO_SIXBIT = {char: i for i, char in enumerate(SIXBIT_CHARSET)}


class BitWriter:
    """Accumulates an AIS payload bit by bit (big-endian within fields)."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    def write_uint(self, value: int, width: int) -> None:
        """Append an unsigned integer in ``width`` bits."""
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} unsigned bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_int(self, value: int, width: int) -> None:
        """Append a two's-complement signed integer in ``width`` bits."""
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
        if not lo <= value <= hi:
            raise ValueError(f"value {value} does not fit in {width} signed bits")
        self.write_uint(value & ((1 << width) - 1), width)

    def write_bool(self, value: bool) -> None:
        """Append a single flag bit."""
        self._bits.append(1 if value else 0)

    def write_string(self, text: str, width: int) -> None:
        """Append a 6-bit-charset string padded with '@' to ``width`` bits.

        ``width`` must be a multiple of six.  Characters outside the AIS
        charset raise :class:`ValueError`; lowercase letters are upcased
        first, as real transponders do.
        """
        if width % 6 != 0:
            raise ValueError(f"string width must be a multiple of 6, got {width}")
        slots = width // 6
        text = text.upper()[:slots]
        for char in text:
            code = _CHAR_TO_SIXBIT.get(char)
            if code is None:
                raise ValueError(f"character {char!r} not in the AIS 6-bit charset")
            self.write_uint(code, 6)
        for _ in range(slots - len(text)):
            self.write_uint(0, 6)  # '@' padding

    def to_bits(self) -> list[int]:
        """The accumulated bits (a copy)."""
        return list(self._bits)


class BitReader:
    """Sequential reader over a payload's bits."""

    def __init__(self, bits: list[int]) -> None:
        self._bits = bits
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return len(self._bits) - self._pos

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer of ``width`` bits."""
        if width > self.remaining:
            raise ValueError(
                f"payload truncated: wanted {width} bits, {self.remaining} left"
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        return value

    def read_int(self, width: int) -> int:
        """Read a two's-complement signed integer of ``width`` bits."""
        raw = self.read_uint(width)
        if raw & (1 << (width - 1)):
            raw -= 1 << width
        return raw

    def read_bool(self) -> bool:
        """Read a single flag bit."""
        return self.read_uint(1) == 1

    def read_string(self, width: int) -> str:
        """Read a 6-bit-charset string, stripping '@' padding and trailing
        spaces."""
        if width % 6 != 0:
            raise ValueError(f"string width must be a multiple of 6, got {width}")
        chars = []
        for _ in range(width // 6):
            chars.append(SIXBIT_CHARSET[self.read_uint(6)])
        text = "".join(chars)
        return text.split("@", 1)[0].rstrip()


def armor(bits: list[int]) -> tuple[str, int]:
    """Convert payload bits to the NMEA armored string.

    Returns ``(payload, fill_bits)``: the payload is padded with zero bits
    to a multiple of six, and ``fill_bits`` says how many were added (the
    count transmitted in the sentence's last field).
    """
    fill = (-len(bits)) % 6
    padded = bits + [0] * fill
    chars = []
    for i in range(0, len(padded), 6):
        value = 0
        for bit in padded[i : i + 6]:
            value = (value << 1) | bit
        chars.append(chr(value + 48) if value < 40 else chr(value + 56))
    return "".join(chars), fill


def unarmor(payload: str, fill_bits: int = 0) -> list[int]:
    """Convert an armored payload string back to bits, dropping fill bits."""
    if not 0 <= fill_bits <= 5:
        raise ValueError(f"fill bits must be in [0, 5], got {fill_bits}")
    bits: list[int] = []
    for char in payload:
        code = ord(char) - 48
        if code > 40:
            code -= 8
        if not 0 <= code <= 63:
            raise ValueError(f"invalid armored character {char!r}")
        for shift in range(5, -1, -1):
            bits.append((code >> shift) & 1)
    if fill_bits:
        if fill_bits > len(bits):
            raise ValueError("fill bits exceed payload length")
        bits = bits[:-fill_bits]
    return bits
