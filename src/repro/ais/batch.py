"""Batch NMEA/CSV decoding (the columnar twin of the streaming decoders).

:func:`decode_lines` and :func:`read_csv_batch` produce exactly the
messages :func:`repro.ais.codec.decode_sentences` and
:func:`repro.ais.csvio.read_csv` produce — the equivalence suite pins it
— but amortize the per-sentence work the scalar path repeats for every
line:

- framing, checksum and field splits run on ``bytes`` with a single
  :func:`functools.reduce` XOR instead of a per-character Python loop;
- armored payloads unarmor into one big integer via a 256-byte
  translate table (6 bits per shift) instead of a per-bit list, and
  :class:`IntBitReader` serves the field decoders with shift/mask reads
  over that integer;
- CSV rows parse positionally through ``csv.reader`` (no per-row dict)
  with ``datetime.fromisoformat`` for the common timestamp shape.

The payload field decoders themselves (``_decode_position`` and
friends) are shared with the streaming codec — the bit layout knowledge
lives in exactly one place.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Iterator
from datetime import datetime, timezone
from functools import reduce
from operator import xor
from pathlib import Path

from repro.ais.codec import (
    AisMessage,
    _decode_class_b,
    _decode_position,
    _decode_static_data,
    _decode_static_voyage,
)
from repro.ais.csvio import _parse_ts
from repro.ais.messages import PositionReport
from repro.ais.nmea import NmeaAssembler, NmeaSentence
from repro.ais.sixbit import SIXBIT_CHARSET
from repro.obs import registry
from repro.obs import trace as obs

SPAN_DECODE_BATCH = registry.register_span(
    "ais.decode.batch",
    "batch NMEA decode: framing, checksum, unarmor and payload decode over a line block",
)

_INVALID = 0xFF


def _build_unarmor_table() -> bytes:
    table = bytearray([_INVALID]) * 256
    for byte in range(256):
        code = byte - 48
        if code > 40:
            code -= 8
        if 0 <= code <= 63:
            table[byte] = code
    return bytes(table)


#: Armored character -> 6-bit value, 0xFF where the byte is not a valid
#: armored character.  Indexing a bytes object by a byte is one C-level
#: lookup, so unarmoring costs one table hit and one shift per character.
_UNARMOR_TABLE = _build_unarmor_table()


class IntBitReader:
    """Bit reader over a payload packed into a single big integer.

    Duck-typed to :class:`repro.ais.sixbit.BitReader` (``read_uint``,
    ``read_int``, ``read_bool``, ``read_string``, ``remaining``) so the
    codec's field decoders accept either.  Reads are shift/mask on the
    integer — no per-bit Python objects exist at any point.
    """

    __slots__ = ("_value", "_remaining")

    def __init__(self, value: int, bit_length: int) -> None:
        self._value = value
        self._remaining = bit_length

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._remaining

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer of ``width`` bits."""
        remaining = self._remaining
        if width > remaining:
            raise ValueError(
                f"payload truncated: wanted {width} bits, {remaining} left"
            )
        self._remaining = remaining = remaining - width
        return (self._value >> remaining) & ((1 << width) - 1)

    def read_int(self, width: int) -> int:
        """Read a two's-complement signed integer of ``width`` bits."""
        raw = self.read_uint(width)
        if raw & (1 << (width - 1)):
            raw -= 1 << width
        return raw

    def read_bool(self) -> bool:
        """Read a single flag bit."""
        return self.read_uint(1) == 1

    def read_string(self, width: int) -> str:
        """Read a 6-bit-charset string, stripping '@' padding and trailing
        spaces."""
        if width % 6 != 0:
            raise ValueError(f"string width must be a multiple of 6, got {width}")
        chars = []
        for _ in range(width // 6):
            chars.append(SIXBIT_CHARSET[self.read_uint(6)])
        text = "".join(chars)
        return text.split("@", 1)[0].rstrip()


def unarmor_to_int(payload: str, fill_bits: int = 0) -> tuple[int, int]:
    """Unarmor a payload into ``(value, bit_length)``.

    Equivalent to :func:`repro.ais.sixbit.unarmor` with the bits packed
    big-endian into one integer; raises :class:`ValueError` on invalid
    armored characters or fill-bit counts, exactly as the scalar
    unarmorer does.
    """
    if not 0 <= fill_bits <= 5:
        raise ValueError(f"fill bits must be in [0, 5], got {fill_bits}")
    table = _UNARMOR_TABLE
    value = 0
    try:
        encoded = payload.encode("ascii")
    except UnicodeEncodeError as exc:
        raise ValueError(f"invalid armored character in {payload!r}") from exc
    for byte in encoded:
        code = table[byte]
        if code == _INVALID:
            raise ValueError(f"invalid armored character {chr(byte)!r}")
        value = (value << 6) | code
    bit_length = 6 * len(encoded)
    if fill_bits:
        if fill_bits > bit_length:
            raise ValueError("fill bits exceed payload length")
        value >>= fill_bits
        bit_length -= fill_bits
    return value, bit_length


def decode_payload_packed(
    payload: str, fill_bits: int = 0, epoch_ts: float = 0.0
) -> AisMessage:
    """Decode an armored payload via the packed-integer reader.

    Message-for-message identical to
    :func:`repro.ais.codec.decode_payload`.
    """
    value, bit_length = unarmor_to_int(payload, fill_bits)
    reader = IntBitReader(value, bit_length)
    msg_type = reader.read_uint(6)
    if msg_type in (1, 2, 3):
        return _decode_position(reader, msg_type, epoch_ts)
    if msg_type == 5:
        return _decode_static_voyage(reader)
    if msg_type == 18:
        return _decode_class_b(reader, epoch_ts)
    if msg_type == 24:
        return _decode_static_data(reader)
    raise ValueError(f"unsupported AIS message type {msg_type}")


def _parse_sentence_bytes(line: str) -> NmeaSentence | None:
    """The byte-level twin of :func:`repro.ais.nmea.parse_sentence`.

    Returns ``None`` instead of raising — the batch loop skips bad lines
    without exception overhead, matching the accept/reject decisions of
    the scalar parser exactly.
    """
    stripped = line.strip()
    if not stripped.startswith("!"):
        return None
    body, sep, declared = stripped[1:].rpartition("*")
    if not sep:
        return None
    try:
        declared_value = int(declared, 16)
    except ValueError:
        return None
    try:
        actual = reduce(xor, body.encode("ascii"), 0)
    except UnicodeEncodeError:
        # The scalar checksum XORs code points, so a non-ASCII body is
        # still well-defined (and almost certainly a mismatch).
        actual = reduce(xor, map(ord, body), 0)
    if declared_value != actual:
        return None
    fields = body.split(",")
    if len(fields) != 7:
        return None
    talker, frag_count, frag_num, msg_id, channel, payload, fill = fields
    if talker not in ("AIVDM", "AIVDO"):
        return None
    try:
        return NmeaSentence(
            talker=talker,
            fragment_count=int(frag_count),
            fragment_number=int(frag_num),
            message_id=msg_id,
            channel=channel,
            payload=payload,
            fill_bits=int(fill),
        )
    except ValueError:
        return None


def decode_lines(lines: Iterable[str], epoch_ts: float = 0.0) -> list[AisMessage]:
    """Batch-decode a block of NMEA lines.

    Message-for-message identical to
    :func:`repro.ais.codec.decode_sentences` over the same lines —
    fragments assemble through the same :class:`NmeaAssembler`, and bad
    framing/checksums/payloads are skipped — but materialised as a list
    with the batch amortizations described in the module docstring.
    """
    with obs.span(SPAN_DECODE_BATCH) as span:
        assembler = NmeaAssembler()
        messages: list[AisMessage] = []
        count = 0
        for line in lines:
            count += 1
            sentence = _parse_sentence_bytes(line)
            if sentence is None:
                continue
            completed = assembler.push(sentence)
            if completed is None:
                continue
            payload, fill = completed
            try:
                messages.append(decode_payload_packed(payload, fill, epoch_ts))
            except ValueError:
                continue
        span.set("lines", count)
        span.set("messages", len(messages))
    return messages


def read_csv_batch(path: str | Path) -> list[PositionReport]:
    """Batch-read a position-report CSV written by
    :func:`repro.ais.csvio.write_csv`.

    Row-for-row identical to :func:`repro.ais.csvio.read_csv` (bad rows
    are skipped), but parses positionally without per-row dicts and
    fast-paths the writer's own ISO-8601 timestamp shape through
    ``datetime.fromisoformat``.
    """
    utc = timezone.utc
    fromisoformat = datetime.fromisoformat
    reports: list[PositionReport] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return reports
        try:
            indices = [
                header.index(name)
                for name in (
                    "MMSI",
                    "BaseDateTime",
                    "LAT",
                    "LON",
                    "SOG",
                    "COG",
                    "Heading",
                    "Status",
                )
            ]
        except ValueError:
            # A header missing required columns yields no parseable rows,
            # exactly as DictReader + KeyError skipping would.
            return reports
        i_mmsi, i_ts, i_lat, i_lon, i_sog, i_cog, i_head, i_status = indices
        width = max(indices) + 1
        for row in reader:
            if len(row) < width:
                continue
            try:
                raw_ts = row[i_ts]
                try:
                    # Same precedence as _parse_ts: raw epoch seconds win.
                    ts = float(raw_ts)
                except ValueError:
                    if len(raw_ts) == 19 and raw_ts[10] == "T":
                        # The writer's exact shape — fromisoformat accepts
                        # precisely the strings strptime(%Y-%m-%dT%H:%M:%S)
                        # accepts once pinned to this length and separator.
                        ts = fromisoformat(raw_ts).replace(tzinfo=utc).timestamp()
                    else:
                        ts = _parse_ts(raw_ts)
                reports.append(
                    PositionReport(
                        mmsi=int(row[i_mmsi]),
                        epoch_ts=ts,
                        lat=float(row[i_lat]),
                        lon=float(row[i_lon]),
                        sog=float(row[i_sog]),
                        cog=float(row[i_cog]),
                        heading=int(row[i_head]),
                        status=int(row[i_status]),
                    )
                )
            except ValueError:
                continue
    return reports
