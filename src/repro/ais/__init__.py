"""AIS protocol substrate: messages, wire codec and validation ranges.

The paper's input is a year of archived AIS positional reports (ITU-R
M.1371 message types 1–3 and 18) plus a static-report inventory used to
attach a vessel type to every position.  This package implements the
protocol layer a real ingestion system needs:

- :mod:`repro.ais.messages` — typed message models (position reports,
  class-B reports, static & voyage data) with protocol sentinel values.
- :mod:`repro.ais.sixbit` — the 6-bit packing layer shared by all AIS
  payloads: bit-level writer/reader, payload armoring, the 6-bit text
  charset.
- :mod:`repro.ais.nmea` — NMEA 0183 framing: ``!AIVDM`` sentences,
  checksums, multi-fragment assembly.
- :mod:`repro.ais.codec` — field layouts for message types 1/2/3, 5, 18
  and 24; encode/decode between models and armored payloads.
- :mod:`repro.ais.csvio` — a NOAA-AIS-style CSV codec for decoded reports
  (the open-data format the reproduction substitutes for the proprietary
  archive).
- :mod:`repro.ais.validation` — the value-range checks of the paper's
  cleaning stage (§3.3.1).
- :mod:`repro.ais.vesseltypes` — AIS ship-type codes → market segments and
  the commercial-fleet predicate.
"""

from repro.ais.messages import (
    ClassBPositionReport,
    NavigationStatus,
    PositionReport,
    StaticDataReportA,
    StaticDataReportB,
    StaticVoyageData,
)
from repro.ais.nmea import (
    NmeaAssembler,
    NmeaSentence,
    checksum,
    format_sentence,
    parse_sentence,
)
from repro.ais.codec import decode_payload, encode_message, decode_sentences
from repro.ais.csvio import read_csv, write_csv, CSV_COLUMNS
from repro.ais.validation import (
    is_valid_course,
    is_valid_heading,
    is_valid_latitude,
    is_valid_longitude,
    is_valid_mmsi,
    is_valid_position_report,
    is_valid_speed,
    is_valid_status,
)
from repro.ais.vesseltypes import (
    MarketSegment,
    is_commercial_type,
    segment_for_type,
)

__all__ = [
    "PositionReport",
    "ClassBPositionReport",
    "StaticVoyageData",
    "StaticDataReportA",
    "StaticDataReportB",
    "NavigationStatus",
    "NmeaSentence",
    "NmeaAssembler",
    "checksum",
    "format_sentence",
    "parse_sentence",
    "encode_message",
    "decode_payload",
    "decode_sentences",
    "read_csv",
    "write_csv",
    "CSV_COLUMNS",
    "MarketSegment",
    "segment_for_type",
    "is_commercial_type",
    "is_valid_latitude",
    "is_valid_longitude",
    "is_valid_speed",
    "is_valid_course",
    "is_valid_heading",
    "is_valid_status",
    "is_valid_mmsi",
    "is_valid_position_report",
]
