"""CSV interchange for decoded position reports.

The reproduction's stand-in for an archived AIS dataset is a CSV with the
NOAA AIS open-data column flavour (MMSI, BaseDateTime, LAT, LON, SOG, COG,
Heading, Status).  Timestamps are ISO-8601 UTC on write and either
ISO-8601 or raw epoch seconds on read.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Iterator
from datetime import datetime, timezone
from pathlib import Path

from repro.ais.messages import PositionReport

#: Column order of the interchange format.
CSV_COLUMNS = (
    "MMSI",
    "BaseDateTime",
    "LAT",
    "LON",
    "SOG",
    "COG",
    "Heading",
    "Status",
)


def _format_ts(epoch_ts: float) -> str:
    return (
        datetime.fromtimestamp(epoch_ts, tz=timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%S")
    )


def _parse_ts(text: str) -> float:
    try:
        return float(text)
    except ValueError:
        pass
    parsed = datetime.strptime(text, "%Y-%m-%dT%H:%M:%S")
    return parsed.replace(tzinfo=timezone.utc).timestamp()


def write_csv(path: str | Path, reports: Iterable[PositionReport]) -> int:
    """Write reports to a CSV file; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for report in reports:
            writer.writerow(
                (
                    report.mmsi,
                    _format_ts(report.epoch_ts),
                    f"{report.lat:.6f}",
                    f"{report.lon:.6f}",
                    f"{report.sog:.1f}",
                    f"{report.cog:.1f}",
                    report.heading,
                    report.status,
                )
            )
            count += 1
    return count


def read_csv(path: str | Path) -> Iterator[PositionReport]:
    """Stream reports from a CSV file written by :func:`write_csv`.

    Rows with unparseable fields are skipped (dirty archives are the
    norm; the cleaning stage handles semantic validation separately).
    """
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            try:
                yield PositionReport(
                    mmsi=int(row["MMSI"]),
                    epoch_ts=_parse_ts(row["BaseDateTime"]),
                    lat=float(row["LAT"]),
                    lon=float(row["LON"]),
                    sog=float(row["SOG"]),
                    cog=float(row["COG"]),
                    heading=int(row["Heading"]),
                    status=int(row["Status"]),
                )
            except (KeyError, TypeError, ValueError):
                # TypeError covers short rows, where DictReader fills the
                # missing trailing fields with None.
                continue
