"""Encode/decode AIS messages to and from armored payloads.

Field layouts follow ITU-R M.1371: positions are 1/10000-minute integers,
speeds are decknots, courses are decidegrees.  ``encode_message`` produces
framed NMEA sentences (splitting type 5 across fragments);
``decode_sentences`` is the streaming inverse used by the ingestion
examples.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.ais.messages import (
    ClassBPositionReport,
    PositionReport,
    StaticDataReportA,
    StaticDataReportB,
    StaticVoyageData,
)
from repro.ais.nmea import NmeaAssembler, parse_sentence, split_payload
from repro.ais.sixbit import BitReader, BitWriter, armor, unarmor

AisMessage = (
    PositionReport
    | ClassBPositionReport
    | StaticVoyageData
    | StaticDataReportA
    | StaticDataReportB
)

_LATLON_SCALE = 600_000.0  # 1/10000 arc-minute units


def encode_message(
    message: AisMessage, message_id: str = "1", channel: str = "A"
) -> list[str]:
    """Encode a message model into one or more framed NMEA sentences."""
    if isinstance(message, PositionReport):
        bits = _encode_position(message)
    elif isinstance(message, ClassBPositionReport):
        bits = _encode_class_b(message)
    elif isinstance(message, StaticVoyageData):
        bits = _encode_static_voyage(message)
    elif isinstance(message, StaticDataReportA):
        bits = _encode_static_a(message)
    elif isinstance(message, StaticDataReportB):
        bits = _encode_static_b(message)
    else:
        raise TypeError(f"cannot encode message of type {type(message).__name__}")
    payload, fill = armor(bits)
    return split_payload(payload, fill, message_id=message_id, channel=channel)


def decode_payload(payload: str, fill_bits: int = 0, epoch_ts: float = 0.0):
    """Decode an armored payload into a message model.

    ``epoch_ts`` stamps position reports with a receive time (the payload
    itself only carries the UTC second).  Unsupported message types raise
    :class:`ValueError` — callers stream past them.
    """
    reader = BitReader(unarmor(payload, fill_bits))
    msg_type = reader.read_uint(6)
    if msg_type in (1, 2, 3):
        return _decode_position(reader, msg_type, epoch_ts)
    if msg_type == 5:
        return _decode_static_voyage(reader)
    if msg_type == 18:
        return _decode_class_b(reader, epoch_ts)
    if msg_type == 24:
        return _decode_static_data(reader)
    raise ValueError(f"unsupported AIS message type {msg_type}")


def decode_sentences(
    lines: Iterable[str], epoch_ts: float = 0.0
) -> Iterator[AisMessage]:
    """Stream-decode NMEA lines, assembling fragments and skipping lines
    that fail framing, checksum or payload decoding (as a live receiver
    pipeline does)."""
    assembler = NmeaAssembler()
    for line in lines:
        try:
            sentence = parse_sentence(line)
        except ValueError:
            continue
        completed = assembler.push(sentence)
        if completed is None:
            continue
        payload, fill = completed
        try:
            yield decode_payload(payload, fill, epoch_ts=epoch_ts)
        except ValueError:
            continue


# -- position reports (types 1-3) -------------------------------------------


def _encode_position(msg: PositionReport) -> list[int]:
    writer = BitWriter()
    writer.write_uint(msg.msg_type, 6)
    writer.write_uint(msg.repeat, 2)
    writer.write_uint(msg.mmsi, 30)
    writer.write_uint(msg.status, 4)
    writer.write_int(msg.rot, 8)
    writer.write_uint(min(1023, round(msg.sog * 10.0)), 10)
    writer.write_bool(msg.accuracy)
    writer.write_int(round(msg.lon * _LATLON_SCALE), 28)
    writer.write_int(round(msg.lat * _LATLON_SCALE), 27)
    writer.write_uint(min(4095, round(msg.cog * 10.0)), 12)
    writer.write_uint(msg.heading, 9)
    writer.write_uint(msg.utc_second, 6)
    writer.write_uint(msg.maneuver, 2)
    writer.write_uint(0, 3)  # spare
    writer.write_bool(msg.raim)
    writer.write_uint(msg.radio, 19)
    return writer.to_bits()


def _decode_position(
    reader: BitReader, msg_type: int, epoch_ts: float
) -> PositionReport:
    repeat = reader.read_uint(2)
    mmsi = reader.read_uint(30)
    status = reader.read_uint(4)
    rot = reader.read_int(8)
    sog = reader.read_uint(10) / 10.0
    accuracy = reader.read_bool()
    lon = reader.read_int(28) / _LATLON_SCALE
    lat = reader.read_int(27) / _LATLON_SCALE
    cog = reader.read_uint(12) / 10.0
    heading = reader.read_uint(9)
    reader.read_uint(6)  # utc second — superseded by epoch_ts
    maneuver = reader.read_uint(2)
    reader.read_uint(3)  # spare
    raim = reader.read_bool()
    radio = reader.read_uint(19)
    return PositionReport(
        mmsi=mmsi,
        epoch_ts=epoch_ts,
        lat=lat,
        lon=lon,
        sog=sog,
        cog=cog,
        heading=heading,
        status=status,
        rot=rot,
        msg_type=msg_type,
        repeat=repeat,
        accuracy=accuracy,
        maneuver=maneuver,
        raim=raim,
        radio=radio,
    )


# -- class B position (type 18) ----------------------------------------------


def _encode_class_b(msg: ClassBPositionReport) -> list[int]:
    writer = BitWriter()
    writer.write_uint(18, 6)
    writer.write_uint(msg.repeat, 2)
    writer.write_uint(msg.mmsi, 30)
    writer.write_uint(0, 8)  # reserved
    writer.write_uint(min(1023, round(msg.sog * 10.0)), 10)
    writer.write_bool(msg.accuracy)
    writer.write_int(round(msg.lon * _LATLON_SCALE), 28)
    writer.write_int(round(msg.lat * _LATLON_SCALE), 27)
    writer.write_uint(min(4095, round(msg.cog * 10.0)), 12)
    writer.write_uint(msg.heading, 9)
    writer.write_uint(int(msg.epoch_ts) % 60, 6)
    writer.write_uint(0, 2)  # reserved
    writer.write_bool(True)  # carrier-sense unit
    writer.write_bool(False)  # no display
    writer.write_bool(False)  # no DSC
    writer.write_bool(True)  # whole-band
    writer.write_bool(False)  # no message 22 handling
    writer.write_bool(False)  # autonomous mode
    writer.write_bool(msg.raim)
    writer.write_uint(msg.radio, 20)
    return writer.to_bits()


def _decode_class_b(reader: BitReader, epoch_ts: float) -> ClassBPositionReport:
    repeat = reader.read_uint(2)
    mmsi = reader.read_uint(30)
    reader.read_uint(8)  # reserved
    sog = reader.read_uint(10) / 10.0
    accuracy = reader.read_bool()
    lon = reader.read_int(28) / _LATLON_SCALE
    lat = reader.read_int(27) / _LATLON_SCALE
    cog = reader.read_uint(12) / 10.0
    heading = reader.read_uint(9)
    reader.read_uint(6)  # utc second
    reader.read_uint(2)  # reserved
    for _ in range(6):  # cs/display/dsc/band/msg22/assigned flags
        reader.read_bool()
    raim = reader.read_bool()
    radio = reader.read_uint(20)
    return ClassBPositionReport(
        mmsi=mmsi,
        epoch_ts=epoch_ts,
        lat=lat,
        lon=lon,
        sog=sog,
        cog=cog,
        heading=heading,
        repeat=repeat,
        accuracy=accuracy,
        raim=raim,
        radio=radio,
    )


# -- static & voyage data (type 5) -------------------------------------------


def _encode_static_voyage(msg: StaticVoyageData) -> list[int]:
    writer = BitWriter()
    writer.write_uint(5, 6)
    writer.write_uint(msg.repeat, 2)
    writer.write_uint(msg.mmsi, 30)
    writer.write_uint(msg.ais_version, 2)
    writer.write_uint(msg.imo, 30)
    writer.write_string(msg.callsign, 42)
    writer.write_string(msg.shipname, 120)
    writer.write_uint(msg.ship_type, 8)
    writer.write_uint(msg.dim_bow, 9)
    writer.write_uint(msg.dim_stern, 9)
    writer.write_uint(msg.dim_port, 6)
    writer.write_uint(msg.dim_starboard, 6)
    writer.write_uint(msg.epfd, 4)
    writer.write_uint(msg.eta_month, 4)
    writer.write_uint(msg.eta_day, 5)
    writer.write_uint(msg.eta_hour, 5)
    writer.write_uint(msg.eta_minute, 6)
    writer.write_uint(min(255, round(msg.draught * 10.0)), 8)
    writer.write_string(msg.destination, 120)
    writer.write_bool(msg.dte)
    writer.write_uint(0, 1)  # spare
    return writer.to_bits()


def _decode_static_voyage(reader: BitReader) -> StaticVoyageData:
    repeat = reader.read_uint(2)
    mmsi = reader.read_uint(30)
    ais_version = reader.read_uint(2)
    imo = reader.read_uint(30)
    callsign = reader.read_string(42)
    shipname = reader.read_string(120)
    ship_type = reader.read_uint(8)
    dim_bow = reader.read_uint(9)
    dim_stern = reader.read_uint(9)
    dim_port = reader.read_uint(6)
    dim_starboard = reader.read_uint(6)
    epfd = reader.read_uint(4)
    eta_month = reader.read_uint(4)
    eta_day = reader.read_uint(5)
    eta_hour = reader.read_uint(5)
    eta_minute = reader.read_uint(6)
    draught = reader.read_uint(8) / 10.0
    destination = reader.read_string(120)
    dte = reader.read_bool()
    return StaticVoyageData(
        mmsi=mmsi,
        imo=imo,
        callsign=callsign,
        shipname=shipname,
        ship_type=ship_type,
        dim_bow=dim_bow,
        dim_stern=dim_stern,
        dim_port=dim_port,
        dim_starboard=dim_starboard,
        eta_month=eta_month,
        eta_day=eta_day,
        eta_hour=eta_hour,
        eta_minute=eta_minute,
        draught=draught,
        destination=destination,
        repeat=repeat,
        ais_version=ais_version,
        epfd=epfd,
        dte=dte,
    )


# -- static data report (type 24) --------------------------------------------


def _encode_static_a(msg: StaticDataReportA) -> list[int]:
    writer = BitWriter()
    writer.write_uint(24, 6)
    writer.write_uint(msg.repeat, 2)
    writer.write_uint(msg.mmsi, 30)
    writer.write_uint(0, 2)  # part number A
    writer.write_string(msg.shipname, 120)
    writer.write_uint(0, 8)  # spare
    return writer.to_bits()


def _encode_static_b(msg: StaticDataReportB) -> list[int]:
    writer = BitWriter()
    writer.write_uint(24, 6)
    writer.write_uint(msg.repeat, 2)
    writer.write_uint(msg.mmsi, 30)
    writer.write_uint(1, 2)  # part number B
    writer.write_uint(msg.ship_type, 8)
    writer.write_string(msg.vendor_id, 42)
    writer.write_string(msg.callsign, 42)
    writer.write_uint(msg.dim_bow, 9)
    writer.write_uint(msg.dim_stern, 9)
    writer.write_uint(msg.dim_port, 6)
    writer.write_uint(msg.dim_starboard, 6)
    writer.write_uint(0, 6)  # spare
    return writer.to_bits()


def _decode_static_data(reader: BitReader):
    repeat = reader.read_uint(2)
    mmsi = reader.read_uint(30)
    part = reader.read_uint(2)
    if part == 0:
        shipname = reader.read_string(120)
        return StaticDataReportA(mmsi=mmsi, shipname=shipname, repeat=repeat)
    if part == 1:
        ship_type = reader.read_uint(8)
        vendor_id = reader.read_string(42)
        callsign = reader.read_string(42)
        dim_bow = reader.read_uint(9)
        dim_stern = reader.read_uint(9)
        dim_port = reader.read_uint(6)
        dim_starboard = reader.read_uint(6)
        return StaticDataReportB(
            mmsi=mmsi,
            ship_type=ship_type,
            vendor_id=vendor_id,
            callsign=callsign,
            dim_bow=dim_bow,
            dim_stern=dim_stern,
            dim_port=dim_port,
            dim_starboard=dim_starboard,
            repeat=repeat,
        )
    raise ValueError(f"invalid type-24 part number {part}")
