"""NMEA 0183 framing for AIS: ``!AIVDM`` sentences.

An AIS receiver emits lines like::

    !AIVDM,1,1,,A,15MgK45P3@G?fl0E`JbR0OwT0@MS,0*4E

with fields: fragment count, fragment number, sequential message id (for
multi-fragment messages), radio channel, armored payload, fill bits, and an
XOR checksum.  Payloads longer than a sentence (message type 5) are split
across fragments; :class:`NmeaAssembler` reassembles them in stream order.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Maximum armored payload characters per sentence (NMEA's 82-char line
#: budget leaves room for 60 payload characters in an AIVDM sentence).
MAX_PAYLOAD_CHARS = 60


@dataclass(frozen=True, slots=True)
class NmeaSentence:
    """One parsed ``!AIVDM``/``!AIVDO`` sentence."""

    talker: str
    fragment_count: int
    fragment_number: int
    message_id: str
    channel: str
    payload: str
    fill_bits: int


def checksum(body: str) -> int:
    """XOR checksum over the characters between '!' and '*'."""
    value = 0
    for char in body:
        value ^= ord(char)
    return value


def format_sentence(
    payload: str,
    fill_bits: int,
    fragment_count: int = 1,
    fragment_number: int = 1,
    message_id: str = "",
    channel: str = "A",
    talker: str = "AIVDM",
) -> str:
    """Render one framed sentence with its checksum."""
    body = (
        f"{talker},{fragment_count},{fragment_number},{message_id},"
        f"{channel},{payload},{fill_bits}"
    )
    return f"!{body}*{checksum(body):02X}"


def split_payload(
    payload: str, fill_bits: int, message_id: str, channel: str = "A"
) -> list[str]:
    """Frame an armored payload, splitting across sentences when needed."""
    chunks = [
        payload[i : i + MAX_PAYLOAD_CHARS]
        for i in range(0, len(payload), MAX_PAYLOAD_CHARS)
    ] or [""]
    total = len(chunks)
    sentences = []
    for number, chunk in enumerate(chunks, start=1):
        sentences.append(
            format_sentence(
                chunk,
                fill_bits if number == total else 0,
                fragment_count=total,
                fragment_number=number,
                message_id=message_id if total > 1 else "",
                channel=channel,
            )
        )
    return sentences


def parse_sentence(line: str) -> NmeaSentence:
    """Parse and checksum-verify one sentence line.

    Raises :class:`ValueError` on malformed framing or checksum mismatch.
    """
    line = line.strip()
    if not line.startswith("!"):
        raise ValueError(f"not an NMEA sentence: {line!r}")
    try:
        body, declared = line[1:].rsplit("*", 1)
    except ValueError as exc:
        raise ValueError(f"missing checksum in sentence: {line!r}") from exc
    if int(declared, 16) != checksum(body):
        raise ValueError(f"checksum mismatch in sentence: {line!r}")
    fields = body.split(",")
    if len(fields) != 7:
        raise ValueError(f"expected 7 fields, got {len(fields)}: {line!r}")
    talker, frag_count, frag_num, msg_id, channel, payload, fill = fields
    if talker not in ("AIVDM", "AIVDO"):
        raise ValueError(f"unsupported talker {talker!r}")
    return NmeaSentence(
        talker=talker,
        fragment_count=int(frag_count),
        fragment_number=int(frag_num),
        message_id=msg_id,
        channel=channel,
        payload=payload,
        fill_bits=int(fill),
    )


class NmeaAssembler:
    """Reassembles multi-fragment messages from a sentence stream.

    Feed sentences in arrival order with :meth:`push`; each call returns a
    completed ``(payload, fill_bits)`` pair or ``None`` while fragments are
    pending.  Incomplete groups are evicted when a conflicting group id
    arrives (mirroring receiver behaviour on channel collisions).
    """

    def __init__(self) -> None:
        self._pending: dict[tuple[str, str], dict[int, NmeaSentence]] = {}

    def push(self, sentence: NmeaSentence) -> tuple[str, int] | None:
        """Add one sentence; return the completed payload when whole."""
        if sentence.fragment_count == 1:
            return sentence.payload, sentence.fill_bits
        key = (sentence.message_id, sentence.channel)
        group = self._pending.setdefault(key, {})
        if sentence.fragment_number in group:
            # A new message reused the id before the old one completed.
            group.clear()
        group[sentence.fragment_number] = sentence
        if len(group) < sentence.fragment_count:
            return None
        del self._pending[key]
        ordered = [group[i] for i in sorted(group)]
        payload = "".join(s.payload for s in ordered)
        return payload, ordered[-1].fill_bits

    @property
    def pending_groups(self) -> int:
        """Number of fragment groups still awaiting completion."""
        return len(self._pending)
