"""Protocol range validation (the paper's cleaning predicates, §3.3.1).

"Values of longitude, latitude, speed, course, heading or status that do
not comply with its expected value range are filtered out."  These
predicates treat the protocol's explicit "not available" sentinels as
invalid too — a report without a usable position or speed contributes
nothing to the inventory.
"""

from __future__ import annotations

from repro.ais.messages import (
    COG_NOT_AVAILABLE,
    HEADING_NOT_AVAILABLE,
    LAT_NOT_AVAILABLE,
    LON_NOT_AVAILABLE,
    SOG_NOT_AVAILABLE,
    PositionReport,
)

#: Maximum plausible speed over ground in knots for value-range validation.
#: (Distinct from the 50-knot *transition feasibility* threshold, which
#: applies to the implied speed between consecutive reports.)
MAX_VALID_SOG = 102.2


def is_valid_latitude(lat: float) -> bool:
    """In [-90, 90] and not the 91.0 sentinel."""
    return -90.0 <= lat <= 90.0 and lat != LAT_NOT_AVAILABLE


def is_valid_longitude(lon: float) -> bool:
    """In [-180, 180] and not the 181.0 sentinel."""
    return -180.0 <= lon <= 180.0 and lon != LON_NOT_AVAILABLE


def is_valid_speed(sog: float) -> bool:
    """In [0, 102.2] knots; 102.3 is the protocol's 'not available'."""
    return 0.0 <= sog <= MAX_VALID_SOG and sog != SOG_NOT_AVAILABLE


def is_valid_course(cog: float) -> bool:
    """In [0, 360); 360.0 is the protocol's 'not available'."""
    return 0.0 <= cog < COG_NOT_AVAILABLE


def is_valid_heading(heading: int) -> bool:
    """In [0, 359]; 511 is the protocol's 'not available'.

    Heading-unavailable is tolerated by :func:`is_valid_position_report`
    (many class-A installations have no gyro feed); this predicate is for
    callers that specifically need a usable heading.
    """
    return 0 <= heading < 360 and heading != HEADING_NOT_AVAILABLE


def is_valid_status(status: int) -> bool:
    """A defined navigation-status code (0–15)."""
    return 0 <= status <= 15


def is_valid_mmsi(mmsi: int) -> bool:
    """A nine-digit Maritime Mobile Service Identity."""
    return 100_000_000 <= mmsi <= 999_999_999


def is_valid_position_report(report: PositionReport) -> bool:
    """The conjunction the cleaning stage applies to every record.

    Heading may be 'not available' (511) — the feature extractor simply
    skips heading statistics for such records — but position, speed,
    course, status and MMSI must all be in range.
    """
    return (
        is_valid_mmsi(report.mmsi)
        and is_valid_latitude(report.lat)
        and is_valid_longitude(report.lon)
        and is_valid_speed(report.sog)
        and is_valid_course(report.cog)
        and (is_valid_heading(report.heading) or report.heading == HEADING_NOT_AVAILABLE)
        and is_valid_status(report.status)
    )
