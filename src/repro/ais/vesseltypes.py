"""AIS ship-type codes → market segments.

The paper breaks statistics down "per market segment each vessel belongs
to" and filters the dataset to the commercial fleet (cargo/tanker/
passenger vessels over 5000 GRT with class-A transceivers).  AIS encodes
the ship type as a two-digit code in message types 5 and 24B; the first
digit carries the category.
"""

from __future__ import annotations

from enum import Enum


class MarketSegment(str, Enum):
    """Coarse market segments used as the vessel-type grouping key."""

    CARGO = "cargo"
    CONTAINER = "container"
    TANKER = "tanker"
    PASSENGER = "passenger"
    FISHING = "fishing"
    TUG = "tug"
    PLEASURE = "pleasure"
    HIGH_SPEED = "high_speed"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Segments the paper's commercial-fleet filter keeps.
COMMERCIAL_SEGMENTS = frozenset(
    {
        MarketSegment.CARGO,
        MarketSegment.CONTAINER,
        MarketSegment.TANKER,
        MarketSegment.PASSENGER,
    }
)

#: AIS type codes conventionally used for container ships by fleet
#: databases (AIS itself has no container code; 71/72 "cargo hazardous A/B"
#: are commonly re-labelled from registry data — we follow that practice so
#: the container segment exists as its own market).
_CONTAINER_CODES = frozenset({71, 72})


def segment_for_type(ship_type: int | None) -> MarketSegment:
    """Map an AIS ship-type code (0–99) to a market segment.

    Unknown, missing or reserved codes map to ``OTHER``.
    """
    if ship_type is None or not 0 <= ship_type <= 99:
        return MarketSegment.OTHER
    if ship_type in _CONTAINER_CODES:
        return MarketSegment.CONTAINER
    decade = ship_type // 10
    if decade == 3:
        return MarketSegment.FISHING if ship_type == 30 else MarketSegment.PLEASURE
    if decade == 4:
        return MarketSegment.HIGH_SPEED
    if ship_type in (52, 31, 32):
        return MarketSegment.TUG
    if decade == 6:
        return MarketSegment.PASSENGER
    if decade == 7:
        return MarketSegment.CARGO
    if decade == 8:
        return MarketSegment.TANKER
    return MarketSegment.OTHER


def is_commercial_type(ship_type: int | None) -> bool:
    """Whether a ship-type code belongs to the commercial fleet the paper
    analyses."""
    return segment_for_type(ship_type) in COMMERCIAL_SEGMENTS
