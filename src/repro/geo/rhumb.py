"""Rhumb-line (loxodrome) navigation.

A rhumb line crosses every meridian at the same angle — the track a vessel
follows when holding a constant compass course.  The simulator uses rhumb
legs for short coastal hops where real crews steer constant headings, and
the tests cross-check rhumb against great-circle results (a rhumb line is
never shorter).
"""

from __future__ import annotations

import math

from repro.geo.constants import EARTH_RADIUS_M


def _mercator_y(lat_rad: float) -> float:
    # Guard the projective singularity at the poles.
    lat_rad = min(math.pi / 2 - 1e-10, max(-math.pi / 2 + 1e-10, lat_rad))
    return math.log(math.tan(math.pi / 4.0 + lat_rad / 2.0))


def rhumb_distance_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Length of the rhumb line between two points, in metres."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lon2 - lon1)
    # Take the shorter way around the earth.
    if abs(dlmb) > math.pi:
        dlmb = dlmb - math.copysign(2.0 * math.pi, dlmb)
    dpsi = _mercator_y(phi2) - _mercator_y(phi1)
    # dphi/dpsi → cos(φ) as dphi → 0, but the quotient is computed from a
    # catastrophically cancelled dpsi well before dphi reaches zero, so
    # switch to the (second-order accurate) midpoint cosine early.
    if abs(dpsi) > 1e-6:
        q = dphi / dpsi
    else:
        q = math.cos((phi1 + phi2) / 2.0)
    return math.hypot(dphi, q * dlmb) * EARTH_RADIUS_M


def rhumb_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Constant bearing of the rhumb line from point 1 to point 2, [0, 360)."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlmb = math.radians(lon2 - lon1)
    if abs(dlmb) > math.pi:
        dlmb = dlmb - math.copysign(2.0 * math.pi, dlmb)
    dpsi = _mercator_y(phi2) - _mercator_y(phi1)
    return math.degrees(math.atan2(dlmb, dpsi)) % 360.0


def rhumb_destination(
    lat: float, lon: float, bearing_deg: float, distance_m: float
) -> tuple[float, float]:
    """Destination after following a constant bearing for a given distance."""
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(lat)
    lmb1 = math.radians(lon)
    dphi = delta * math.cos(theta)
    phi2 = phi1 + dphi
    # Clamp latitude if the track runs over a pole.
    phi2 = min(math.pi / 2, max(-math.pi / 2, phi2))
    dpsi = _mercator_y(phi2) - _mercator_y(phi1)
    if abs(dpsi) > 1e-6:
        q = dphi / dpsi
    else:
        q = math.cos((phi1 + phi2) / 2.0)
    dlmb = delta * math.sin(theta) / q if q != 0.0 else 0.0
    lon2 = math.degrees(lmb1 + dlmb)
    lon2 = ((lon2 + 180.0) % 360.0) - 180.0
    if lon2 == -180.0:
        lon2 = 180.0
    return math.degrees(phi2), lon2
