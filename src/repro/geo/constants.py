"""Physical constants for the spherical earth model.

All distance computations in this project use the mean earth radius; the
error versus an ellipsoidal model is below 0.5 %, far under AIS positional
noise (tens to hundreds of metres).
"""

#: Mean earth radius in metres (IUGG mean radius R1).
EARTH_RADIUS_M = 6_371_008.8

#: Total surface area of the spherical earth in km².
EARTH_AREA_KM2 = 4.0 * 3.141592653589793 * (EARTH_RADIUS_M / 1000.0) ** 2

#: One international nautical mile in metres.
NAUTICAL_MILE_M = 1852.0

#: One knot expressed in metres per second.
KNOT_MS = NAUTICAL_MILE_M / 3600.0
