"""Great-circle track interpolation and sampling.

The voyage simulator lays each leg of a route as a great circle between
consecutive waypoints and samples positions along it at the AIS reporting
cadence.  Interpolation uses spherical linear interpolation (slerp) on the
unit sphere, which is exact for great circles.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.geo.constants import EARTH_RADIUS_M
from repro.geo.distance import haversine_m


def _to_vector(lat: float, lon: float) -> tuple[float, float, float]:
    phi = math.radians(lat)
    lmb = math.radians(lon)
    return (
        math.cos(phi) * math.cos(lmb),
        math.cos(phi) * math.sin(lmb),
        math.sin(phi),
    )


def _to_latlon(x: float, y: float, z: float) -> tuple[float, float]:
    hyp = math.hypot(x, y)
    lat = math.degrees(math.atan2(z, hyp))
    lon = math.degrees(math.atan2(y, x))
    return lat, lon


def interpolate(
    lat1: float, lon1: float, lat2: float, lon2: float, fraction: float
) -> tuple[float, float]:
    """Point a given fraction of the way along the great circle from 1 to 2.

    ``fraction`` is clamped to [0, 1].  Antipodal endpoints (where the great
    circle is ambiguous) fall back to the starting point for fraction < 0.5
    and the end point otherwise — the simulator never generates such legs,
    but the function must not produce NaNs for arbitrary inputs.
    """
    fraction = min(1.0, max(0.0, fraction))
    v1 = _to_vector(lat1, lon1)
    v2 = _to_vector(lat2, lon2)
    dot = sum(a * b for a, b in zip(v1, v2))
    dot = min(1.0, max(-1.0, dot))
    omega = math.acos(dot)
    if omega < 1e-12:
        return lat1, lon1
    sin_omega = math.sin(omega)
    if sin_omega < 1e-12:
        return (lat1, lon1) if fraction < 0.5 else (lat2, lon2)
    w1 = math.sin((1.0 - fraction) * omega) / sin_omega
    w2 = math.sin(fraction * omega) / sin_omega
    vec = tuple(w1 * a + w2 * b for a, b in zip(v1, v2))
    return _to_latlon(*vec)


def sample_track(
    lat1: float,
    lon1: float,
    lat2: float,
    lon2: float,
    spacing_m: float,
    include_end: bool = True,
) -> list[tuple[float, float]]:
    """Sample points every ``spacing_m`` along the great circle from 1 to 2.

    Always includes the start point; includes the exact end point when
    ``include_end`` is true.  ``spacing_m`` must be positive.
    """
    if spacing_m <= 0.0:
        raise ValueError(f"spacing_m must be positive, got {spacing_m}")
    total = haversine_m(lat1, lon1, lat2, lon2)
    points = [(lat1, lon1)]
    if total == 0.0:
        return points
    steps = int(total // spacing_m)
    for i in range(1, steps + 1):
        frac = (i * spacing_m) / total
        if frac >= 1.0:
            break
        points.append(interpolate(lat1, lon1, lat2, lon2, frac))
    if include_end:
        points.append((lat2, lon2))
    return points


def track_length_m(waypoints: Sequence[tuple[float, float]]) -> float:
    """Total great-circle length of a polyline of (lat, lon) waypoints."""
    total = 0.0
    for (lat1, lon1), (lat2, lon2) in zip(waypoints, waypoints[1:]):
        total += haversine_m(lat1, lon1, lat2, lon2)
    return total


def angular_distance_rad(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Central angle between two points in radians."""
    return haversine_m(lat1, lon1, lat2, lon2) / EARTH_RADIUS_M
