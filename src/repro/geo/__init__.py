"""Geodesy primitives shared by every other subsystem.

The maritime pipeline constantly converts between positions, distances,
bearings and tracks.  This package implements those primitives on a
spherical earth model (sufficient for AIS analytics, where positional noise
dwarfs the ellipsoidal correction):

- :mod:`repro.geo.distance` — haversine distances, initial bearings,
  destination points and cross-track errors.
- :mod:`repro.geo.greatcircle` — great-circle interpolation and sampling,
  used by the voyage simulator to lay tracks between waypoints.
- :mod:`repro.geo.rhumb` — rhumb-line (constant-bearing) navigation, the
  other steering mode real vessels use on short legs.
- :mod:`repro.geo.circular` — statistics on angular quantities (course,
  heading), where the arithmetic mean of 359° and 1° must be 0°, not 180°.
- :mod:`repro.geo.polygon` — point-in-polygon and bounding-box tests used
  by the port geofencing stage.
"""

from repro.geo.constants import (
    EARTH_RADIUS_M,
    EARTH_AREA_KM2,
    KNOT_MS,
    NAUTICAL_MILE_M,
)
from repro.geo.distance import (
    haversine_m,
    haversine_nm,
    initial_bearing_deg,
    destination_point,
    cross_track_distance_m,
    speed_between_knots,
)
from repro.geo.greatcircle import (
    interpolate,
    sample_track,
    track_length_m,
)
from repro.geo.rhumb import rhumb_distance_m, rhumb_bearing_deg, rhumb_destination
from repro.geo.circular import (
    angular_difference_deg,
    circular_mean_deg,
    circular_resultant,
    circular_std_deg,
    normalize_deg,
)
from repro.geo.polygon import BoundingBox, point_in_polygon, polygon_bbox

__all__ = [
    "EARTH_RADIUS_M",
    "EARTH_AREA_KM2",
    "KNOT_MS",
    "NAUTICAL_MILE_M",
    "haversine_m",
    "haversine_nm",
    "initial_bearing_deg",
    "destination_point",
    "cross_track_distance_m",
    "speed_between_knots",
    "interpolate",
    "sample_track",
    "track_length_m",
    "rhumb_distance_m",
    "rhumb_bearing_deg",
    "rhumb_destination",
    "angular_difference_deg",
    "circular_mean_deg",
    "circular_resultant",
    "circular_std_deg",
    "normalize_deg",
    "BoundingBox",
    "point_in_polygon",
    "polygon_bbox",
]
