"""Circular (directional) statistics.

Course-over-ground and heading are angles: averaging 359° and 1° must give
0°, not 180°.  Table 3 of the paper marks their means with an asterisk for
exactly this reason.  The functions here operate on degrees in [0, 360) and
are the scalar counterparts of the mergeable
:class:`repro.sketches.circular.CircularMoments` sketch.
"""

from __future__ import annotations

import math
from collections.abc import Iterable


def normalize_deg(angle: float) -> float:
    """Normalise any angle in degrees into [0, 360)."""
    result = math.fmod(angle, 360.0)
    if result < 0.0:
        result += 360.0
    # Adding 360 to a tiny negative rounds to exactly 360.0; keep the
    # half-open interval honest.
    if result >= 360.0:
        result = 0.0
    return result


def angular_difference_deg(a: float, b: float) -> float:
    """Smallest absolute difference between two angles, in [0, 180]."""
    diff = abs(normalize_deg(a) - normalize_deg(b))
    return min(diff, 360.0 - diff)


def circular_resultant(angles_deg: Iterable[float]) -> tuple[float, float, int]:
    """Sum of unit vectors for a collection of angles.

    Returns ``(sum_cos, sum_sin, count)``; the building block shared by
    mean, resultant length and circular standard deviation.
    """
    sum_cos = 0.0
    sum_sin = 0.0
    count = 0
    for angle in angles_deg:
        rad = math.radians(angle)
        sum_cos += math.cos(rad)
        sum_sin += math.sin(rad)
        count += 1
    return sum_cos, sum_sin, count


def circular_mean_deg(angles_deg: Iterable[float]) -> float:
    """Circular mean of angles in degrees, in [0, 360).

    Raises :class:`ValueError` on an empty input or when the resultant is
    (numerically) zero, i.e. the directions perfectly cancel and no mean
    direction exists.
    """
    sum_cos, sum_sin, count = circular_resultant(angles_deg)
    if count == 0:
        raise ValueError("circular mean of an empty collection is undefined")
    if math.hypot(sum_cos, sum_sin) < 1e-12 * count:
        raise ValueError("circular mean is undefined: directions cancel out")
    return normalize_deg(math.degrees(math.atan2(sum_sin, sum_cos)))


def circular_std_deg(angles_deg: Iterable[float]) -> float:
    """Circular standard deviation in degrees.

    Defined as ``sqrt(-2 ln R̄)`` (in radians, converted to degrees), where
    R̄ is the mean resultant length.  Zero for identical angles, growing
    without bound as directions become uniform.
    """
    sum_cos, sum_sin, count = circular_resultant(angles_deg)
    if count == 0:
        raise ValueError("circular std of an empty collection is undefined")
    r_bar = math.hypot(sum_cos, sum_sin) / count
    r_bar = min(1.0, max(1e-300, r_bar))
    return math.degrees(math.sqrt(-2.0 * math.log(r_bar)))
