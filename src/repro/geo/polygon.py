"""Planar point-in-polygon and bounding-box utilities.

Port geofences are small (a few kilometres across), so the flat-earth
approximation inside a geofence is exact for all practical purposes.
Polygons are sequences of (lat, lon) vertices; the last vertex is
implicitly joined back to the first.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Geographic bounding box; ``lon_min`` may exceed ``lon_max`` when the
    box crosses the antimeridian."""

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self) -> None:
        if self.lat_min > self.lat_max:
            raise ValueError(
                f"lat_min {self.lat_min} exceeds lat_max {self.lat_max}"
            )

    def contains(self, lat: float, lon: float) -> bool:
        """Whether the point falls inside (edges inclusive)."""
        if not (self.lat_min <= lat <= self.lat_max):
            return False
        if self.lon_min <= self.lon_max:
            return self.lon_min <= lon <= self.lon_max
        # Antimeridian-crossing box.
        return lon >= self.lon_min or lon <= self.lon_max

    def expand(self, margin_deg: float) -> "BoundingBox":
        """A new box grown by ``margin_deg`` on every side (lat clamped)."""
        return BoundingBox(
            lat_min=max(-90.0, self.lat_min - margin_deg),
            lat_max=min(90.0, self.lat_max + margin_deg),
            lon_min=self.lon_min - margin_deg,
            lon_max=self.lon_max + margin_deg,
        )


def point_in_polygon(
    lat: float, lon: float, vertices: Sequence[tuple[float, float]]
) -> bool:
    """Even-odd ray-casting point-in-polygon test.

    Points exactly on an edge may land on either side (standard ray-casting
    behaviour); geofence radii are chosen so this never matters.
    """
    if len(vertices) < 3:
        return False
    inside = False
    j = len(vertices) - 1
    for i in range(len(vertices)):
        lat_i, lon_i = vertices[i]
        lat_j, lon_j = vertices[j]
        crosses = (lon_i > lon) != (lon_j > lon)
        if crosses:
            intersect_lat = (lat_j - lat_i) * (lon - lon_i) / (lon_j - lon_i) + lat_i
            if lat < intersect_lat:
                inside = not inside
        j = i
    return inside


def polygon_bbox(vertices: Sequence[tuple[float, float]]) -> BoundingBox:
    """Axis-aligned bounding box of a polygon (no antimeridian handling;
    geofence polygons never span it)."""
    if not vertices:
        raise ValueError("cannot compute bounding box of an empty polygon")
    lats = [v[0] for v in vertices]
    lons = [v[1] for v in vertices]
    return BoundingBox(
        lat_min=min(lats), lat_max=max(lats), lon_min=min(lons), lon_max=max(lons)
    )
