"""Great-circle distance, bearing and destination-point computations.

These are the work-horse formulas of the pipeline: the cleaning stage uses
:func:`speed_between_knots` to drop infeasible vessel jumps, the simulator
uses :func:`destination_point` to advance vessels along their legs, and the
route-forecasting A* heuristic uses :func:`haversine_m`.
"""

from __future__ import annotations

import math

from repro.geo.constants import EARTH_RADIUS_M, KNOT_MS, NAUTICAL_MILE_M


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two points in metres.

    Uses the haversine formulation, which is numerically stable for both
    short and antipodal distances.

    >>> round(haversine_m(0.0, 0.0, 0.0, 1.0))
    111195
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    )
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def haversine_nm(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in nautical miles."""
    return haversine_m(lat1, lon1, lat2, lon2) / NAUTICAL_MILE_M


def initial_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial great-circle bearing from point 1 to point 2, in [0, 360).

    The bearing of a great circle changes along the track; this is the
    forward azimuth at the starting point, which is what an AIS course-over-
    ground report approximates over a short interval.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlmb = math.radians(lon2 - lon1)
    y = math.sin(dlmb) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(
        dlmb
    )
    theta = math.degrees(math.atan2(y, x))
    return theta % 360.0


def destination_point(
    lat: float, lon: float, bearing_deg: float, distance_m: float
) -> tuple[float, float]:
    """Point reached travelling ``distance_m`` along ``bearing_deg``.

    Returns ``(lat, lon)`` with longitude normalised to (-180, 180].
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(lat)
    lmb1 = math.radians(lon)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(
        delta
    ) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lmb2 = lmb1 + math.atan2(y, x)
    lon2 = math.degrees(lmb2)
    lon2 = ((lon2 + 180.0) % 360.0) - 180.0
    if lon2 == -180.0:
        lon2 = 180.0
    return math.degrees(phi2), lon2


def cross_track_distance_m(
    lat: float,
    lon: float,
    lat_a: float,
    lon_a: float,
    lat_b: float,
    lon_b: float,
) -> float:
    """Signed distance of a point from the great circle through A and B.

    Positive values lie to the right of the A→B direction.  Used by the
    anomaly detector to measure how far a vessel strays from its lane.
    """
    d13 = haversine_m(lat_a, lon_a, lat, lon) / EARTH_RADIUS_M
    theta13 = math.radians(initial_bearing_deg(lat_a, lon_a, lat, lon))
    theta12 = math.radians(initial_bearing_deg(lat_a, lon_a, lat_b, lon_b))
    return math.asin(math.sin(d13) * math.sin(theta13 - theta12)) * EARTH_RADIUS_M


def speed_between_knots(
    lat1: float,
    lon1: float,
    ts1: float,
    lat2: float,
    lon2: float,
    ts2: float,
) -> float:
    """Implied speed in knots between two timestamped positions.

    Returns ``inf`` when the timestamps coincide but the positions differ
    (a teleport), and ``0.0`` when both position and time are identical.
    The cleaning stage drops transitions whose implied speed exceeds the
    paper's 50-knot feasibility threshold.
    """
    dist_m = haversine_m(lat1, lon1, lat2, lon2)
    dt = abs(ts2 - ts1)
    if dt == 0.0:
        return 0.0 if dist_m == 0.0 else math.inf
    return dist_m / dt / KNOT_MS
