"""Merging t-digest for approximate quantiles.

The paper reports approximate 10th/50th/90th percentiles of speed, ETO and
ATA per cell.  The t-digest (Dunning & Ertl) keeps a bounded set of
centroids whose sizes shrink toward the distribution's tails, giving small
relative error exactly where percentile queries care.  This is the
"merging" variant: new points accumulate in a buffer and are folded into
the centroids with a single sorted sweep, which is also how two digests
merge — making it a natural reduce-side aggregate.
"""

from __future__ import annotations

import math


class TDigest:
    """Approximate quantile sketch with bounded memory.

    :param compression: controls accuracy/size; the number of centroids is
        at most ~2×compression.  100 gives ≲1 % quantile error on the
        workloads in this project.
    """

    __slots__ = ("compression", "_means", "_weights", "_buffer", "_buffer_size", "count", "min_value", "max_value")

    def __init__(self, compression: float = 100.0) -> None:
        if compression < 10.0:
            raise ValueError(f"compression must be >= 10, got {compression}")
        self.compression = float(compression)
        self._means: list[float] = []
        self._weights: list[float] = []
        self._buffer: list[tuple[float, float]] = []
        self._buffer_size = max(32, int(compression) * 4)
        self.count = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def update(self, value: float, weight: float = 1.0) -> None:
        """Fold one observation (optionally weighted) into the digest."""
        if weight <= 0.0:
            raise ValueError(f"weight must be positive, got {weight}")
        if math.isnan(value):
            raise ValueError("cannot add NaN to a t-digest")
        self._buffer.append((value, weight))
        self.count += weight
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if len(self._buffer) >= self._buffer_size:
            self._compress()

    def update_many(self, values) -> None:
        """Fold a sequence of unit-weight observations into the digest.

        Bit-identical to calling :meth:`update` per value in order: each
        value is appended as ``(value, 1.0)`` and the buffer-full
        compression check runs after every append, so centroid state
        evolves exactly as under the scalar path.  ``count`` is advanced
        once by ``len(values)`` — exact for integer counts below 2**53,
        and ``_compress`` never reads ``count``.
        """
        buffer = self._buffer
        buffer_size = self._buffer_size
        min_value = self.min_value
        max_value = self.max_value
        for value in values:
            if math.isnan(value):
                raise ValueError("cannot add NaN to a t-digest")
            buffer.append((value, 1.0))
            if value < min_value:
                min_value = value
            if value > max_value:
                max_value = value
            if len(buffer) >= buffer_size:
                self.min_value = min_value
                self.max_value = max_value
                self._compress()
        self.count += float(len(values))
        self.min_value = min_value
        self.max_value = max_value

    def merge(self, other: "TDigest") -> None:
        """Fold another digest into this one.

        ``other``'s centroids and still-buffered points are appended to
        this digest's buffer; the sorted compression sweep is deferred
        until the buffer fills (the same policy updates use) or until a
        query/serialisation forces it.  Reduce-side merge chains fold
        thousands of mostly-small digests, so paying one sweep per merge
        would dominate the reduce.
        """
        buffer = self._buffer
        buffer.extend(other._buffer)
        buffer.extend(zip(other._means, other._weights))
        self.count += other.count
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        if len(buffer) >= self._buffer_size:
            self._compress()

    def quantile(self, q: float) -> float:
        """Approximate value at quantile ``q`` in [0, 1].

        Raises :class:`ValueError` on an empty digest or out-of-range ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._compress()
        if not self._means:
            raise ValueError("quantile of an empty t-digest is undefined")
        if len(self._means) == 1:
            return self._means[0]
        target = q * self.count
        # Walk centroids, interpolating between their midpoints.
        cumulative = 0.0
        for i, weight in enumerate(self._weights):
            if cumulative + weight / 2.0 >= target:
                if i == 0:
                    lo_pos, lo_val = 0.0, self.min_value
                else:
                    lo_pos = cumulative - self._weights[i - 1] / 2.0
                    lo_val = self._means[i - 1]
                hi_pos = cumulative + weight / 2.0
                hi_val = self._means[i]
                if hi_pos <= lo_pos:
                    return hi_val
                frac = (target - lo_pos) / (hi_pos - lo_pos)
                frac = min(1.0, max(0.0, frac))
                return lo_val + frac * (hi_val - lo_val)
            cumulative += weight
        return self.max_value

    def cdf(self, value: float) -> float:
        """Approximate fraction of observations ≤ ``value``."""
        self._compress()
        if not self._means:
            raise ValueError("cdf of an empty t-digest is undefined")
        if value <= self.min_value:
            return 0.0
        if value >= self.max_value:
            return 1.0
        cumulative = 0.0
        for i, (mean, weight) in enumerate(zip(self._means, self._weights)):
            if mean >= value:
                if i == 0:
                    return 0.0
                prev_mean = self._means[i - 1]
                prev_cum = cumulative - self._weights[i - 1] / 2.0
                here_cum = cumulative + weight / 2.0
                if mean <= prev_mean:
                    return here_cum / self.count
                frac = (value - prev_mean) / (mean - prev_mean)
                return (prev_cum + frac * (here_cum - prev_cum)) / self.count
            cumulative += weight
        return 1.0

    def centroid_count(self) -> int:
        """Number of stored centroids after compression."""
        self._compress()
        return len(self._means)

    def to_dict(self) -> dict:
        """JSON-serialisable state."""
        self._compress()
        return {
            "compression": self.compression,
            "means": list(self._means),
            "weights": list(self._weights),
            "min": None if self.count == 0 else self.min_value,
            "max": None if self.count == 0 else self.max_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TDigest":
        """Reconstruct from :meth:`to_dict` output."""
        digest = cls(compression=float(data["compression"]))
        digest._means = [float(m) for m in data["means"]]
        digest._weights = [float(w) for w in data["weights"]]
        digest.count = float(sum(digest._weights))
        if digest.count > 0:
            digest.min_value = float(data["min"])
            digest.max_value = float(data["max"])
        return digest

    # -- internals ---------------------------------------------------------

    def _scale_limit(self, q: float) -> float:
        """The k1 scale function: k(q) = (δ / 2π) · asin(2q − 1)."""
        q = min(1.0, max(0.0, q))
        return self.compression / (2.0 * math.pi) * math.asin(2.0 * q - 1.0)

    def _compress(self) -> None:
        if not self._buffer:
            return
        points = sorted(
            list(zip(self._means, self._weights)) + self._buffer,
            key=lambda pair: pair[0],
        )
        self._buffer.clear()
        total = sum(weight for _, weight in points)
        means: list[float] = []
        weights: list[float] = []
        cur_mean, cur_weight = points[0]
        cumulative = 0.0
        k_lower = self._scale_limit(0.0)
        for mean, weight in points[1:]:
            q_after = (cumulative + cur_weight + weight) / total
            if self._scale_limit(q_after) - k_lower <= 1.0:
                # Merge into the current centroid.
                cur_mean += (mean - cur_mean) * weight / (cur_weight + weight)
                cur_weight += weight
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                cumulative += cur_weight
                k_lower = self._scale_limit(cumulative / total)
                cur_mean, cur_weight = mean, weight
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means = means
        self._weights = weights
