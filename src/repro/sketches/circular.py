"""Mergeable circular moments for angular features (course, heading).

Keeps the vector sum of unit headings; the circular mean is the angle of
the resultant and the mean resultant length R̄ measures concentration
(1 = all identical, 0 = uniformly spread).  Sums are trivially mergeable,
which is why Table 3's course/heading means can be computed in a reduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(slots=True)
class CircularMoments:
    """Mergeable circular mean / dispersion of angles in degrees."""

    sum_cos: float = 0.0
    sum_sin: float = 0.0
    count: int = 0

    def update(self, angle_deg: float) -> None:
        """Fold one angle (degrees, any range) into the sketch."""
        rad = math.radians(angle_deg)
        self.sum_cos += math.cos(rad)
        self.sum_sin += math.sin(rad)
        self.count += 1

    def update_components(self, cos_values, sin_values) -> None:
        """Fold precomputed unit-vector components into the sketch.

        Batch callers precompute ``cos(radians(angle))``/``sin(...)``
        once per row and reuse them across every sketch keyed to that
        row; adding the identical operands in row order makes this
        bit-identical to per-angle :meth:`update` calls.
        """
        sum_cos = self.sum_cos
        sum_sin = self.sum_sin
        for c, s in zip(cos_values, sin_values):
            sum_cos += c
            sum_sin += s
        self.sum_cos = sum_cos
        self.sum_sin = sum_sin
        self.count += len(cos_values)

    def merge(self, other: "CircularMoments") -> None:
        """Fold another sketch into this one."""
        self.sum_cos += other.sum_cos
        self.sum_sin += other.sum_sin
        self.count += other.count

    @property
    def mean_deg(self) -> float | None:
        """Circular mean in [0, 360), or ``None`` when undefined (empty
        sketch or perfectly cancelling directions)."""
        if self.count == 0:
            return None
        if math.hypot(self.sum_cos, self.sum_sin) < 1e-12 * self.count:
            return None
        mean = math.degrees(math.atan2(self.sum_sin, self.sum_cos)) % 360.0
        return 0.0 if mean >= 360.0 else mean

    @property
    def resultant_length(self) -> float:
        """Mean resultant length R̄ in [0, 1]; 0.0 for an empty sketch."""
        if self.count == 0:
            return 0.0
        return min(1.0, math.hypot(self.sum_cos, self.sum_sin) / self.count)

    @property
    def std_deg(self) -> float | None:
        """Circular standard deviation in degrees (``sqrt(-2 ln R̄)``)."""
        if self.count == 0:
            return None
        r_bar = max(1e-300, self.resultant_length)
        return math.degrees(math.sqrt(-2.0 * math.log(r_bar)))

    def to_dict(self) -> dict:
        """JSON-serialisable state."""
        return {"cos": self.sum_cos, "sin": self.sum_sin, "count": self.count}

    @classmethod
    def from_dict(cls, data: dict) -> "CircularMoments":
        """Reconstruct from :meth:`to_dict` output."""
        return cls(
            sum_cos=float(data["cos"]),
            sum_sin=float(data["sin"]),
            count=int(data["count"]),
        )
