"""HyperLogLog distinct-value counting with a sparse mode.

Table 3 needs the number of distinct ships and distinct trips per cell.
Exact distinct counting would require keeping every identifier per group —
at inventory scale that is the whole point of *not* doing it.  HyperLogLog
(Flajolet et al.) answers with ~1.04/√m relative error using m one-byte
registers, and two HLLs merge by taking the register-wise maximum, which
makes it reduce-friendly.

**Sparse mode.**  A global inventory holds millions of groups and most
see only a handful of distinct vessels, so allocating m registers per
group would dominate the pipeline's time and the table's disk size.  A
sketch therefore starts as a small ``{register_index: rank}`` dict and
converts to the dense byte array only when it stops being small — the
same design production HLLs (Redis, BigQuery) use.  Estimates are
identical in both modes because the sparse dict *is* the dense array's
non-zero set.

Hashing uses BLAKE2b (first 8 bytes), keyed only by the value's canonical
byte form, so estimates are reproducible across processes and runs
(unlike ``hash()``, which is salted per interpreter).
"""

from __future__ import annotations

import math
from hashlib import blake2b


def hash64(value: object) -> int:
    """Stable 64-bit hash of a value's canonical byte representation."""
    if isinstance(value, bytes):
        payload = b"b" + value
    elif isinstance(value, str):
        payload = b"s" + value.encode("utf-8")
    elif isinstance(value, bool):
        payload = b"o" + bytes([value])
    elif isinstance(value, int):
        payload = b"i" + value.to_bytes(16, "big", signed=True)
    elif isinstance(value, float):
        payload = b"f" + repr(value).encode("ascii")
    elif isinstance(value, tuple):
        digest = blake2b(digest_size=8)
        for item in value:
            digest.update(hash64(item).to_bytes(8, "big"))
        return int.from_bytes(digest.digest(), "big")
    else:
        raise TypeError(f"unhashable value type for HLL: {type(value).__name__}")
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "big")


class HyperLogLog:
    """Approximate distinct counter with register-max merging.

    :param precision: p in [4, 16]; uses 2^p registers, standard error
        ≈ 1.04 / 2^(p/2) (p=10 → ~3.3 %).
    """

    __slots__ = ("precision", "m", "_sparse", "_dense")

    def __init__(self, precision: int = 10) -> None:
        if not 4 <= precision <= 16:
            raise ValueError(f"precision must be in [4, 16], got {precision}")
        self.precision = precision
        self.m = 1 << precision
        self._sparse: dict[int, int] | None = {}
        self._dense: bytearray | None = None

    @property
    def is_sparse(self) -> bool:
        """Whether the sketch is still in sparse representation."""
        return self._sparse is not None

    def update(self, value: object) -> None:
        """Observe a value (ints, strs, bytes, floats, bools, tuples)."""
        self.update_hashed(hash64(value))

    def update_hashed(self, hashed: int) -> None:
        """Observe a value by its precomputed :func:`hash64` hash.

        Register-identical to :meth:`update` of the original value.
        Batch callers hoist the BLAKE2b hash out of loops that feed the
        same value to several sketches (e.g. one MMSI into every
        grouping set's ships HLL).
        """
        tail_bits = 64 - self.precision
        index = hashed >> tail_bits
        remaining = hashed & ((1 << tail_bits) - 1)
        # Rank: position of the leftmost 1-bit in the remaining bits, 1-based.
        rank = tail_bits - remaining.bit_length() + 1
        # The sparse branch of _set_register, inlined: this runs once per
        # grouping set per run in the aggregate kernel.
        sparse = self._sparse
        if sparse is not None:
            if rank > sparse.get(index, 0):
                sparse[index] = rank
                if len(sparse) > self._sparse_limit():
                    self._densify()
        elif rank > self._dense[index]:
            self._dense[index] = rank

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise maximum; both sketches must share a precision."""
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge HLLs of precisions {self.precision} and "
                f"{other.precision}"
            )
        if other._sparse is not None:
            for index, rank in other._sparse.items():
                self._set_register(index, rank)
            return
        self._densify()
        # map(max, …) runs the register sweep in C.
        self._dense = bytearray(map(max, self._dense, other._dense))

    def cardinality(self) -> int:
        """Estimated number of distinct values observed."""
        if self._sparse is not None:
            zeros = self.m - len(self._sparse)
            inverse_sum = zeros + sum(2.0**-rank for rank in self._sparse.values())
        else:
            zeros = self._dense.count(0)
            inverse_sum = sum(2.0**-rank for rank in self._dense)
        raw = self._alpha() * self.m * self.m / inverse_sum
        if raw <= 2.5 * self.m and zeros > 0:
            # Small-range correction: linear counting.
            return round(self.m * math.log(self.m / zeros))
        return round(raw)

    def to_dict(self) -> dict:
        """JSON-serialisable state.

        Sparse sketches serialise their non-zero registers as index/rank
        pair lists (tiny); dense ones as hex registers.
        """
        if self._sparse is not None:
            items = sorted(self._sparse.items())
            return {
                "p": self.precision,
                "sparse": [list(pair) for pair in items],
            }
        return {"p": self.precision, "registers": bytes(self._dense).hex()}

    @classmethod
    def from_dict(cls, data: dict) -> "HyperLogLog":
        """Reconstruct from :meth:`to_dict` output."""
        sketch = cls(precision=int(data["p"]))
        if "sparse" in data:
            sketch._sparse = {int(i): int(r) for i, r in data["sparse"]}
            if len(sketch._sparse) > sketch._sparse_limit():
                sketch._densify()
            return sketch
        registers = bytes.fromhex(data["registers"])
        if len(registers) != sketch.m:
            raise ValueError(
                f"register payload length {len(registers)} does not match "
                f"precision {sketch.precision}"
            )
        sketch._sparse = None
        sketch._dense = bytearray(registers)
        return sketch

    # -- internals -------------------------------------------------------------

    def _sparse_limit(self) -> int:
        return self.m // 8

    def _set_register(self, index: int, rank: int) -> None:
        if self._sparse is not None:
            current = self._sparse.get(index, 0)
            if rank > current:
                self._sparse[index] = rank
                if len(self._sparse) > self._sparse_limit():
                    self._densify()
        elif rank > self._dense[index]:
            self._dense[index] = rank

    def _densify(self) -> None:
        if self._sparse is None:
            return
        dense = bytearray(self.m)
        for index, rank in self._sparse.items():
            dense[index] = rank
        self._dense = dense
        self._sparse = None

    def _alpha(self) -> float:
        if self.m == 16:
            return 0.673
        if self.m == 32:
            return 0.697
        if self.m == 64:
            return 0.709
        return 0.7213 / (1.0 + 1.079 / self.m)
