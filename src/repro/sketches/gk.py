"""Greenwald–Khanna quantile summary.

The deterministic-error classic: maintains tuples (value, g, Δ) such that
any φ-quantile query is answered within ε·n rank error.  Kept alongside the
t-digest so the sketch-ablation benchmark can compare the two families
(deterministic rank error vs relative-accuracy tails) on the same feature
streams.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass


@dataclass(slots=True)
class _Tuple:
    value: float
    g: int
    delta: int


class GKQuantiles:
    """ε-approximate quantile summary with deterministic rank error."""

    def __init__(self, epsilon: float = 0.01) -> None:
        if not 0.0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = epsilon
        self.count = 0
        self._tuples: list[_Tuple] = []
        self._since_compress = 0
        self._compress_every = max(1, int(1.0 / (2.0 * epsilon)))

    def update(self, value: float) -> None:
        """Insert one observation."""
        self.count += 1
        values = [t.value for t in self._tuples]
        idx = bisect_right(values, value)
        if idx == 0 or idx == len(self._tuples):
            # New minimum or maximum is always exact.
            self._tuples.insert(idx, _Tuple(value, 1, 0))
        else:
            delta = max(0, int(2.0 * self.epsilon * self.count) - 1)
            self._tuples.insert(idx, _Tuple(value, 1, delta))
        self._since_compress += 1
        if self._since_compress >= self._compress_every:
            self._compress()
            self._since_compress = 0

    def merge(self, other: "GKQuantiles") -> None:
        """Fold another summary into this one.

        Standard mergeable-summaries construction: interleave the tuple
        lists sorted by value (g's preserved, Δ's inherited) and compress.
        The merged error is bounded by the larger of the two ε's plus the
        compression slack — adequate for reduce trees of moderate depth.
        """
        merged: list[_Tuple] = []
        a, b = self._tuples, other._tuples
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i].value <= b[j].value:
                merged.append(_Tuple(a[i].value, a[i].g, a[i].delta))
                i += 1
            else:
                merged.append(_Tuple(b[j].value, b[j].g, b[j].delta))
                j += 1
        merged.extend(_Tuple(t.value, t.g, t.delta) for t in a[i:])
        merged.extend(_Tuple(t.value, t.g, t.delta) for t in b[j:])
        self._tuples = merged
        self.count += other.count
        self._compress()

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` within ε·n rank error."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty summary is undefined")
        rank = max(1, round(q * self.count))
        margin = int(self.epsilon * self.count)
        r_min = 0
        for t in self._tuples:
            r_min += t.g
            if r_min + t.delta >= rank + margin or r_min >= rank:
                return t.value
        return self._tuples[-1].value

    def tuple_count(self) -> int:
        """Number of stored tuples (the summary's footprint)."""
        return len(self._tuples)

    def to_dict(self) -> dict:
        """JSON-serialisable state."""
        return {
            "epsilon": self.epsilon,
            "count": self.count,
            "tuples": [[t.value, t.g, t.delta] for t in self._tuples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GKQuantiles":
        """Reconstruct from :meth:`to_dict` output."""
        summary = cls(epsilon=float(data["epsilon"]))
        summary.count = int(data["count"])
        summary._tuples = [
            _Tuple(float(v), int(g), int(d)) for v, g, d in data["tuples"]
        ]
        return summary

    def _compress(self) -> None:
        if len(self._tuples) < 3:
            return
        threshold = int(2.0 * self.epsilon * self.count)
        result = [self._tuples[-1]]
        # Sweep right-to-left, absorbing tuples into their right neighbor
        # while the combined uncertainty stays within the threshold.
        for t in reversed(self._tuples[1:-1]):
            head = result[-1]
            if t.g + head.g + head.delta <= threshold:
                head.g += t.g
            else:
                result.append(t)
        result.append(self._tuples[0])
        result.reverse()
        self._tuples = result
