"""Fixed-width direction histograms (the paper's 30° course/heading bins).

A trivially mergeable vector of counters over [0°, 360°).  Twelve 30° bins
is the paper's configuration; the width is a parameter so the resolution
ablation can vary it.
"""

from __future__ import annotations


class DirectionHistogram:
    """Counts of angular observations in fixed-width bins over [0, 360)."""

    __slots__ = ("bin_width_deg", "num_bins", "counts", "total")

    def __init__(self, bin_width_deg: float = 30.0) -> None:
        if bin_width_deg <= 0.0 or 360.0 % bin_width_deg != 0.0:
            raise ValueError(
                f"bin width must evenly divide 360 degrees, got {bin_width_deg}"
            )
        self.bin_width_deg = bin_width_deg
        self.num_bins = int(360.0 / bin_width_deg)
        self.counts = [0] * self.num_bins
        self.total = 0

    def update(self, angle_deg: float, weight: int = 1) -> None:
        """Count an angle (any range; normalised into [0, 360))."""
        index = self.bin_index(angle_deg)
        self.counts[index] += weight
        self.total += weight

    def add_bin_counts(self, bin_counts) -> None:
        """Fold ``(bin_index, count)`` pairs in directly.

        Counts are integers, so accumulation order cannot change the
        result; batch callers bucket a run of angles once and add the
        totals here instead of re-binning per sketch.
        """
        counts = self.counts
        added = 0
        for index, count in bin_counts:
            if not 0 <= index < self.num_bins:
                raise ValueError(f"bin index out of range: {index}")
            counts[index] += count
            added += count
        self.total += added

    def merge(self, other: "DirectionHistogram") -> None:
        """Bin-wise addition; widths must match."""
        if other.bin_width_deg != self.bin_width_deg:
            raise ValueError(
                f"cannot merge histograms of widths {self.bin_width_deg} and "
                f"{other.bin_width_deg}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total

    def bin_index(self, angle_deg: float) -> int:
        """Index of the bin containing an angle."""
        normalized = angle_deg % 360.0
        return min(self.num_bins - 1, int(normalized / self.bin_width_deg))

    def bin_range(self, index: int) -> tuple[float, float]:
        """[start, end) angle range of a bin in degrees."""
        if not 0 <= index < self.num_bins:
            raise ValueError(f"bin index out of range: {index}")
        return index * self.bin_width_deg, (index + 1) * self.bin_width_deg

    def mode_bin(self) -> int | None:
        """Index of the most populated bin, or ``None`` when empty; ties go
        to the lowest index."""
        if self.total == 0:
            return None
        return max(range(self.num_bins), key=lambda i: (self.counts[i], -i))

    def share(self, index: int) -> float:
        """Fraction of observations in a bin (0.0 when empty)."""
        if self.total == 0:
            return 0.0
        return self.counts[index] / self.total

    def to_dict(self) -> dict:
        """JSON-serialisable state."""
        return {"width": self.bin_width_deg, "counts": list(self.counts)}

    @classmethod
    def from_dict(cls, data: dict) -> "DirectionHistogram":
        """Reconstruct from :meth:`to_dict` output."""
        histogram = cls(bin_width_deg=float(data["width"]))
        counts = [int(c) for c in data["counts"]]
        if len(counts) != histogram.num_bins:
            raise ValueError(
                f"expected {histogram.num_bins} bins, got {len(counts)}"
            )
        histogram.counts = counts
        histogram.total = sum(counts)
        return histogram
