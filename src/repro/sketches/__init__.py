"""Mergeable one-pass statistical summaries (the reduce phase's algebra).

Table 3 of the paper assigns each mobility feature a set of statistics:
counts, distinct counts, means, standard deviations, approximate
percentiles, fixed-width bins and top-N frequent values.  The methodology
computes them with MapReduce, which imposes one algebraic requirement on
every statistic: it must be a *commutative monoid* — updatable one record
at a time, mergeable across partitions in any order, with an identity
(the empty sketch).

Every class here satisfies that contract (``update`` / ``merge`` /
``to_dict`` / ``from_dict``), and the property-based tests verify
merge-associativity and split-merge consistency:

- :class:`~repro.sketches.moments.MomentsSketch` — count/mean/std/min/max
  via Welford's method with Chan's parallel merge.
- :class:`~repro.sketches.circular.CircularMoments` — circular mean and
  dispersion for course/heading (the asterisked means of Table 3).
- :class:`~repro.sketches.tdigest.TDigest` — approximate percentiles
  (the paper's 10th/50th/90th) via the merging t-digest.
- :class:`~repro.sketches.gk.GKQuantiles` — Greenwald–Khanna quantiles,
  the classic deterministic-error alternative, kept for the sketch
  ablation benchmark.
- :class:`~repro.sketches.hyperloglog.HyperLogLog` — distinct counts
  (ships, trips).
- :class:`~repro.sketches.spacesaving.SpaceSaving` — top-N frequent values
  (origins, destinations, cell transitions).
- :class:`~repro.sketches.histogram.DirectionHistogram` — the 30° course/
  heading bins.
- :class:`~repro.sketches.reservoir.ReservoirSample` — uniform sample,
  used as the exact-ish reference in accuracy tests.
"""

from repro.sketches.moments import MomentsSketch
from repro.sketches.circular import CircularMoments
from repro.sketches.tdigest import TDigest
from repro.sketches.gk import GKQuantiles
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.spacesaving import SpaceSaving
from repro.sketches.histogram import DirectionHistogram
from repro.sketches.reservoir import ReservoirSample

__all__ = [
    "MomentsSketch",
    "CircularMoments",
    "TDigest",
    "GKQuantiles",
    "HyperLogLog",
    "SpaceSaving",
    "DirectionHistogram",
    "ReservoirSample",
]
