"""Streaming moments: count, mean, variance, extrema.

Welford's online algorithm keeps the running mean and the sum of squared
deviations (M2); Chan et al.'s formula merges two such states exactly, so
a distributed reduce yields the same mean/variance as a single pass, up to
floating-point rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(slots=True)
class MomentsSketch:
    """Mergeable count/mean/std/min/max summary of a numeric feature."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min_value: float = field(default=math.inf)
    max_value: float = field(default=-math.inf)

    def update(self, value: float) -> None:
        """Fold one observation into the sketch (Welford's step)."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def update_many(self, values) -> None:
        """Fold a sequence of observations into the sketch.

        Bit-identical to calling :meth:`update` once per value in order —
        the loop body performs the same Welford step on locals, written
        back once, so batch callers (:mod:`repro.pipeline.vectorized`)
        can use it without perturbing equivalence tests.
        """
        count = self.count
        mean = self.mean
        m2 = self.m2
        min_value = self.min_value
        max_value = self.max_value
        for value in values:
            count += 1
            delta = value - mean
            mean += delta / count
            m2 += delta * (value - mean)
            if value < min_value:
                min_value = value
            if value > max_value:
                max_value = value
        self.count = count
        self.mean = mean
        self.m2 = m2
        self.min_value = min_value
        self.max_value = max_value

    def merge(self, other: "MomentsSketch") -> None:
        """Fold another sketch into this one (Chan's parallel formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min_value = other.min_value
            self.max_value = other.max_value
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / total
        self.mean = self.mean + delta * other.count / total
        self.count = total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    @property
    def variance(self) -> float:
        """Population variance; 0.0 for fewer than two observations."""
        if self.count < 2:
            return 0.0
        return max(0.0, self.m2 / self.count)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def to_dict(self) -> dict:
        """JSON-serialisable state."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": None if self.count == 0 else self.min_value,
            "max": None if self.count == 0 else self.max_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MomentsSketch":
        """Reconstruct from :meth:`to_dict` output."""
        sketch = cls(
            count=int(data["count"]),
            mean=float(data["mean"]),
            m2=float(data["m2"]),
        )
        if sketch.count > 0:
            sketch.min_value = float(data["min"])
            sketch.max_value = float(data["max"])
        return sketch
