"""Uniform reservoir sampling (Vitter's algorithm R) with weighted merge.

Not part of the paper's feature set — the tests use it as an unbiased
reference sample when validating the approximate sketches, and the anomaly
app uses it to retain example observations per cell.  Randomness is
self-contained and seeded so pipelines remain reproducible.
"""

from __future__ import annotations

import random


class ReservoirSample:
    """Fixed-size uniform sample over a stream of arbitrary items."""

    __slots__ = ("capacity", "seen", "items", "_rng")

    def __init__(self, capacity: int = 128, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        self.items: list[object] = []
        self._rng = random.Random(seed)

    def update(self, item: object) -> None:
        """Observe one item."""
        self.seen += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.items[slot] = item

    def merge(self, other: "ReservoirSample") -> None:
        """Fold another reservoir in, keeping the union sample uniform.

        Each output slot draws from this reservoir with probability
        proportional to its stream size, otherwise from the other's.
        """
        if other.seen == 0:
            return
        if self.seen == 0:
            self.seen = other.seen
            self.items = list(other.items)
            return
        total = self.seen + other.seen
        merged: list[object] = []
        mine = list(self.items)
        theirs = list(other.items)
        self._rng.shuffle(mine)
        self._rng.shuffle(theirs)
        while len(merged) < self.capacity and (mine or theirs):
            take_mine = False
            if mine and theirs:
                take_mine = self._rng.random() < self.seen / total
            elif mine:
                take_mine = True
            merged.append(mine.pop() if take_mine else theirs.pop())
        self.items = merged
        self.seen = total

    def to_dict(self) -> dict:
        """JSON-serialisable state (items must themselves be serialisable)."""
        return {"capacity": self.capacity, "seen": self.seen, "items": self.items}

    @classmethod
    def from_dict(cls, data: dict) -> "ReservoirSample":
        """Reconstruct from :meth:`to_dict` output."""
        sample = cls(capacity=int(data["capacity"]))
        sample.seen = int(data["seen"])
        sample.items = list(data["items"])
        return sample
