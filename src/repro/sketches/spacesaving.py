"""Space-Saving heavy hitters for the Top-N statistics.

Table 3 marks origins, destinations and cell transitions as Top-N
features.  Space-Saving (Metwally et al.) keeps ``capacity`` counters;
when a new item arrives with no free counter it *takes over* the smallest
counter, inheriting its count as an overestimation error.  Guarantees:
every item with true frequency > n/capacity is present, and each reported
count overestimates by at most its recorded error.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TopItem:
    """One reported heavy hitter: count overestimates the true frequency by
    at most ``error``."""

    value: object
    count: int
    error: int


class SpaceSaving:
    """Top-N frequent-item sketch with bounded counters."""

    __slots__ = ("capacity", "total", "_counts", "_errors")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.total = 0
        self._counts: dict[object, int] = {}
        self._errors: dict[object, int] = {}

    def update(self, value: object, weight: int = 1) -> None:
        """Observe a value ``weight`` times."""
        if weight < 1:
            raise ValueError(f"weight must be a positive integer, got {weight}")
        self.total += weight
        if value in self._counts:
            self._counts[value] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[value] = weight
            self._errors[value] = 0
            return
        # Take over the smallest counter.
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[value] = floor + weight
        self._errors[value] = floor

    def merge(self, other: "SpaceSaving") -> None:
        """Fold another sketch into this one (Agarwal et al. mergeable
        summaries construction): counts add item-wise, an item missing from
        one side contributes that side's guaranteed floor as extra error;
        then the union is re-truncated to capacity."""
        self_floor = self._min_count() if len(self._counts) >= self.capacity else 0
        other_floor = (
            other._min_count() if len(other._counts) >= other.capacity else 0
        )
        merged_counts: dict[object, int] = {}
        merged_errors: dict[object, int] = {}
        for value in set(self._counts) | set(other._counts):
            count = 0
            error = 0
            if value in self._counts:
                count += self._counts[value]
                error += self._errors[value]
            else:
                count += self_floor
                error += self_floor
            if value in other._counts:
                count += other._counts[value]
                error += other._errors[value]
            else:
                count += other_floor
                error += other_floor
            merged_counts[value] = count
            merged_errors[value] = error
        survivors = sorted(
            merged_counts, key=merged_counts.__getitem__, reverse=True
        )[: self.capacity]
        self._counts = {v: merged_counts[v] for v in survivors}
        self._errors = {v: merged_errors[v] for v in survivors}
        self.total += other.total

    def top(self, n: int | None = None) -> list[TopItem]:
        """The heaviest items, most frequent first; ties broken by the
        items' repr for determinism."""
        items = sorted(
            self._counts,
            key=lambda v: (-self._counts[v], repr(v)),
        )
        if n is not None:
            items = items[:n]
        return [TopItem(v, self._counts[v], self._errors[v]) for v in items]

    def count(self, value: object) -> int:
        """Reported count for a value (0 when untracked)."""
        return self._counts.get(value, 0)

    def __len__(self) -> int:
        return len(self._counts)

    def to_dict(self) -> dict:
        """JSON-serialisable state; item order is the top() order."""
        return {
            "capacity": self.capacity,
            "total": self.total,
            "items": [[item.value, item.count, item.error] for item in self.top()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpaceSaving":
        """Reconstruct from :meth:`to_dict` output.  JSON round-trips turn
        tuple-valued items into lists; callers that store tuples should
        re-tuple on read (the inventory codec preserves tuples natively)."""
        sketch = cls(capacity=int(data["capacity"]))
        sketch.total = int(data["total"])
        for value, count, error in data["items"]:
            sketch._counts[value] = int(count)
            sketch._errors[value] = int(error)
        return sketch

    def _min_count(self) -> int:
        return min(self._counts.values()) if self._counts else 0
