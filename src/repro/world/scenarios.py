"""Disruption scenarios: the abnormal behaviour the inventory detects.

The paper motivates the inventory as a *model of normalcy* against which
disruptions (COVID port shutdowns, the 2021 Suez blockage) stand out.
Scenarios rewrite scheduled voyage plans:

- :class:`SuezBlockage` — voyages that would transit the canal inside the
  window are re-routed with the canal edge removed, which yields Cape of
  Good Hope paths emergently.
- :class:`PortShutdown` — voyages to a closed port divert to the nearest
  open alternative.

The anomaly benchmark builds a normalcy inventory from undisrupted data
and checks it flags the rewritten voyages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.distance import haversine_m
from repro.world.ports import PORTS, port_by_id
from repro.world.routing import RouteNotFound, SeaRouter
from repro.world.voyages import VoyagePlan


class Scenario:
    """Base class: a transformation of the scheduled voyage plans."""

    def apply(self, plans: list[VoyagePlan], router: SeaRouter) -> list[VoyagePlan]:
        """Return rewritten plans; implementations must not mutate inputs."""
        raise NotImplementedError


@dataclass(frozen=True)
class SuezBlockage(Scenario):
    """The canal is impassable during [start_ts, end_ts)."""

    start_ts: float
    end_ts: float
    canal: str = "suez"

    def apply(self, plans: list[VoyagePlan], router: SeaRouter) -> list[VoyagePlan]:
        """Re-route affected voyages around the blockage."""
        blocked_router = SeaRouter(blocked_canals={self.canal})
        rewritten = []
        for plan in plans:
            if not self.start_ts <= plan.depart_ts < self.end_ts:
                rewritten.append(plan)
                continue
            if not router.uses_canal(plan.origin, plan.destination, self.canal):
                rewritten.append(plan)
                continue
            try:
                nodes = tuple(
                    blocked_router.route_nodes(plan.origin, plan.destination)
                )
            except RouteNotFound:
                rewritten.append(plan)
                continue
            rewritten.append(
                VoyagePlan(
                    mmsi=plan.mmsi,
                    origin=plan.origin,
                    destination=plan.destination,
                    depart_ts=plan.depart_ts,
                    speed_kn=plan.speed_kn,
                    route_nodes=nodes,
                )
            )
        return rewritten


@dataclass(frozen=True)
class PortShutdown(Scenario):
    """A port accepts no arrivals during [start_ts, end_ts)."""

    port_id: str
    start_ts: float
    end_ts: float

    def apply(self, plans: list[VoyagePlan], router: SeaRouter) -> list[VoyagePlan]:
        """Divert affected arrivals to the nearest open port."""
        closed = port_by_id(self.port_id)
        alternates = sorted(
            (p for p in PORTS if p.port_id != self.port_id),
            key=lambda p: haversine_m(closed.lat, closed.lon, p.lat, p.lon),
        )
        rewritten = []
        for plan in plans:
            affected = (
                plan.destination == self.port_id
                and self.start_ts <= plan.depart_ts < self.end_ts
            )
            if not affected:
                rewritten.append(plan)
                continue
            diverted = None
            for alternate in alternates:
                if alternate.port_id == plan.origin:
                    continue
                try:
                    nodes = tuple(
                        router.route_nodes(plan.origin, alternate.port_id)
                    )
                except RouteNotFound:
                    continue
                diverted = VoyagePlan(
                    mmsi=plan.mmsi,
                    origin=plan.origin,
                    destination=alternate.port_id,
                    depart_ts=plan.depart_ts,
                    speed_kn=plan.speed_kn,
                    route_nodes=nodes,
                )
                break
            rewritten.append(diverted if diverted is not None else plan)
        return rewritten
