"""Fleet synthesis: vessels with protocol-correct identities.

Each vessel gets an MMSI with a real country prefix (MID), an IMO number
with a valid check digit, a plausible name, a market segment with matching
AIS ship-type code, gross tonnage, dimensions and a design speed — the
static-report inventory the paper joins against positional data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ais.vesseltypes import MarketSegment

#: Flag states with their Maritime Identification Digits and rough share
#: of the world commercial fleet (Panama/Liberia/Marshall Islands dominate
#: real registries).
_FLAGS: tuple[tuple[str, int, float], ...] = (
    ("PA", 352, 0.16),
    ("LR", 636, 0.13),
    ("MH", 538, 0.12),
    ("HK", 477, 0.09),
    ("SG", 563, 0.08),
    ("MT", 248, 0.07),
    ("CN", 412, 0.06),
    ("GR", 237, 0.05),
    ("JP", 431, 0.05),
    ("CY", 209, 0.04),
    ("DK", 219, 0.03),
    ("DE", 211, 0.03),
    ("GB", 232, 0.03),
    ("NO", 257, 0.03),
    ("KR", 440, 0.03),
)

_NAME_PREFIXES: dict[MarketSegment, tuple[str, ...]] = {
    MarketSegment.CONTAINER: (
        "EVER", "MSC", "MAERSK", "COSCO", "CMA CGM", "OOCL", "ONE", "HMM",
        "YM", "HAPAG", "ZIM", "WAN HAI",
    ),
    MarketSegment.CARGO: (
        "PACIFIC", "ATLANTIC", "GLOBAL", "UNITED", "NORDIC", "EASTERN",
        "WESTERN", "GOLDEN", "SILVER", "ROYAL",
    ),
    MarketSegment.TANKER: (
        "FRONT", "GULF", "NORDIC", "STENA", "MINERVA", "DELTA", "ALPINE",
        "EAGLE", "POLAR", "CRUDE",
    ),
    MarketSegment.PASSENGER: (
        "STAR", "SPIRIT", "PRIDE", "QUEEN", "PRINCESS", "JEWEL", "CROWN",
        "AURORA",
    ),
    MarketSegment.FISHING: ("LADY", "SEA", "NORTH", "LUCKY", "MISS"),
    MarketSegment.TUG: ("SVITZER", "SMIT", "HARBOR", "PORT"),
}

_NAME_SUFFIXES: tuple[str, ...] = (
    "GLORY", "TRIUMPH", "OCEAN", "PIONEER", "VOYAGER", "EXPRESS", "SPIRIT",
    "FORTUNE", "HARMONY", "HORIZON", "NAVIGATOR", "GUARDIAN", "SUMMIT",
    "ENDEAVOUR", "VICTORY", "EMERALD", "SAPPHIRE", "DIAMOND", "ALLIANCE",
    "UNITY", "COURAGE", "DESTINY", "LIBERTY", "MAJESTY", "ODYSSEY",
)

#: Per-segment (ship_type code, min GRT, max GRT, min design kn, max design kn).
_SEGMENT_SPECS: dict[MarketSegment, tuple[int, int, int, float, float]] = {
    MarketSegment.CONTAINER: (71, 20_000, 230_000, 16.0, 23.0),
    MarketSegment.CARGO: (70, 6_000, 90_000, 11.0, 15.0),
    MarketSegment.TANKER: (80, 8_000, 160_000, 11.0, 15.5),
    MarketSegment.PASSENGER: (60, 5_500, 120_000, 17.0, 22.0),
    MarketSegment.FISHING: (30, 150, 2_500, 8.0, 12.0),
    MarketSegment.TUG: (52, 200, 3_000, 8.0, 13.0),
}

#: Default commercial-heavy fleet mix; the ~12 % non-commercial tail
#: exercises the paper's commercial-fleet filter.
DEFAULT_SEGMENT_MIX: tuple[tuple[MarketSegment, float], ...] = (
    (MarketSegment.CONTAINER, 0.30),
    (MarketSegment.CARGO, 0.24),
    (MarketSegment.TANKER, 0.22),
    (MarketSegment.PASSENGER, 0.12),
    (MarketSegment.FISHING, 0.08),
    (MarketSegment.TUG, 0.04),
)


@dataclass(frozen=True, slots=True)
class Vessel:
    """One vessel of the synthetic fleet (the static-data inventory row)."""

    mmsi: int
    imo: int
    name: str
    callsign: str
    flag: str
    segment: MarketSegment
    ship_type: int
    grt: int
    length_m: int
    beam_m: int
    design_speed_kn: float

    @property
    def is_commercial(self) -> bool:
        """The paper's filter: commercial segments above 5000 GRT."""
        from repro.ais.vesseltypes import COMMERCIAL_SEGMENTS

        return self.segment in COMMERCIAL_SEGMENTS and self.grt >= 5_000


def imo_check_digit(base: int) -> int:
    """Check digit of a 6-digit IMO base: Σ digit·(7−position) mod 10."""
    digits = [int(d) for d in f"{base:06d}"]
    return sum(d * w for d, w in zip(digits, range(7, 1, -1))) % 10


def make_imo(base: int) -> int:
    """A full 7-digit IMO number with valid check digit."""
    if not 100_000 <= base <= 999_999:
        raise ValueError(f"IMO base must have six digits, got {base}")
    return base * 10 + imo_check_digit(base)


def build_fleet(
    n_vessels: int,
    seed: int = 0,
    segment_mix: tuple[tuple[MarketSegment, float], ...] = DEFAULT_SEGMENT_MIX,
) -> list[Vessel]:
    """Generate a deterministic fleet of ``n_vessels`` vessels."""
    if n_vessels < 1:
        raise ValueError(f"need at least one vessel, got {n_vessels}")
    rng = random.Random(seed)
    segments = [segment for segment, _ in segment_mix]
    weights = [weight for _, weight in segment_mix]
    used_mmsi: set[int] = set()
    used_names: set[str] = set()
    fleet = []
    for index in range(n_vessels):
        segment = rng.choices(segments, weights=weights)[0]
        ship_type, grt_lo, grt_hi, kn_lo, kn_hi = _SEGMENT_SPECS[segment]
        flag, mid, _share = rng.choices(
            _FLAGS, weights=[share for _, _, share in _FLAGS]
        )[0]
        mmsi = _fresh_mmsi(rng, mid, used_mmsi)
        imo = make_imo(900_000 + index)
        name = _fresh_name(rng, segment, used_names)
        # Log-uniform GRT keeps most of the fleet mid-sized with a long
        # large-vessel tail, like real registries.
        grt = int(grt_lo * (grt_hi / grt_lo) ** rng.random())
        length = int(30 + 10 * (grt ** 0.36))
        beam = max(8, int(length / 6.5))
        fleet.append(
            Vessel(
                mmsi=mmsi,
                imo=imo,
                name=name,
                callsign=f"{flag}{rng.randrange(1000, 9999)}",
                flag=flag,
                segment=segment,
                ship_type=ship_type,
                grt=grt,
                length_m=length,
                beam_m=beam,
                design_speed_kn=round(rng.uniform(kn_lo, kn_hi), 1),
            )
        )
    return fleet


def _fresh_mmsi(rng: random.Random, mid: int, used: set[int]) -> int:
    while True:
        mmsi = mid * 1_000_000 + rng.randrange(0, 1_000_000)
        if mmsi not in used:
            used.add(mmsi)
            return mmsi


def _fresh_name(
    rng: random.Random, segment: MarketSegment, used: set[str]
) -> str:
    prefixes = _NAME_PREFIXES.get(segment, _NAME_PREFIXES[MarketSegment.CARGO])
    for _ in range(200):
        name = f"{rng.choice(prefixes)} {rng.choice(_NAME_SUFFIXES)}"
        if name not in used:
            used.add(name)
            return name
    # Fall back to a numbered name once combinations are exhausted.
    name = f"{rng.choice(prefixes)} {len(used) + 1}"
    used.add(name)
    return name
