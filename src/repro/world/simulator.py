"""AIS track generation: voyages → position reports, with injected dirt.

The simulator walks each voyage's routed polyline at the vessel's speed,
emitting a position report every reporting interval with measurement
noise, then corrupts the stream the way real AIS archives are corrupted:
out-of-protocol field values, duplicated messages, out-of-order arrivals
and GPS teleport spikes.  Injection counts are tracked so the Figure 2
funnel benchmark can verify the cleaning stage removes what was injected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ais.messages import NavigationStatus, PositionReport
from repro.geo.distance import destination_point, haversine_m, initial_bearing_deg
from repro.geo.greatcircle import interpolate
from repro.world.ports import Port, port_by_id
from repro.world.routing import SeaRouter
from repro.world.voyages import VoyagePlan

_KNOT_MS = 0.514444

#: Distance from a port inside which vessels steam dead slow.
_SLOW_ZONE_M = 15_000.0
#: Distance from a port inside which vessels are at reduced speed.
_APPROACH_ZONE_M = 45_000.0
#: Mean starboard lane offset: vessels keep to the right of the lane
#: centerline (COLREGS rule 10), which is what separates opposing flows
#: into adjacent cells and produces the traffic-separation patterns of
#: the paper's Figure 4.
_LANE_OFFSET_MEAN_M = 3_500.0


@dataclass(frozen=True, slots=True)
class NoiseModel:
    """Measurement noise and data-quality defect rates.

    Defect probabilities are per emitted report; defaults give a ~1 %
    overall dirt rate, in line with open AIS archives.
    """

    position_sigma_m: float = 40.0
    sog_sigma_kn: float = 0.35
    cog_sigma_deg: float = 3.0
    heading_sigma_deg: float = 2.0
    p_bad_field: float = 0.003
    p_duplicate: float = 0.004
    p_out_of_order: float = 0.003
    p_teleport: float = 0.001


@dataclass(slots=True)
class DefectStats:
    """How many of each defect the simulator injected."""

    bad_field: int = 0
    duplicate: int = 0
    out_of_order: int = 0
    teleport: int = 0

    def total(self) -> int:
        """All injected defects."""
        return self.bad_field + self.duplicate + self.out_of_order + self.teleport

    def merge(self, other: "DefectStats") -> None:
        """Accumulate another vessel's stats."""
        self.bad_field += other.bad_field
        self.duplicate += other.duplicate
        self.out_of_order += other.out_of_order
        self.teleport += other.teleport


@dataclass(slots=True)
class _Leg:
    lat1: float
    lon1: float
    lat2: float
    lon2: float
    length_m: float


class TrackSimulator:
    """Generates position reports for voyages, dwells and local work."""

    def __init__(
        self,
        router: SeaRouter,
        noise: NoiseModel | None = None,
        report_interval_s: float = 300.0,
        moored_interval_s: float = 1800.0,
    ) -> None:
        if report_interval_s <= 0.0 or moored_interval_s <= 0.0:
            raise ValueError("report intervals must be positive")
        self.router = router
        self.noise = noise or NoiseModel()
        self.report_interval_s = report_interval_s
        self.moored_interval_s = moored_interval_s

    # -- clean track generation ------------------------------------------------

    def voyage_track(
        self, plan: VoyagePlan, end_ts: float, rng: random.Random
    ) -> list[PositionReport]:
        """Reports for one voyage, truncated at ``end_ts``.

        The first report is inside the origin geofence and the last (when
        not truncated) inside the destination geofence, so the geofencing
        stage can reconstruct the trip.
        """
        legs = self._legs(plan.route_nodes)
        total_m = sum(leg.length_m for leg in legs)
        if total_m == 0.0:
            return []
        origin = port_by_id(plan.origin)
        destination = port_by_id(plan.destination)
        cruise_ms = plan.speed_kn * _KNOT_MS
        # Starboard offset, fixed per voyage: opposing flows take opposite
        # sides of the lane, mild per-vessel spread widens the corridor.
        lane_offset_m = max(500.0, rng.gauss(_LANE_OFFSET_MEAN_M, 1_200.0))
        reports: list[PositionReport] = []
        clock = plan.depart_ts
        travelled = 0.0
        leg_index = 0
        leg_offset = 0.0
        while travelled < total_m and clock < end_ts:
            leg = legs[leg_index]
            fraction = leg_offset / leg.length_m if leg.length_m > 0 else 0.0
            lat, lon = interpolate(leg.lat1, leg.lon1, leg.lat2, leg.lon2, fraction)
            bearing = initial_bearing_deg(lat, lon, leg.lat2, leg.lon2)
            edge = min(travelled, total_m - travelled)
            if edge > _SLOW_ZONE_M:
                # Keep right of the centerline in open water; converge on
                # the exact port position inside the slow zone.
                taper = min(1.0, (edge - _SLOW_ZONE_M) / _APPROACH_ZONE_M)
                lat, lon = destination_point(
                    lat, lon, (bearing + 90.0) % 360.0, lane_offset_m * taper
                )
            factor = self._speed_factor(travelled, total_m)
            speed_ms = max(0.8, cruise_ms * factor)
            reports.append(
                self._make_report(plan.mmsi, clock, lat, lon, speed_ms, bearing, rng)
            )
            step = speed_ms * self.report_interval_s
            travelled += step
            leg_offset += step
            clock += self.report_interval_s
            while leg_index < len(legs) - 1 and leg_offset >= legs[leg_index].length_m:
                leg_offset -= legs[leg_index].length_m
                leg_index += 1
        if travelled >= total_m and clock < end_ts:
            # Final report pinned inside the destination geofence.
            reports.append(
                self._make_report(
                    plan.mmsi,
                    clock,
                    destination.lat,
                    destination.lon,
                    0.5,
                    initial_bearing_deg(
                        origin.lat, origin.lon, destination.lat, destination.lon
                    ),
                    rng,
                )
            )
        return reports

    def dwell_track(
        self,
        port: Port,
        mmsi: int,
        start_ts: float,
        end_ts: float,
        rng: random.Random,
    ) -> list[PositionReport]:
        """Moored reports while a vessel sits in port."""
        reports = []
        berth_lat = port.lat + rng.uniform(-0.01, 0.01)
        berth_lon = port.lon + rng.uniform(-0.01, 0.01)
        clock = start_ts
        while clock < end_ts:
            reports.append(
                PositionReport(
                    mmsi=mmsi,
                    epoch_ts=clock,
                    lat=berth_lat + rng.gauss(0.0, 1e-4),
                    lon=berth_lon + rng.gauss(0.0, 1e-4),
                    sog=abs(rng.gauss(0.0, 0.1)),
                    cog=rng.uniform(0.0, 359.9),
                    heading=rng.randrange(0, 360),
                    status=int(NavigationStatus.MOORED),
                )
            )
            clock += self.moored_interval_s
        return reports

    def local_track(
        self,
        mmsi: int,
        port: Port,
        start_ts: float,
        end_ts: float,
        rng: random.Random,
        radius_m: float = 60_000.0,
        speed_kn: float = 7.0,
    ) -> list[PositionReport]:
        """A wandering local track (fishing / harbour work) around a port.

        These vessels never complete port-to-port trips; the pipeline's
        trip-extraction stage must exclude them, and the commercial filter
        must drop them earlier still.
        """
        lat, lon = port.lat, port.lon
        heading = rng.uniform(0.0, 360.0)
        reports = []
        clock = start_ts
        while clock < end_ts:
            heading = (heading + rng.gauss(0.0, 25.0)) % 360.0
            step_m = speed_kn * _KNOT_MS * self.report_interval_s
            lat, lon = destination_point(lat, lon, heading, step_m)
            if haversine_m(lat, lon, port.lat, port.lon) > radius_m:
                heading = initial_bearing_deg(lat, lon, port.lat, port.lon)
                lat, lon = destination_point(lat, lon, heading, step_m)
            reports.append(
                self._make_report(
                    mmsi, clock, lat, lon, speed_kn * _KNOT_MS, heading, rng,
                    status=int(NavigationStatus.FISHING),
                )
            )
            clock += self.report_interval_s * 2.0
        return reports

    # -- corruption ---------------------------------------------------------------

    def corrupt(
        self, reports: list[PositionReport], rng: random.Random
    ) -> tuple[list[PositionReport], DefectStats]:
        """Inject archive-style defects into a clean, time-ordered track."""
        noise = self.noise
        stats = DefectStats()
        output: list[PositionReport] = []
        for report in reports:
            roll = rng.random()
            if roll < noise.p_teleport:
                spiked = _copy_report(report)
                spiked.lat = max(-89.9, min(89.9, report.lat + rng.uniform(5.0, 15.0)))
                spiked.lon = report.lon - rng.uniform(5.0, 15.0)
                output.append(spiked)
                stats.teleport += 1
                continue
            if roll < noise.p_teleport + noise.p_bad_field:
                broken = _copy_report(report)
                choice = rng.randrange(4)
                if choice == 0:
                    broken.lat = 91.0
                elif choice == 1:
                    broken.lon = 181.0
                elif choice == 2:
                    broken.sog = 102.3
                else:
                    broken.cog = 360.0
                output.append(broken)
                stats.bad_field += 1
                continue
            output.append(report)
            if rng.random() < noise.p_duplicate:
                output.append(_copy_report(report))
                stats.duplicate += 1
        # Out-of-order arrivals: swap adjacent reports in the stream.
        index = 1
        while index < len(output):
            if rng.random() < noise.p_out_of_order:
                output[index - 1], output[index] = output[index], output[index - 1]
                stats.out_of_order += 1
                index += 2
            else:
                index += 1
        return output, stats

    # -- internals ------------------------------------------------------------------

    def _legs(self, nodes: tuple[str, ...]) -> list[_Leg]:
        legs = []
        for a, b in zip(nodes, nodes[1:]):
            lat1, lon1 = self.router.node_position(a)
            lat2, lon2 = self.router.node_position(b)
            legs.append(_Leg(lat1, lon1, lat2, lon2, haversine_m(lat1, lon1, lat2, lon2)))
        return legs

    @staticmethod
    def _speed_factor(travelled_m: float, total_m: float) -> float:
        edge = min(travelled_m, total_m - travelled_m)
        if edge < _SLOW_ZONE_M:
            return 0.35
        if edge < _APPROACH_ZONE_M:
            return 0.70
        return 1.0

    def _make_report(
        self,
        mmsi: int,
        clock: float,
        lat: float,
        lon: float,
        speed_ms: float,
        bearing: float,
        rng: random.Random,
        status: int = int(NavigationStatus.UNDER_WAY_ENGINE),
    ) -> PositionReport:
        noise = self.noise
        jitter_bearing = rng.uniform(0.0, 360.0)
        jitter_m = abs(rng.gauss(0.0, noise.position_sigma_m))
        lat, lon = destination_point(lat, lon, jitter_bearing, jitter_m)
        sog = max(0.0, speed_ms / _KNOT_MS + rng.gauss(0.0, noise.sog_sigma_kn))
        cog = (bearing + rng.gauss(0.0, noise.cog_sigma_deg)) % 360.0
        heading = int(bearing + rng.gauss(0.0, noise.heading_sigma_deg)) % 360
        return PositionReport(
            mmsi=mmsi,
            epoch_ts=clock,
            lat=max(-90.0, min(90.0, lat)),
            lon=lon,
            sog=min(102.2, sog),
            cog=cog,
            heading=heading,
            status=status,
        )


def _copy_report(report: PositionReport) -> PositionReport:
    return PositionReport(
        mmsi=report.mmsi,
        epoch_ts=report.epoch_ts,
        lat=report.lat,
        lon=report.lon,
        sog=report.sog,
        cog=report.cog,
        heading=report.heading,
        status=report.status,
        rot=report.rot,
        msg_type=report.msg_type,
    )
