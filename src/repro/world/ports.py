"""The port database: ~120 major world ports with real coordinates.

The paper relies on "an external database to acquire port locations" for
the geofencing stage.  Each port carries a UN/LOCODE-style identifier, a
harbour-level coordinate, a geofence radius, a traffic ``weight`` (used by
the voyage scheduler to make busy ports busy), and the ids of its
``gateways`` — the sea-lane waypoints a departing vessel steams toward
(see :mod:`repro.world.waterways`).

Coordinates are harbour approximations good to a few kilometres, which is
all geofencing at multi-kilometre radii requires.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Port:
    """One port of the external port database."""

    port_id: str
    name: str
    country: str
    lat: float
    lon: float
    weight: float
    gateways: tuple[str, ...]
    radius_m: float = 6_000.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0 or not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"port {self.port_id} has invalid coordinates")
        if self.weight <= 0.0:
            raise ValueError(f"port {self.port_id} must have positive weight")


def _p(port_id, name, country, lat, lon, weight, *gateways, radius_m=6_000.0):
    return Port(port_id, name, country, lat, lon, weight, tuple(gateways), radius_m)


#: The global port inventory.  Gateways reference waypoint ids from
#: :data:`repro.world.waterways.WAYPOINTS`.
PORTS: tuple[Port, ...] = (
    # --- East Asia -----------------------------------------------------------
    _p("CNSHA", "Shanghai", "CN", 31.23, 121.49, 10.0, "ECS"),
    _p("CNNGB", "Ningbo-Zhoushan", "CN", 29.93, 121.85, 9.0, "ECS"),
    _p("CNSZX", "Shenzhen", "CN", 22.49, 114.05, 9.0, "SCS", "TWN"),
    _p("CNCAN", "Guangzhou", "CN", 22.80, 113.55, 8.0, "SCS"),
    _p("CNTAO", "Qingdao", "CN", 36.07, 120.32, 8.0, "YELL"),
    _p("CNTXG", "Tianjin", "CN", 38.98, 117.79, 7.5, "YELL"),
    _p("CNXMN", "Xiamen", "CN", 24.45, 118.07, 7.0, "TWN"),
    _p("CNDLC", "Dalian", "CN", 38.93, 121.65, 6.5, "YELL"),
    _p("HKHKG", "Hong Kong", "HK", 22.30, 114.17, 8.5, "SCS", "TWN"),
    _p("TWKHH", "Kaohsiung", "TW", 22.61, 120.28, 7.0, "TWN", "LUZ"),
    _p("KRPUS", "Busan", "KR", 35.08, 129.04, 8.5, "KOR"),
    _p("KRINC", "Incheon", "KR", 37.45, 126.60, 6.0, "YELL"),
    _p("JPTYO", "Tokyo", "JP", 35.61, 139.79, 7.0, "TOK"),
    _p("JPYOK", "Yokohama", "JP", 35.44, 139.66, 7.0, "TOK"),
    _p("JPNGO", "Nagoya", "JP", 35.03, 136.85, 6.5, "TOK"),
    _p("JPUKB", "Kobe", "JP", 34.67, 135.21, 6.0, "KOR", "TOK"),
    _p("JPOSA", "Osaka", "JP", 34.64, 135.42, 5.5, "KOR", "TOK"),
    # --- Southeast Asia --------------------------------------------------------
    _p("SGSIN", "Singapore", "SG", 1.26, 103.84, 10.0, "SGS"),
    _p("MYPKG", "Port Klang", "MY", 3.00, 101.39, 7.5, "MAL"),
    _p("MYTPP", "Tanjung Pelepas", "MY", 1.36, 103.55, 7.0, "SGS"),
    _p("THLCH", "Laem Chabang", "TH", 13.08, 100.88, 6.5, "GOTH"),
    _p("VNSGN", "Ho Chi Minh City", "VN", 10.50, 107.03, 6.0, "SCS"),
    _p("VNHPH", "Haiphong", "VN", 20.85, 106.78, 5.5, "SCS"),
    _p("IDTPP", "Jakarta (Tanjung Priok)", "ID", -6.10, 106.88, 6.5, "JAVA"),
    _p("IDSUB", "Surabaya", "ID", -7.20, 112.73, 5.5, "JAVA"),
    _p("PHMNL", "Manila", "PH", 14.58, 120.95, 6.0, "LUZ", "SCS"),
    # --- South Asia ------------------------------------------------------------
    _p("LKCMB", "Colombo", "LK", 6.95, 79.84, 7.0, "DON"),
    _p("INNSA", "Nhava Sheva", "IN", 18.95, 72.94, 7.0, "ARAB"),
    _p("INMUN", "Mundra", "IN", 22.74, 69.70, 6.5, "ARAB"),
    _p("INMAA", "Chennai", "IN", 13.10, 80.30, 5.5, "BENG"),
    _p("INVTZ", "Visakhapatnam", "IN", 17.69, 83.29, 5.0, "BENG"),
    _p("BDCGP", "Chittagong", "BD", 22.31, 91.80, 5.5, "BENG"),
    _p("PKKHI", "Karachi", "PK", 24.83, 66.97, 5.5, "ARAB"),
    # --- Middle East -------------------------------------------------------------
    _p("AEJEA", "Jebel Ali (Dubai)", "AE", 25.01, 55.06, 8.0, "HRM"),
    _p("AEAUH", "Abu Dhabi", "AE", 24.52, 54.38, 5.5, "HRM"),
    _p("OMSLL", "Salalah", "OM", 16.95, 54.00, 6.0, "ARAB"),
    _p("OMSOH", "Sohar", "OM", 24.50, 56.63, 5.0, "HRM"),
    _p("SAJED", "Jeddah", "SA", 21.48, 39.17, 6.5, "REDC"),
    _p("SADMM", "Dammam", "SA", 26.50, 50.20, 5.5, "HRM"),
    _p("KWKWI", "Kuwait (Shuwaikh)", "KW", 29.35, 47.93, 5.0, "HRM"),
    _p("IQBSR", "Basra (Umm Qasr)", "IQ", 30.03, 47.94, 4.5, "HRM"),
    _p("QAHMD", "Hamad", "QA", 25.01, 51.61, 5.0, "HRM"),
    # --- Europe: Mediterranean & Black Sea ----------------------------------------
    _p("GRPIR", "Piraeus", "GR", 37.94, 23.62, 7.0, "MEDE", "MEDC"),
    _p("ITGOA", "Genoa", "IT", 44.40, 8.92, 6.0, "MEDC"),
    _p("ITGIT", "Gioia Tauro", "IT", 38.45, 15.90, 5.5, "MEDC"),
    _p("ESVLC", "Valencia", "ES", 39.44, -0.32, 6.5, "GIB", "MEDC"),
    _p("ESALG", "Algeciras", "ES", 36.13, -5.44, 7.0, "GIB"),
    _p("ESBCN", "Barcelona", "ES", 41.35, 2.16, 5.5, "MEDC"),
    _p("FRMRS", "Marseille", "FR", 43.31, 5.33, 5.5, "MEDC"),
    _p("MTMAR", "Marsaxlokk", "MT", 35.83, 14.54, 5.5, "MEDC"),
    _p("EGPSD", "Port Said", "EG", 31.26, 32.31, 6.5, "SUZN", radius_m=9_000.0),
    _p("EGALY", "Alexandria", "EG", 31.19, 29.87, 5.0, "MEDE"),
    _p("TRAMB", "Ambarli (Istanbul)", "TR", 40.97, 28.69, 5.5, "BSP"),
    _p("ROCND", "Constanta", "RO", 44.16, 28.65, 4.5, "BSP"),
    _p("UAODS", "Odesa", "UA", 46.49, 30.74, 4.0, "BSP"),
    _p("MATNG", "Tanger Med", "MA", 35.88, -5.50, 6.5, "GIB"),
    _p("MACAS", "Casablanca", "MA", 33.61, -7.62, 4.5, "GIB"),
    # --- Europe: Atlantic, North Sea, Baltic ----------------------------------------
    _p("NLRTM", "Rotterdam", "NL", 51.95, 4.05, 10.0, "NSEA", "DOV"),
    _p("BEANR", "Antwerp", "BE", 51.28, 4.30, 8.5, "DOV", "NSEA"),
    _p("DEHAM", "Hamburg", "DE", 53.54, 9.93, 8.0, "NSEA"),
    _p("DEBRV", "Bremerhaven", "DE", 53.57, 8.55, 7.0, "NSEA"),
    _p("FRLEH", "Le Havre", "FR", 49.47, 0.15, 6.5, "DOV", "BISC"),
    _p("GBFXT", "Felixstowe", "GB", 51.95, 1.31, 7.0, "DOV", "NSEA"),
    _p("GBSOU", "Southampton", "GB", 50.90, -1.41, 6.0, "DOV", "BISC"),
    _p("GBLGP", "London Gateway", "GB", 51.50, 0.46, 5.5, "DOV"),
    _p("ESBIO", "Bilbao", "ES", 43.35, -3.03, 4.5, "BISC"),
    _p("PTLIS", "Lisbon", "PT", 38.70, -9.15, 4.5, "GIB", "BISC"),
    _p("PTSIE", "Sines", "PT", 37.94, -8.87, 5.0, "GIB", "BISC"),
    _p("IEDUB", "Dublin", "IE", 53.35, -6.20, 4.0, "DOV", "BISC"),
    # Baltic (the Figure 4 region)
    _p("PLGDN", "Gdansk", "PL", 54.40, 18.67, 5.5, "BALT"),
    _p("PLGDY", "Gdynia", "PL", 54.53, 18.55, 4.5, "BALT"),
    _p("LTKLJ", "Klaipeda", "LT", 55.71, 21.11, 4.0, "BALT"),
    _p("LVRIX", "Riga", "LV", 57.03, 24.05, 4.0, "BALT"),
    _p("EETLL", "Tallinn", "EE", 59.45, 24.77, 4.0, "GFIN"),
    _p("FIHEL", "Helsinki", "FI", 60.15, 24.97, 4.5, "GFIN"),
    _p("FIKTK", "Kotka", "FI", 60.43, 26.96, 3.5, "GFIN"),
    _p("RULED", "St Petersburg", "RU", 59.88, 30.20, 5.0, "GFIN"),
    _p("SESTO", "Stockholm", "SE", 59.35, 18.14, 4.0, "BALT"),
    _p("SEGOT", "Gothenburg", "SE", 57.69, 11.90, 5.0, "SKA"),
    _p("DKCPH", "Copenhagen-Malmo", "DK", 55.69, 12.61, 4.5, "SKA", "BALT"),
    _p("DKAAR", "Aarhus", "DK", 56.15, 10.23, 4.5, "SKA"),
    _p("DERSK", "Rostock", "DE", 54.15, 12.10, 4.0, "BALT", "SKA"),
    _p("NOOSL", "Oslo", "NO", 59.90, 10.73, 4.0, "SKA"),
    _p("NOBGO", "Bergen", "NO", 60.39, 5.31, 3.5, "NORW"),
    # --- Africa -----------------------------------------------------------------
    _p("ZADUR", "Durban", "ZA", -29.87, 31.03, 6.0, "GOOD", "MOZ"),
    _p("ZACPT", "Cape Town", "ZA", -33.91, 18.43, 5.0, "GOOD"),
    _p("ZAPLZ", "Gqeberha (Port Elizabeth)", "ZA", -33.96, 25.63, 4.0, "GOOD"),
    _p("NGAPP", "Lagos (Apapa)", "NG", 6.43, 3.37, 5.0, "WAFR"),
    _p("GHTEM", "Tema", "GH", 5.64, 0.01, 4.5, "WAFR"),
    _p("CIABJ", "Abidjan", "CI", 5.25, -4.00, 4.5, "WAFR"),
    _p("SNDKR", "Dakar", "SN", 14.68, -17.43, 4.0, "WAFR", "MATL"),
    _p("KEMBA", "Mombasa", "KE", -4.07, 39.66, 4.5, "MOZ", "ARAB"),
    _p("TZDAR", "Dar es Salaam", "TZ", -6.82, 39.30, 4.0, "MOZ"),
    _p("DJJIB", "Djibouti", "DJ", 11.60, 43.15, 5.0, "BAB"),
    # --- North America ---------------------------------------------------------------
    _p("USLAX", "Los Angeles", "US", 33.73, -118.26, 9.0, "USWC"),
    _p("USLGB", "Long Beach", "US", 33.75, -118.20, 8.5, "USWC"),
    _p("USOAK", "Oakland", "US", 37.80, -122.32, 6.5, "USWC"),
    _p("USSEA", "Seattle", "US", 47.58, -122.35, 6.0, "USWC"),
    _p("USTAC", "Tacoma", "US", 47.27, -122.41, 5.5, "USWC"),
    _p("CAVAN", "Vancouver", "CA", 49.29, -123.11, 6.5, "USWC"),
    _p("CAPRR", "Prince Rupert", "CA", 54.32, -130.32, 4.5, "USWC", "NPAC"),
    _p("USNYC", "New York-New Jersey", "US", 40.67, -74.05, 8.5, "USEC"),
    _p("USSAV", "Savannah", "US", 32.08, -81.09, 7.0, "USEC"),
    _p("USORF", "Norfolk", "US", 36.90, -76.33, 6.5, "USEC"),
    _p("USCHS", "Charleston", "US", 32.78, -79.93, 6.0, "USEC"),
    _p("USHOU", "Houston", "US", 29.73, -95.09, 7.0, "USGC"),
    _p("USNOL", "New Orleans", "US", 29.93, -90.06, 5.5, "USGC"),
    _p("USMIA", "Miami", "US", 25.77, -80.17, 5.5, "CARB", "USEC"),
    _p("CAMTR", "Montreal", "CA", 45.56, -73.52, 4.5, "NATL"),
    _p("CAHAL", "Halifax", "CA", 44.65, -63.57, 4.5, "NATL", "USEC"),
    # --- Central & South America ------------------------------------------------------
    _p("MXZLO", "Manzanillo (MX)", "MX", 19.06, -104.31, 5.5, "PANP", "USWC"),
    _p("MXLZC", "Lazaro Cardenas", "MX", 17.94, -102.18, 5.0, "PANP", "USWC"),
    _p("MXVER", "Veracruz", "MX", 19.21, -96.12, 4.5, "USGC"),
    _p("PAPTY", "Balboa (Panama)", "PA", 8.95, -79.57, 6.0, "PANP", radius_m=8_000.0),
    _p("PAONX", "Colon", "PA", 9.36, -79.90, 6.0, "PANC", radius_m=8_000.0),
    _p("COCTG", "Cartagena (CO)", "CO", 10.40, -75.53, 5.5, "CARB", "PANC"),
    _p("JMKIN", "Kingston", "JM", 17.97, -76.79, 5.0, "CARB"),
    _p("DOCAU", "Caucedo", "DO", 18.42, -69.63, 4.5, "CARB"),
    _p("BRSSZ", "Santos", "BR", -23.98, -46.29, 6.5, "SATL", "SAMC"),
    _p("BRPNG", "Paranagua", "BR", -25.50, -48.51, 5.0, "SAMC"),
    _p("BRRIG", "Rio Grande", "BR", -32.07, -52.09, 4.5, "SAMC"),
    _p("BRRIO", "Rio de Janeiro", "BR", -22.89, -43.18, 5.0, "SATL", "SAMC"),
    _p("ARBUE", "Buenos Aires", "AR", -34.58, -58.36, 5.0, "SAMC"),
    _p("UYMVD", "Montevideo", "UY", -34.90, -56.21, 4.5, "SAMC"),
    _p("PECLL", "Callao", "PE", -12.04, -77.14, 5.0, "WSAM"),
    _p("CLVAP", "Valparaiso", "CL", -33.03, -71.62, 4.5, "WSAM"),
    _p("CLSAI", "San Antonio (CL)", "CL", -33.59, -71.61, 4.5, "WSAM"),
    _p("ECGYE", "Guayaquil", "EC", -2.28, -79.91, 4.5, "WSAM", "PANP"),
    # --- Oceania -------------------------------------------------------------------
    _p("AUSYD", "Sydney (Botany)", "AU", -33.97, 151.22, 5.5, "AUSS", "TASM"),
    _p("AUMEL", "Melbourne", "AU", -37.83, 144.92, 5.5, "AUSS"),
    _p("AUBNE", "Brisbane", "AU", -27.38, 153.17, 5.0, "TASM", "CORL"),
    _p("AUFRE", "Fremantle", "AU", -32.05, 115.74, 4.5, "AUSW"),
    _p("NZAKL", "Auckland", "NZ", -36.84, 174.78, 4.5, "TASM"),
    _p("NZTRG", "Tauranga", "NZ", -37.64, 176.18, 4.0, "TASM"),
    _p("USHNL", "Honolulu", "US", 21.31, -157.87, 4.0, "HAWI"),
)

_PORT_INDEX = {port.port_id: port for port in PORTS}

if len(_PORT_INDEX) != len(PORTS):  # pragma: no cover - data sanity
    raise RuntimeError("duplicate port ids in the port database")


def port_by_id(port_id: str) -> Port:
    """Look a port up by id; raises :class:`KeyError` with a helpful
    message for unknown ids."""
    try:
        return _PORT_INDEX[port_id]
    except KeyError:
        raise KeyError(f"unknown port id {port_id!r}") from None


def ports_dataframe_rows() -> list[dict]:
    """The database as plain dict rows (for CSV export and examples)."""
    return [
        {
            "port_id": port.port_id,
            "name": port.name,
            "country": port.country,
            "lat": port.lat,
            "lon": port.lon,
            "weight": port.weight,
            "radius_m": port.radius_m,
        }
        for port in PORTS
    ]
