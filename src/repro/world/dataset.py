"""Top-level dataset generation: the synthetic stand-in for Table 1.

``generate_dataset`` assembles the whole world — fleet, voyage schedules,
scenario rewrites, AIS tracks with injected defects — and returns the
triple the paper's pipeline consumes (positional reports, vessel static
inventory, port database) plus the ground truth (the true voyages) that
the use-case benchmarks score against.

Everything is driven by one seed: the same config produces the same bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ais.messages import PositionReport
from repro.geo.distance import haversine_m
from repro.geo.polygon import BoundingBox
from repro.world.fleet import Vessel, build_fleet
from repro.world.ports import PORTS, Port, port_by_id
from repro.world.routing import SeaRouter
from repro.world.scenarios import Scenario
from repro.world.simulator import DefectStats, NoiseModel, TrackSimulator
from repro.world.voyages import VoyagePlan, schedule_voyages

#: 2022-01-01T00:00:00Z — the paper's analysis year.
EPOCH_2022 = 1_640_995_200.0

_KNOT_MS = 0.514444

_ROUTER_CACHE: list[SeaRouter] = []


def _default_router() -> SeaRouter:
    if not _ROUTER_CACHE:
        _ROUTER_CACHE.append(SeaRouter())
    return _ROUTER_CACHE[0]


@dataclass(frozen=True)
class WorldConfig:
    """Generation parameters.

    Defaults produce a few hundred thousand reports — minutes of pipeline
    time on a laptop.  Tests use far smaller configs; benchmarks scale up.
    """

    seed: int = 42
    n_vessels: int = 60
    start_ts: float = EPOCH_2022
    days: float = 20.0
    report_interval_s: float = 300.0
    moored_interval_s: float = 1800.0
    noise: NoiseModel = field(default_factory=NoiseModel)
    scenarios: tuple[Scenario, ...] = ()
    region: BoundingBox | None = None
    clean: bool = False

    @property
    def end_ts(self) -> float:
        """Exclusive end of the simulation window."""
        return self.start_ts + self.days * 86_400.0


@dataclass
class SyntheticDataset:
    """Everything the pipeline (and its evaluators) needs."""

    positions: list[PositionReport]
    fleet: list[Vessel]
    ports: tuple[Port, ...]
    voyages: list[VoyagePlan]
    defects: DefectStats
    config: WorldConfig

    def static_by_mmsi(self) -> dict[int, Vessel]:
        """The static-report inventory as a lookup table."""
        return {vessel.mmsi: vessel for vessel in self.fleet}

    def voyage_arrival_ts(self, plan: VoyagePlan) -> float:
        """Scheduled arrival time of a voyage (depart + route/speed)."""
        total = 0.0
        router = _default_router()
        for a, b in zip(plan.route_nodes, plan.route_nodes[1:]):
            lat_a, lon_a = router.node_position(a)
            lat_b, lon_b = router.node_position(b)
            total += haversine_m(lat_a, lon_a, lat_b, lon_b)
        return plan.depart_ts + total / (plan.speed_kn * _KNOT_MS)


def generate_dataset(config: WorldConfig | None = None) -> SyntheticDataset:
    """Build the full synthetic dataset for a configuration."""
    config = config or WorldConfig()
    rng = random.Random(config.seed)
    ports = _select_ports(config.region)
    router = SeaRouter()
    fleet = build_fleet(config.n_vessels, seed=config.seed)
    simulator = TrackSimulator(
        router,
        noise=config.noise,
        report_interval_s=config.report_interval_s,
        moored_interval_s=config.moored_interval_s,
    )
    positions: list[PositionReport] = []
    voyages: list[VoyagePlan] = []
    defects = DefectStats()
    for vessel in fleet:
        vessel_rng = random.Random(config.seed * 1_000_003 + vessel.mmsi)
        if vessel.is_commercial:
            track, plans, stats = _commercial_track(
                vessel, ports, router, simulator, config, vessel_rng
            )
            voyages.extend(plans)
        else:
            home = vessel_rng.choice(ports)
            track = simulator.local_track(
                vessel.mmsi, home, config.start_ts, config.end_ts, vessel_rng
            )
            if not config.clean:
                track, stats = simulator.corrupt(track, vessel_rng)
            else:
                stats = DefectStats()
        positions.extend(track)
        defects.merge(stats)
    # Archives arrive in receive-time order; re-sort the per-vessel tracks
    # into one global feed (injected out-of-order swaps survive because
    # the sort key is arrival position, not the reported timestamp — we
    # emulate that by sorting on the *sequence* the corruptor produced
    # within each vessel and interleaving by timestamp only across vessels).
    positions.sort(key=lambda r: r.epoch_ts)
    return SyntheticDataset(
        positions=positions,
        fleet=fleet,
        ports=ports,
        voyages=voyages,
        defects=defects,
        config=config,
    )


def _commercial_track(
    vessel: Vessel,
    ports: tuple[Port, ...],
    router: SeaRouter,
    simulator: TrackSimulator,
    config: WorldConfig,
    rng: random.Random,
) -> tuple[list[PositionReport], list[VoyagePlan], DefectStats]:
    plans = schedule_voyages(
        vessel.mmsi,
        vessel.segment,
        vessel.design_speed_kn,
        router,
        config.start_ts,
        config.end_ts,
        rng,
        ports=ports,
    )
    for scenario in config.scenarios:
        plans = scenario.apply(plans, router)
    track: list[PositionReport] = []
    if plans and plans[0].depart_ts > config.start_ts:
        # Pre-departure loading: moored at the first origin so the trip
        # extractor sees a departure stop for the first voyage too.
        first = plans[0]
        loading_start = max(
            config.start_ts, first.depart_ts - rng.uniform(6.0, 24.0) * 3600.0
        )
        track.extend(
            simulator.dwell_track(
                port_by_id(first.origin),
                vessel.mmsi,
                loading_start,
                first.depart_ts,
                rng,
            )
        )
    for index, plan in enumerate(plans):
        voyage_reports = simulator.voyage_track(plan, config.end_ts, rng)
        track.extend(voyage_reports)
        if voyage_reports and index + 1 < len(plans):
            arrival_ts = voyage_reports[-1].epoch_ts
            next_depart = plans[index + 1].depart_ts
            if next_depart - arrival_ts > simulator.moored_interval_s:
                track.extend(
                    simulator.dwell_track(
                        port_by_id(plan.destination),
                        vessel.mmsi,
                        arrival_ts + simulator.moored_interval_s,
                        min(next_depart, config.end_ts),
                        rng,
                    )
                )
    stats = DefectStats()
    if not config.clean:
        track, stats = simulator.corrupt(track, rng)
    return track, plans, stats


def _select_ports(region: BoundingBox | None) -> tuple[Port, ...]:
    if region is None:
        return PORTS
    selected = tuple(
        port for port in PORTS if region.contains(port.lat, port.lon)
    )
    if len(selected) < 2:
        raise ValueError(
            "region must contain at least two ports for voyages to exist"
        )
    return selected
