"""Voyage scheduling: which vessel sails where, and when.

Real fleets are creatures of habit — a container vessel loops the same
liner service for months, a shuttle tanker ping-pongs between a terminal
and a refinery.  That route consistency is what makes lane patterns
emerge from AIS data, so the scheduler reproduces it: each vessel draws a
small set of *home routes* matching its market segment, then sails them in
rotation (with occasional one-off charters) for the whole simulation
window, dwelling in port between voyages.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.ais.vesseltypes import MarketSegment
from repro.geo.distance import haversine_m
from repro.world.ports import PORTS, Port, port_by_id
from repro.world.routing import RouteNotFound, SeaRouter

#: Ports whose region exports crude/products (tanker loading bias).
_TANKER_LOAD_PORTS = (
    "SADMM", "KWKWI", "IQBSR", "AEJEA", "QAHMD", "USHOU", "USNOL", "NGAPP",
    "RULED", "MXVER",
)

#: Passenger routes stay short (ferries / short cruises).
_PASSENGER_MAX_M = 1_500_000.0


@dataclass(frozen=True, slots=True)
class VoyagePlan:
    """One scheduled voyage (also the evaluation ground truth: the apps
    are scored against these true origins/destinations/times)."""

    mmsi: int
    origin: str
    destination: str
    depart_ts: float
    speed_kn: float
    route_nodes: tuple[str, ...]


def pick_home_routes(
    vessel_segment: MarketSegment,
    rng: random.Random,
    router: SeaRouter,
    ports: tuple[Port, ...] = PORTS,
    n_routes: int = 3,
) -> list[tuple[str, str]]:
    """Draw a vessel's home routes according to its market's habits."""
    routes: list[tuple[str, str]] = []
    attempts = 0
    while len(routes) < n_routes and attempts < 200:
        attempts += 1
        pair = _draw_pair(vessel_segment, rng, ports)
        if pair is None or pair in routes:
            continue
        try:
            router.route_nodes(*pair)
        except RouteNotFound:
            continue
        routes.append(pair)
    if not routes:
        raise RouteNotFound(
            f"could not find any sailable route for segment {vessel_segment}"
        )
    return routes


def schedule_voyages(
    mmsi: int,
    segment: MarketSegment,
    design_speed_kn: float,
    router: SeaRouter,
    start_ts: float,
    end_ts: float,
    rng: random.Random,
    ports: tuple[Port, ...] = PORTS,
) -> list[VoyagePlan]:
    """All voyages of one vessel over [start_ts, end_ts).

    The vessel rotates through its home routes; between voyages it dwells
    in port for 8–48 hours.  A voyage that would end after ``end_ts`` is
    still emitted (trucation happens at track generation), so the window's
    edge does not starve long routes.
    """
    home_routes = pick_home_routes(segment, rng, router, ports)
    plans: list[VoyagePlan] = []
    clock = start_ts + rng.uniform(0.0, 48.0 * 3600.0)
    route_index = rng.randrange(len(home_routes))
    position = home_routes[route_index][0]
    while clock < end_ts:
        origin, destination = home_routes[route_index % len(home_routes)]
        if origin != position:
            # Sail the home route in whichever direction starts here; if
            # the vessel is elsewhere (after a charter), reposition.
            if destination == position:
                origin, destination = destination, origin
            else:
                origin = position
        if rng.random() < 0.10:
            # Occasional one-off charter to a random compatible port.
            charter = _draw_pair(segment, rng, ports, fixed_origin=origin)
            if charter is not None:
                try:
                    router.route_nodes(*charter)
                    origin, destination = charter
                except RouteNotFound:
                    pass
        if origin == destination:
            route_index += 1
            continue
        speed = max(6.0, design_speed_kn * rng.uniform(0.88, 1.02))
        try:
            nodes = tuple(router.route_nodes(origin, destination))
        except RouteNotFound:
            route_index += 1
            continue
        plans.append(
            VoyagePlan(
                mmsi=mmsi,
                origin=origin,
                destination=destination,
                depart_ts=clock,
                speed_kn=speed,
                route_nodes=nodes,
            )
        )
        sail_seconds = _route_length_m(router, nodes) / (speed * 0.514444)
        dwell_seconds = rng.uniform(8.0, 48.0) * 3600.0
        clock += sail_seconds + dwell_seconds
        position = destination
        route_index += 1
    return plans


def _route_length_m(router: SeaRouter, nodes: tuple[str, ...]) -> float:
    total = 0.0
    for a, b in zip(nodes, nodes[1:]):
        lat_a, lon_a = router.node_position(a)
        lat_b, lon_b = router.node_position(b)
        total += haversine_m(lat_a, lon_a, lat_b, lon_b)
    return total


def _draw_pair(
    segment: MarketSegment,
    rng: random.Random,
    ports: tuple[Port, ...],
    fixed_origin: str | None = None,
) -> tuple[str, str] | None:
    weights = [port.weight for port in ports]
    if fixed_origin is not None:
        origin = port_by_id(fixed_origin)
    elif segment is MarketSegment.TANKER and rng.random() < 0.7:
        candidates = [p for p in ports if p.port_id in _TANKER_LOAD_PORTS]
        origin = rng.choice(candidates) if candidates else None
        if origin is None:
            origin = rng.choices(ports, weights=weights)[0]
    else:
        origin = rng.choices(ports, weights=weights)[0]
    for _ in range(50):
        destination = rng.choices(ports, weights=weights)[0]
        if destination.port_id == origin.port_id:
            continue
        distance = haversine_m(origin.lat, origin.lon, destination.lat, destination.lon)
        if segment is MarketSegment.PASSENGER and distance > _PASSENGER_MAX_M:
            continue
        if distance < 80_000.0:
            continue
        # Distance decay: most trades are regional, with a persistent
        # long-haul tail (gravity-model shape).  Keeps simulated windows
        # rich in completed trips without erasing transoceanic lanes.
        accept = 0.20 + 0.80 * math.exp(-distance / 6_000_000.0)
        if rng.random() > accept:
            continue
        return origin.port_id, destination.port_id
    return None
