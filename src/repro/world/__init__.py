"""The synthetic maritime world (the proprietary-AIS-archive substitute).

The paper processes a year of MarineTraffic's global AIS archive.  That
archive is proprietary, so this package builds the closest synthetic
equivalent that exercises every code path of the methodology:

- :mod:`repro.world.ports` — ~120 real-coordinate world ports with
  traffic weights and geofence radii (the paper's external port database).
- :mod:`repro.world.waterways` — named waypoints (straits, canals, ocean
  hubs) and the curated sea-lane graph connecting them.
- :mod:`repro.world.routing` — Dijkstra routing over the sea-lane graph,
  with canal-blocking support (the Suez scenario reroutes via the Cape of
  Good Hope *emergently*, because removing the canal edge leaves the Cape
  as the shortest remaining path).
- :mod:`repro.world.fleet` — fleet synthesis: MMSIs with real country
  prefixes, IMO numbers with valid check digits, market segments, GRT and
  design speeds.
- :mod:`repro.world.voyages` — voyage scheduling: vessels loop over a
  small set of home routes, reproducing the route consistency that makes
  lane patterns emerge in real AIS data.
- :mod:`repro.world.simulator` — the AIS track generator: great-circle
  legs, speed profiles, report cadence, GPS/course noise, port dwell, and
  injected data-quality defects (out-of-range fields, duplicates,
  out-of-order timestamps, teleport spikes) for the cleaning stage to
  remove.
- :mod:`repro.world.scenarios` — disruptions (Suez blockage, port
  shutdown) for the anomaly-detection use case.
- :mod:`repro.world.dataset` — the top-level generator producing the
  (positions, fleet, ports) triple the pipeline consumes.
"""

from repro.world.ports import Port, PORTS, port_by_id, ports_dataframe_rows
from repro.world.waterways import Waypoint, WAYPOINTS, SEA_EDGES, CANAL_EDGES
from repro.world.routing import SeaRouter, RouteNotFound
from repro.world.fleet import Vessel, build_fleet
from repro.world.voyages import VoyagePlan, schedule_voyages
from repro.world.simulator import TrackSimulator, NoiseModel
from repro.world.scenarios import Scenario, SuezBlockage, PortShutdown
from repro.world.dataset import WorldConfig, SyntheticDataset, generate_dataset

__all__ = [
    "Port",
    "PORTS",
    "port_by_id",
    "ports_dataframe_rows",
    "Waypoint",
    "WAYPOINTS",
    "SEA_EDGES",
    "CANAL_EDGES",
    "SeaRouter",
    "RouteNotFound",
    "Vessel",
    "build_fleet",
    "VoyagePlan",
    "schedule_voyages",
    "TrackSimulator",
    "NoiseModel",
    "Scenario",
    "SuezBlockage",
    "PortShutdown",
    "WorldConfig",
    "SyntheticDataset",
    "generate_dataset",
]
