"""Waypoints and the curated sea-lane graph.

Real vessels do not sail port-to-port great circles — they thread straits,
canals and traffic corridors.  The simulator reproduces that by routing
every voyage through a graph whose nodes are ports plus the waypoints
below (straits, canal mouths, open-ocean hubs) and whose edges are the
curated sea lanes connecting them.  Legs between adjacent nodes are sailed
as great circles.

Canal edges carry a ``canal`` tag so scenarios can block them: removing
the ``suez`` edge makes Dijkstra discover the Cape of Good Hope routing by
itself, which is exactly the 2021 Ever Given diversion the paper's
introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Waypoint:
    """A named node of the sea-lane graph."""

    waypoint_id: str
    name: str
    lat: float
    lon: float


def _w(waypoint_id: str, name: str, lat: float, lon: float) -> Waypoint:
    return Waypoint(waypoint_id, name, lat, lon)


#: All waypoints, keyed by id.
WAYPOINTS: dict[str, Waypoint] = {
    w.waypoint_id: w
    for w in (
        # Europe
        _w("DOV", "Dover Strait", 51.05, 1.45),
        _w("NSEA", "North Sea hub", 54.30, 4.00),
        _w("SKA", "Skagen", 57.90, 10.70),
        _w("BALT", "Central Baltic", 56.00, 18.00),
        _w("GFIN", "Gulf of Finland entrance", 59.60, 24.00),
        _w("NORW", "Norwegian Sea", 61.50, 3.50),
        _w("BISC", "Cape Finisterre", 43.80, -9.80),
        _w("GIB", "Strait of Gibraltar", 35.95, -5.55),
        _w("MEDC", "Sicily Channel", 37.00, 11.00),
        _w("MEDE", "Eastern Mediterranean", 33.80, 28.50),
        _w("BSP", "Bosporus approach", 40.90, 28.20),
        # Suez & Indian Ocean
        _w("SUZN", "Suez Canal north", 31.35, 32.35),
        _w("SUZS", "Suez Canal south", 29.75, 32.55),
        _w("REDC", "Central Red Sea", 19.50, 38.80),
        _w("BAB", "Bab-el-Mandeb", 12.50, 43.30),
        _w("ARAB", "Arabian Sea hub", 14.00, 62.00),
        _w("HRM", "Strait of Hormuz", 26.35, 56.50),
        _w("DON", "Dondra Head", 5.50, 80.50),
        _w("BENG", "Bay of Bengal hub", 11.00, 85.00),
        _w("SIND", "South Indian Ocean hub", -32.00, 80.00),
        _w("MOZ", "Mozambique Channel", -15.00, 42.00),
        _w("GOOD", "Cape of Good Hope", -35.30, 18.00),
        # Southeast & East Asia
        _w("MAL", "Malacca NW approach", 6.50, 96.50),
        _w("SGS", "Singapore Strait", 1.15, 103.75),
        _w("GOTH", "Gulf of Thailand", 9.50, 101.50),
        _w("JAVA", "Java Sea", -6.00, 107.50),
        _w("SCS", "South China Sea hub", 12.00, 111.50),
        _w("TWN", "Taiwan Strait", 23.00, 118.50),
        _w("LUZ", "Luzon Strait", 19.50, 120.80),
        _w("ECS", "East China Sea", 29.50, 124.00),
        _w("YELL", "Yellow Sea", 37.00, 123.50),
        _w("KOR", "Korea Strait", 33.80, 128.80),
        _w("TOK", "Tokyo Bay approach", 34.50, 139.50),
        # Pacific
        _w("NPAC", "North Pacific hub", 45.00, -178.00),
        _w("HAWI", "Hawaii", 21.20, -157.70),
        _w("SPAC", "South Pacific hub", -15.00, -150.00),
        _w("USWC", "US West Coast hub", 36.00, -126.00),
        # Americas
        _w("USEC", "US East Coast hub", 35.50, -74.50),
        _w("USGC", "Gulf of Mexico hub", 25.50, -87.00),
        _w("CARB", "Caribbean hub", 17.50, -67.50),
        _w("PANC", "Panama Canal Caribbean side", 9.50, -79.90),
        _w("PANP", "Panama Canal Pacific side", 8.30, -79.30),
        _w("SAMC", "Rio de la Plata approach", -36.00, -52.00),
        _w("WSAM", "West South America hub", -18.00, -74.50),
        _w("HORN", "Cape Horn", -57.00, -66.50),
        # Atlantic
        _w("NATL", "North Atlantic hub", 48.00, -35.00),
        _w("MATL", "Mid Atlantic hub", 28.00, -50.00),
        _w("SATL", "South Atlantic hub", -10.00, -30.00),
        _w("WAFR", "Gulf of Guinea hub", 2.50, 0.00),
        # Oceania
        _w("AUSW", "Cape Leeuwin", -35.50, 114.50),
        _w("AUSS", "Bass Strait", -39.80, 145.50),
        _w("TASM", "Tasman Sea hub", -36.00, 158.00),
        _w("CORL", "Coral Sea hub", -22.00, 155.00),
    )
}

#: Canal edges, tagged so scenarios can block them.
CANAL_EDGES: tuple[tuple[str, str, str], ...] = (
    ("SUZN", "SUZS", "suez"),
    ("PANC", "PANP", "panama"),
)

#: Open-sea edges of the lane graph (undirected).
SEA_EDGES: tuple[tuple[str, str], ...] = (
    # Europe
    ("DOV", "NSEA"),
    ("DOV", "BISC"),
    ("NSEA", "SKA"),
    ("NSEA", "NORW"),
    ("SKA", "BALT"),
    ("BALT", "GFIN"),
    ("BISC", "GIB"),
    ("GIB", "MEDC"),
    ("MEDC", "MEDE"),
    ("MEDE", "BSP"),
    ("MEDE", "SUZN"),
    # Suez → Indian Ocean
    ("SUZS", "REDC"),
    ("REDC", "BAB"),
    ("BAB", "ARAB"),
    ("ARAB", "HRM"),
    ("ARAB", "DON"),
    ("ARAB", "MOZ"),
    ("DON", "BENG"),
    ("DON", "MAL"),
    ("DON", "SIND"),
    ("DON", "GOOD"),
    ("SIND", "GOOD"),
    ("SIND", "AUSW"),
    ("GOOD", "MOZ"),
    # Southeast / East Asia
    ("MAL", "SGS"),
    ("SGS", "GOTH"),
    ("SGS", "JAVA"),
    ("SGS", "SCS"),
    ("GOTH", "SCS"),
    ("SCS", "TWN"),
    ("SCS", "LUZ"),
    ("TWN", "ECS"),
    ("LUZ", "TOK"),
    ("ECS", "YELL"),
    ("ECS", "KOR"),
    ("KOR", "TOK"),
    ("JAVA", "AUSW"),
    # Pacific
    ("TOK", "NPAC"),
    ("NPAC", "USWC"),
    ("NPAC", "HAWI"),
    ("HAWI", "USWC"),
    ("HAWI", "SPAC"),
    ("SPAC", "PANP"),
    ("SPAC", "TASM"),
    ("TASM", "AUSS"),
    ("TASM", "CORL"),
    ("CORL", "LUZ"),
    ("AUSS", "AUSW"),
    # Americas
    ("USWC", "PANP"),
    ("PANC", "CARB"),
    ("CARB", "USEC"),
    ("CARB", "USGC"),
    ("USGC", "USEC"),
    ("CARB", "MATL"),
    ("USEC", "NATL"),
    ("USEC", "MATL"),
    ("WSAM", "PANP"),
    ("WSAM", "HORN"),
    ("HORN", "SAMC"),
    ("SAMC", "SATL"),
    # Atlantic
    ("NATL", "DOV"),
    ("NATL", "BISC"),
    ("NATL", "MATL"),
    ("MATL", "GIB"),
    ("MATL", "SATL"),
    ("SATL", "GOOD"),
    ("SATL", "WAFR"),
    ("WAFR", "GIB"),
    ("WAFR", "GOOD"),
    # The Cape ↔ Europe lane sails the open Atlantic directly.
    ("GOOD", "GIB"),
    ("GOOD", "BISC"),
)
