"""A synthetic global wind climatology (the §5 weather-data substitute).

The paper's future work plans to "combine AIS with weather … data in order
to provide trade specific related summaries".  Real reanalysis data
(ERA5 etc.) is not available offline, so this module provides a
deterministic synthetic wind field with the climatology's gross structure:

- **latitudinal bands**: easterly trade winds in the tropics, strong
  westerlies in the mid-latitude storm tracks (the "roaring forties"),
  calmer doldrums and subtropical ridges between;
- **synoptic texture**: smooth spatial harmonics standing in for highs and
  lows, drifting eastward over time;
- **determinism**: the same (seed, position, time) always yields the same
  sample, so pipelines stay reproducible.

Units: wind speed in m/s, meteorological direction in degrees (direction
the wind blows *from*, 0 = north).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class WindSample:
    """One wind observation."""

    speed_ms: float
    direction_deg: float

    @property
    def speed_kn(self) -> float:
        """Speed in knots."""
        return self.speed_ms / 0.514444


class WindField:
    """Deterministic synthetic global wind."""

    #: Eastward drift of the synoptic pattern, degrees of longitude per day.
    DRIFT_DEG_PER_DAY = 5.0

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        # Seeded phase offsets decorrelate fields of different seeds.
        self._phase_a = (seed * 0.7548776662466927) % 1.0 * 2 * math.pi
        self._phase_b = (seed * 0.5698402909980532) % 1.0 * 2 * math.pi

    def wind_at(self, lat: float, lon: float, ts: float = 0.0) -> WindSample:
        """The wind at a position and time."""
        lat = max(-89.9, min(89.9, lat))
        drift = (ts / 86_400.0) * self.DRIFT_DEG_PER_DAY
        lon_eff = math.radians(lon - drift)
        lat_rad = math.radians(lat)

        base_speed, base_from = self._band_climatology(lat)
        # Synoptic modulation: two drifting harmonics.
        texture = (
            math.sin(3.0 * lon_eff + 2.0 * lat_rad + self._phase_a)
            + 0.6 * math.sin(5.0 * lon_eff - 3.0 * lat_rad + self._phase_b)
        )
        speed = max(0.5, base_speed * (1.0 + 0.35 * texture))
        direction = (base_from + 25.0 * texture) % 360.0
        return WindSample(speed_ms=speed, direction_deg=direction)

    @staticmethod
    def _band_climatology(lat: float) -> tuple[float, float]:
        """(mean speed m/s, direction-from deg) of the latitude band."""
        alat = abs(lat)
        hemisphere = 1.0 if lat >= 0 else -1.0
        if alat < 5.0:
            return 3.0, 90.0  # doldrums, light easterlies
        if alat < 30.0:
            # Trade winds: from the east, veering poleward.
            direction = 90.0 + hemisphere * 20.0
            return 7.0, direction % 360.0
        if alat < 35.0:
            return 4.0, 180.0  # subtropical ridge, light and variable
        if alat < 65.0:
            # Westerlies; the southern storm track is stronger.
            speed = 10.0 + (3.0 if lat < 0 else 0.0) + (alat - 35.0) * 0.15
            direction = 270.0 - hemisphere * 15.0
            return speed, direction % 360.0
        return 8.0, 90.0  # polar easterlies
