"""Sea routing: Dijkstra over the port + waypoint lane graph.

The router answers "which sequence of (lat, lon) nodes does a voyage from
port A to port B follow?".  Ports attach to the graph through their
gateway waypoints and through direct short-hop edges to nearby ports
(coastal trades like Los Angeles ↔ Oakland never touch an ocean hub).

Blocking a canal removes its edge before the search, so a blocked Suez
yields Cape of Good Hope routings with no special-case code — the
shortest-path structure of the graph does the rerouting, just as shipping
lines did in March 2021.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.geo.distance import haversine_m
from repro.world.ports import PORTS, Port, port_by_id
from repro.world.waterways import CANAL_EDGES, SEA_EDGES, WAYPOINTS

#: Ports closer than this sail directly without entering the lane graph.
DIRECT_HOP_MAX_M = 450_000.0

#: Routing cost added to a canal transit (queue + pilotage + fees expressed
#: as equivalent sea distance, ≈ one day of steaming).  Keeps shortest
#: paths realistic: a canal is taken when it saves real distance, not to
#: shave a rounding error.
CANAL_PENALTY_M = 800_000.0


class RouteNotFound(Exception):
    """No sea path exists between two ports (e.g. every canal blocked and
    no alternative edge)."""


class SeaRouter:
    """Shortest-path routing over the lane graph.

    :param blocked_canals: canal tags ('suez', 'panama') whose edges are
        removed before searching.
    """

    def __init__(self, blocked_canals: Iterable[str] = ()) -> None:
        self.blocked_canals = frozenset(blocked_canals)
        self._coords: dict[str, tuple[float, float]] = {}
        self._adjacency: dict[str, list[tuple[str, float]]] = {}
        self._route_cache: dict[tuple[str, str], list[str]] = {}
        self._build()

    def node_position(self, node_id: str) -> tuple[float, float]:
        """(lat, lon) of a graph node (port or waypoint)."""
        return self._coords[node_id]

    def route_nodes(self, origin_id: str, dest_id: str) -> list[str]:
        """Node ids along the shortest sea path, origin and destination
        ports included.  Raises :class:`RouteNotFound` when disconnected.
        """
        port_by_id(origin_id)  # validate ids eagerly with a clear error
        port_by_id(dest_id)
        if origin_id == dest_id:
            return [origin_id]
        cache_key = (origin_id, dest_id)
        cached = self._route_cache.get(cache_key)
        if cached is not None:
            return list(cached)
        path = self._dijkstra(origin_id, dest_id)
        if path is None:
            raise RouteNotFound(
                f"no sea route from {origin_id} to {dest_id} "
                f"(blocked canals: {sorted(self.blocked_canals) or 'none'})"
            )
        self._route_cache[cache_key] = path
        return list(path)

    def route_positions(
        self, origin_id: str, dest_id: str
    ) -> list[tuple[float, float]]:
        """(lat, lon) polyline of the shortest sea path."""
        return [self.node_position(n) for n in self.route_nodes(origin_id, dest_id)]

    def route_length_m(self, origin_id: str, dest_id: str) -> float:
        """Total length of the routed path in metres."""
        positions = self.route_positions(origin_id, dest_id)
        return sum(
            haversine_m(a[0], a[1], b[0], b[1])
            for a, b in zip(positions, positions[1:])
        )

    def uses_canal(self, origin_id: str, dest_id: str, canal: str) -> bool:
        """Whether the routed path traverses a canal's edge."""
        tags = {
            frozenset((a, b)): tag for a, b, tag in CANAL_EDGES
        }
        nodes = self.route_nodes(origin_id, dest_id)
        return any(
            tags.get(frozenset((a, b))) == canal for a, b in zip(nodes, nodes[1:])
        )

    # -- construction -----------------------------------------------------------

    def _build(self) -> None:
        for waypoint in WAYPOINTS.values():
            self._coords[waypoint.waypoint_id] = (waypoint.lat, waypoint.lon)
        for port in PORTS:
            self._coords[port.port_id] = (port.lat, port.lon)
        edges: list[tuple[str, str]] = list(SEA_EDGES)
        for port in PORTS:
            for gateway in port.gateways:
                if gateway not in WAYPOINTS:
                    raise KeyError(
                        f"port {port.port_id} references unknown gateway "
                        f"{gateway!r}"
                    )
                edges.append((port.port_id, gateway))
        edges.extend(self._direct_hops())
        for a, b in edges:
            self._add_edge(a, b)
        for a, b, tag in CANAL_EDGES:
            if tag not in self.blocked_canals:
                self._add_edge(a, b, extra_cost_m=CANAL_PENALTY_M)

    def _direct_hops(self) -> list[tuple[str, str]]:
        hops = []
        for i, port_a in enumerate(PORTS):
            for port_b in PORTS[i + 1 :]:
                distance = haversine_m(
                    port_a.lat, port_a.lon, port_b.lat, port_b.lon
                )
                if distance <= DIRECT_HOP_MAX_M and self._share_basin(
                    port_a, port_b
                ):
                    hops.append((port_a.port_id, port_b.port_id))
        return hops

    @staticmethod
    def _share_basin(port_a: Port, port_b: Port) -> bool:
        # A cheap land-avoidance heuristic: nearby ports may sail directly
        # only when they share a gateway (same basin); Panama's two coasts
        # are 80 km apart but share no gateway, so no hop through the
        # isthmus is created.
        return bool(set(port_a.gateways) & set(port_b.gateways))

    def _add_edge(self, a: str, b: str, extra_cost_m: float = 0.0) -> None:
        lat_a, lon_a = self._coords[a]
        lat_b, lon_b = self._coords[b]
        weight = haversine_m(lat_a, lon_a, lat_b, lon_b) + extra_cost_m
        self._adjacency.setdefault(a, []).append((b, weight))
        self._adjacency.setdefault(b, []).append((a, weight))

    def _dijkstra(self, source: str, target: str) -> list[str] | None:
        distances: dict[str, float] = {source: 0.0}
        previous: dict[str, str] = {}
        heap: list[tuple[float, str]] = [(0.0, source)]
        visited: set[str] = set()
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            if node == target:
                break
            visited.add(node)
            for neighbor, weight in self._adjacency.get(node, ()):
                candidate = dist + weight
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    previous[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        if target not in distances:
            return None
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path
