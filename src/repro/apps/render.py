"""Pictorial representations of the inventory (Figures 1, 4, 5, 6).

The paper renders per-cell features as coloured maps.  Without a plotting
stack, this module rasterises inventory features into lat/lon grids and
writes portable pixmaps (PPM/PGM — viewable everywhere, no dependencies)
plus quick ASCII previews for terminals and tests.

Colour mappings follow the paper's figures: speed uses a blue→red ramp,
course uses a directional hue wheel (north green, south red, east blue,
west yellow — Figure 1's legend), counts use a log-scaled monochrome
ramp.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.geo.polygon import BoundingBox
from repro.hexgrid import latlng_to_cell
from repro.inventory.keys import GroupKey
from repro.inventory.backend import QueryableInventory
from repro.inventory.summary import CellSummary


@dataclass
class RasterGrid:
    """A lat/lon value grid (row 0 = northernmost)."""

    bbox: BoundingBox
    width: int
    height: int
    values: list[list[float | None]]

    def value_range(self) -> tuple[float, float] | None:
        """(min, max) over defined pixels, or ``None`` when all empty."""
        defined = [v for row in self.values for v in row if v is not None]
        if not defined:
            return None
        return min(defined), max(defined)

    def coverage(self) -> float:
        """Fraction of pixels with a defined value."""
        total = self.width * self.height
        defined = sum(1 for row in self.values for v in row if v is not None)
        return defined / total if total else 0.0


def raster_from_inventory(
    inventory: QueryableInventory,
    accessor: Callable[[CellSummary], float | None],
    bbox: BoundingBox,
    width: int = 360,
    height: int = 180,
    vessel_type: str | None = None,
) -> RasterGrid:
    """Sample a per-cell feature onto a lat/lon pixel grid.

    Each pixel samples the summary of the cell containing its center
    (fast, resolution-faithful; pixels smaller than cells show the hex
    structure, which is the point).
    """
    values: list[list[float | None]] = []
    lat_span = bbox.lat_max - bbox.lat_min
    lon_span = bbox.lon_max - bbox.lon_min
    if lon_span < 0:
        lon_span += 360.0
    for row in range(height):
        lat = bbox.lat_max - (row + 0.5) * lat_span / height
        row_values: list[float | None] = []
        for col in range(width):
            lon = bbox.lon_min + (col + 0.5) * lon_span / width
            if lon > 180.0:
                lon -= 360.0
            cell = latlng_to_cell(lat, lon, inventory.resolution)
            summary = inventory.get(GroupKey(cell=cell, vessel_type=vessel_type))
            row_values.append(None if summary is None else accessor(summary))
        values.append(row_values)
    return RasterGrid(bbox=bbox, width=width, height=height, values=values)


# -- colormaps ------------------------------------------------------------------


def _ramp_blue_red(t: float) -> tuple[int, int, int]:
    t = min(1.0, max(0.0, t))
    return (int(255 * t), int(64 * (1.0 - abs(2 * t - 1))), int(255 * (1.0 - t)))


def _hue_wheel(angle_deg: float) -> tuple[int, int, int]:
    # Figure 1 legend: north=green, east=blue, south=red, west=yellow.
    anchors = [
        (0.0, (40, 200, 60)),
        (90.0, (40, 80, 230)),
        (180.0, (230, 40, 40)),
        (270.0, (230, 210, 40)),
        (360.0, (40, 200, 60)),
    ]
    angle = angle_deg % 360.0
    for (a0, c0), (a1, c1) in zip(anchors, anchors[1:]):
        if a0 <= angle <= a1:
            t = (angle - a0) / (a1 - a0)
            return tuple(int(x0 + t * (x1 - x0)) for x0, x1 in zip(c0, c1))
    return anchors[0][1]


def _log_mono(t: float) -> tuple[int, int, int]:
    t = min(1.0, max(0.0, t))
    value = int(30 + 225 * t)
    return (value, value, value)


#: name → (per-pixel colour fn taking normalised value, is_angular)
COLORMAPS: dict[str, tuple[Callable, bool]] = {
    "speed": (_ramp_blue_red, False),
    "course": (_hue_wheel, True),
    "count": (_log_mono, False),
    "ata": (_ramp_blue_red, False),
}


def write_ppm(
    raster: RasterGrid,
    path: str | Path,
    colormap: str = "speed",
    background: tuple[int, int, int] = (8, 12, 24),
) -> Path:
    """Write a colour PPM (P6).  Angular colormaps map values directly as
    degrees; scalar ones normalise to the raster's value range (counts are
    log-scaled first)."""
    painter, is_angular = COLORMAPS[colormap]
    span = raster.value_range()
    lo, hi = span if span else (0.0, 1.0)
    log_scale = colormap == "count"
    if log_scale:
        lo = math.log1p(lo)
        hi = math.log1p(hi)
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{raster.width} {raster.height}\n255\n".encode())
        for row in raster.values:
            line = bytearray()
            for value in row:
                if value is None:
                    line.extend(background)
                elif is_angular:
                    line.extend(painter(value))
                else:
                    v = math.log1p(value) if log_scale else value
                    t = (v - lo) / (hi - lo) if hi > lo else 0.5
                    line.extend(painter(t))
            handle.write(bytes(line))
    return path


def write_pgm(raster: RasterGrid, path: str | Path) -> Path:
    """Write a grayscale PGM (P5) of the normalised values."""
    span = raster.value_range()
    lo, hi = span if span else (0.0, 1.0)
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(f"P5\n{raster.width} {raster.height}\n255\n".encode())
        for row in raster.values:
            line = bytearray()
            for value in row:
                if value is None:
                    line.append(0)
                else:
                    t = (value - lo) / (hi - lo) if hi > lo else 0.5
                    line.append(int(20 + 235 * min(1.0, max(0.0, t))))
            handle.write(bytes(line))
    return path


_ASCII_RAMP = " .:-=+*#%@"


def ascii_map(raster: RasterGrid, max_width: int = 100) -> str:
    """A terminal preview: density ramp over the normalised values.

    Blocks of pixels pool to their maximum defined value so thin lanes
    (often one pixel wide) survive the down-sampling.
    """
    step = max(1, raster.width // max_width)
    span = raster.value_range()
    lo, hi = span if span else (0.0, 1.0)
    lines = []
    for row_start in range(0, raster.height, step):
        block_rows = raster.values[row_start : row_start + step]
        chars = []
        for col_start in range(0, raster.width, step):
            block = [
                value
                for row in block_rows
                for value in row[col_start : col_start + step]
                if value is not None
            ]
            if not block:
                chars.append(" ")
            else:
                value = max(block)
                t = (value - lo) / (hi - lo) if hi > lo else 0.5
                index = int(t * (len(_ASCII_RAMP) - 1))
                chars.append(_ASCII_RAMP[min(len(_ASCII_RAMP) - 1, max(1, index))])
        lines.append("".join(chars))
    return "\n".join(lines)
