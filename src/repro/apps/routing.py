"""Route forecasting: transition graphs + A* (§4.1.3).

"We query the global inventory to retrieve the full set of cells for
which the key exists … organized in a graph online; the vertices
correspond to cell identifiers and their connections are defined with
respect to the transitions feature.  Given the graph, typical graph theory
solutions that address the shortest path problem, such as A*, can be used
to forecast the route."

:class:`TransitionGraph` is that online graph; :func:`astar` is a from-
scratch A* with a great-circle heuristic on cell centers (admissible:
no sequence of transitions is shorter than the straight line).  The tests
cross-check path optimality against networkx.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.geo.distance import haversine_m
from repro.hexgrid import cell_to_latlng, latlng_to_cell
from repro.inventory.backend import QueryableInventory


class TransitionGraph:
    """A directed graph of cell → next-cell transitions for one route key."""

    def __init__(self) -> None:
        self._edges: dict[int, dict[int, int]] = {}

    @classmethod
    def from_inventory(
        cls,
        inventory: QueryableInventory,
        origin: str,
        destination: str,
        vessel_type: str,
    ) -> "TransitionGraph":
        """Build the per-key graph from the route's cells and their
        transition top-N statistics."""
        graph = cls()
        for cell, summary in inventory.route_cells(
            origin, destination, vessel_type
        ).items():
            for next_cell, count in summary.top_transitions(n=summary.config.topn_capacity):
                graph.add_edge(cell, next_cell, count)
        return graph

    def add_edge(self, src: int, dst: int, count: int) -> None:
        """Record ``count`` observed transitions src → dst."""
        if count < 1:
            raise ValueError(f"transition count must be positive, got {count}")
        self._edges.setdefault(src, {})
        self._edges[src][dst] = self._edges[src].get(dst, 0) + count

    def neighbors(self, cell: int) -> dict[int, int]:
        """Outgoing transitions (next_cell → count)."""
        return self._edges.get(cell, {})

    def nodes(self) -> set[int]:
        """All cells appearing as a source or target."""
        found = set(self._edges)
        for targets in self._edges.values():
            found.update(targets)
        return found

    def edge_count(self) -> int:
        """Number of directed edges."""
        return sum(len(targets) for targets in self._edges.values())

    def most_frequent_next(self, cell: int) -> int | None:
        """The single most popular next cell ("the most frequent direct
        cell transition" of §1), or ``None`` at a sink."""
        targets = self.neighbors(cell)
        if not targets:
            return None
        return max(targets, key=lambda dst: (targets[dst], -dst))


def _cell_distance_m(cell_a: int, cell_b: int) -> float:
    lat_a, lon_a = cell_to_latlng(cell_a)
    lat_b, lon_b = cell_to_latlng(cell_b)
    return haversine_m(lat_a, lon_a, lat_b, lon_b)


def astar(
    graph: TransitionGraph,
    start: int,
    goal: int,
    edge_cost: Callable[[int, int, int], float] | None = None,
) -> list[int] | None:
    """A* shortest path over a transition graph; ``None`` if unreachable.

    Default edge cost is the great-circle distance between cell centers,
    making the great-circle heuristic admissible and the result the
    geographically shortest observed path.  Pass a custom ``edge_cost``
    (src, dst, count) to prefer popular transitions instead.
    """
    if edge_cost is None:
        edge_cost = lambda src, dst, count: _cell_distance_m(src, dst)  # noqa: E731
    open_heap: list[tuple[float, int, int]] = [(0.0, 0, start)]
    g_score: dict[int, float] = {start: 0.0}
    came_from: dict[int, int] = {}
    closed: set[int] = set()
    tie = 0
    while open_heap:
        _, _, current = heapq.heappop(open_heap)
        if current == goal:
            return _reconstruct(came_from, current)
        if current in closed:
            continue
        closed.add(current)
        for neighbor, count in graph.neighbors(current).items():
            tentative = g_score[current] + edge_cost(current, neighbor, count)
            if tentative < g_score.get(neighbor, math.inf):
                g_score[neighbor] = tentative
                came_from[neighbor] = current
                tie += 1
                heapq.heappush(
                    open_heap,
                    (
                        tentative + _cell_distance_m(neighbor, goal),
                        tie,
                        neighbor,
                    ),
                )
    return None


def _reconstruct(came_from: dict[int, int], current: int) -> list[int]:
    path = [current]
    while current in came_from:
        current = came_from[current]
        path.append(current)
    path.reverse()
    return path


@dataclass
class RouteForecaster:
    """Forecast a vessel's remaining route from its latest position."""

    inventory: QueryableInventory

    def forecast(
        self,
        lat: float,
        lon: float,
        origin: str,
        destination: str,
        vessel_type: str,
        goal_lat: float,
        goal_lon: float,
        popularity_weighted: bool = False,
    ) -> list[int] | None:
        """Predicted cell sequence from the vessel's cell to the goal cell.

        The start snaps to the nearest cell present in the route key's
        graph (live positions rarely hit an inventoried cell dead-center);
        returns ``None`` when the key has no data or no path exists.
        """
        graph = TransitionGraph.from_inventory(
            self.inventory, origin, destination, vessel_type
        )
        nodes = graph.nodes()
        if not nodes:
            return None
        start = self._snap(lat, lon, nodes)
        goal = self._snap(goal_lat, goal_lon, nodes)
        cost = None
        if popularity_weighted:
            # Popular transitions are cheaper; distance keeps it metric.
            cost = lambda src, dst, count: _cell_distance_m(src, dst) / (  # noqa: E731
                1.0 + math.log1p(count)
            )
        return astar(graph, start, goal, edge_cost=cost)

    def _snap(self, lat: float, lon: float, nodes: set[int]) -> int:
        exact = latlng_to_cell(lat, lon, self.inventory.resolution)
        if exact in nodes:
            return exact
        return min(
            nodes,
            key=lambda cell: _cell_distance_m(
                cell, exact
            ),
        )
