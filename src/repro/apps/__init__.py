"""Use-case applications over the global inventory (§4.1).

- :mod:`repro.apps.render` — pictorial knowledge extraction: the per-cell
  feature rasters behind Figures 1, 4, 5 and 6 (PPM/PGM/ASCII output).
- :mod:`repro.apps.eta` — estimated time of arrival from the historical
  ATA statistics (§4.1.2), with a great-circle baseline for comparison.
- :mod:`repro.apps.destination` — streaming destination prediction by
  top-N voting along a live track (§4.1.3).
- :mod:`repro.apps.routing` — route forecasting: the per-route transition
  graph and an A* search over it (§4.1.3).
- :mod:`repro.apps.anomaly` — the model-of-normalcy outlier detector the
  introduction motivates (off-lane positions, abnormal speed/course).
"""

from repro.apps.render import (
    RasterGrid,
    ascii_map,
    raster_from_inventory,
    write_pgm,
    write_ppm,
    COLORMAPS,
)
from repro.apps.eta import EtaEstimate, EtaEstimator, great_circle_baseline_s
from repro.apps.destination import DestinationPredictor, PredictionState
from repro.apps.routing import RouteForecaster, TransitionGraph, astar
from repro.apps.anomaly import AnomalyDetector, AnomalyScore

__all__ = [
    "RasterGrid",
    "raster_from_inventory",
    "ascii_map",
    "write_ppm",
    "write_pgm",
    "COLORMAPS",
    "EtaEstimator",
    "EtaEstimate",
    "great_circle_baseline_s",
    "DestinationPredictor",
    "PredictionState",
    "TransitionGraph",
    "RouteForecaster",
    "astar",
    "AnomalyDetector",
    "AnomalyScore",
]
