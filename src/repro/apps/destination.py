"""Streaming destination prediction (§4.1.3).

"Given a stream of AIS positional reports of a vessel that … has not
disclosed its destination, a streaming application may query online the
inventory for each AIS message and retrieve the top-N destinations for
vessels of the same type that sailed nearby in the past … and keep track
of this list as the stream proceeds to decide on the most probable
destination."

:class:`DestinationPredictor` implements that voting scheme: every
observed position contributes the cell's historical destination
frequencies (normalised, so busy cells don't dominate), and the running
tally is the prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.inventory.backend import QueryableInventory


@dataclass
class PredictionState:
    """The running tally for one tracked vessel."""

    votes: dict[str, float] = field(default_factory=dict)
    observations: int = 0
    matched_observations: int = 0

    def ranking(self) -> list[tuple[str, float]]:
        """Destinations by descending vote share."""
        total = sum(self.votes.values())
        if total == 0.0:
            return []
        return sorted(
            ((dest, vote / total) for dest, vote in self.votes.items()),
            key=lambda item: (-item[1], item[0]),
        )

    def best(self) -> str | None:
        """Current most probable destination."""
        ranking = self.ranking()
        return ranking[0][0] if ranking else None


class DestinationPredictor:
    """Online voting over the inventory's top-N destination statistics."""

    def __init__(self, inventory: QueryableInventory, top_n: int = 5) -> None:
        self.inventory = inventory
        self.top_n = top_n

    def start(self) -> PredictionState:
        """A fresh state for a newly tracked vessel."""
        return PredictionState()

    def observe(
        self,
        state: PredictionState,
        lat: float,
        lon: float,
        vessel_type: str | None = None,
    ) -> PredictionState:
        """Fold one position report into the prediction."""
        state.observations += 1
        top = self.inventory.top_destinations_at(
            lat, lon, vessel_type=vessel_type, n=self.top_n
        )
        if not top:
            return state
        state.matched_observations += 1
        total = sum(count for _, count in top)
        if total <= 0:
            return state
        for destination, count in top:
            state.votes[destination] = (
                state.votes.get(destination, 0.0) + count / total
            )
        return state

    def predict_track(
        self,
        track: list[tuple[float, float]],
        vessel_type: str | None = None,
    ) -> PredictionState:
        """Convenience: run a whole (lat, lon) track through the stream."""
        state = self.start()
        for lat, lon in track:
            self.observe(state, lat, lon, vessel_type=vessel_type)
        return state
