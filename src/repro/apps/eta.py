"""Estimated time of arrival from the inventory's ATA statistics (§4.1.2).

"Explicit statistics for ATA and ETO are … available for all value
combinations of GI on each cell for online querying; each result set can
be considered as a basic ETA estimate."  The estimator queries the cell a
vessel currently occupies and reads the historical actual-time-to-arrival
distribution, preferring the most specific grouping set available:

1. (cell, origin, destination, vessel type) — vessels on the *same route*;
2. (cell, vessel type) — same market through this water;
3. (cell) — anything through this water.

The fallback tiers mix every route crossing the cell, and a cell beside
*some* port is full of near-zero ATAs that say nothing about a vessel
bound elsewhere.  So when the caller supplies a destination, a fallback
tier only answers if that destination appears among the cell's historical
top destinations — "vessels through this water that were going where you
are going".

A physics baseline (great-circle distance over a typical service speed)
is provided so the benchmarks can quantify the inventory's added value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.distance import haversine_m
from repro.inventory.backend import QueryableInventory

_KNOT_MS = 0.514444


@dataclass(frozen=True, slots=True)
class EtaEstimate:
    """One ETA answer: point estimate plus the historical spread.

    ``destination_matched`` is False when the answer came from a fallback
    tier whose historical traffic does *not* include the probe's
    destination — a low-confidence answer callers may discount.
    """

    mean_s: float
    p10_s: float
    p50_s: float
    p90_s: float
    samples: int
    grouping: str
    destination_matched: bool = True

    def interval_contains(self, actual_s: float) -> bool:
        """Whether the actual remaining time fell inside [p10, p90]."""
        return self.p10_s <= actual_s <= self.p90_s


class EtaEstimator:
    """ETA lookups against any :class:`QueryableInventory` backend."""

    def __init__(self, inventory: QueryableInventory, min_samples: int = 3) -> None:
        self.inventory = inventory
        self.min_samples = min_samples

    def estimate(
        self,
        lat: float,
        lon: float,
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> EtaEstimate | None:
        """The ATA distribution of the most specific grouping available.

        Returns ``None`` when no grouping at this cell holds at least
        ``min_samples`` ATA observations — an honest "no history here".
        """
        attempts: list[tuple[str, dict]] = []
        if origin is not None and destination is not None and vessel_type:
            attempts.append(
                (
                    "cell_od_type",
                    dict(
                        vessel_type=vessel_type,
                        origin=origin,
                        destination=destination,
                    ),
                )
            )
        if vessel_type:
            attempts.append(("cell_type", dict(vessel_type=vessel_type)))
        attempts.append(("cell", {}))
        # Pass 1 prefers tiers whose historical traffic shares the probe's
        # destination; pass 2 accepts anything, flagged low-confidence.
        passes = (True, False) if destination is not None else (False,)
        for require_match in passes:
            for grouping, kwargs in attempts:
                summary = self.inventory.summary_at(lat, lon, **kwargs)
                if summary is None or summary.ata.count < self.min_samples:
                    continue
                matched = grouping == "cell_od_type"
                if not matched and destination is not None:
                    historical = {
                        item.value for item in summary.destinations.top()
                    }
                    matched = destination in historical
                if require_match and not matched:
                    continue
                quantile = summary.ata_quantiles.quantile
                return EtaEstimate(
                    mean_s=summary.ata.mean,
                    p10_s=quantile(0.10),
                    p50_s=quantile(0.50),
                    p90_s=quantile(0.90),
                    samples=summary.ata.count,
                    grouping=grouping,
                    destination_matched=matched,
                )
        return None


def great_circle_baseline_s(
    lat: float,
    lon: float,
    dest_lat: float,
    dest_lon: float,
    service_speed_kn: float = 14.0,
) -> float:
    """The naive baseline: straight-line distance over a service speed.

    Systematically optimistic — real routes thread straits and canals —
    which is exactly the error the inventory's ATA history removes.
    """
    if service_speed_kn <= 0.0:
        raise ValueError("service speed must be positive")
    distance = haversine_m(lat, lon, dest_lat, dest_lon)
    return distance / (service_speed_kn * _KNOT_MS)
