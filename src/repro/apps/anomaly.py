"""Anomaly detection against the model of normalcy.

The related-work section states the motivation plainly: "we build a model
of normalcy that can then be used to identify any outliers from this,
e.g. Covid-19 or Suez Canal."  The detector scores a live observation
against the inventory's historical statistics for its cell:

- **off-lane**: the (origin, destination, type) key has no data for this
  cell *or any cell within* ``neighborhood_k`` *rings of it* — the vessel
  is somewhere vessels on this route never went (the Suez-diversion
  signature).  The ring tolerance absorbs lane width: real corridors are
  a few cells wide (traffic separation, weather routing), so demanding
  exact cell membership would flag ordinary lateral spread;
- **speed**: z-score of the observed speed against the cell's speed
  distribution (loitering, drifting, unusual haste);
- **course**: deviation from the cell's circular mean course, normalised
  by its circular spread (against-the-lane movement).

Scores combine into a single anomaly flag with explainable components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.circular import angular_difference_deg
from repro.hexgrid import grid_disk, latlng_to_cell
from repro.inventory.backend import QueryableInventory


@dataclass(frozen=True, slots=True)
class AnomalyScore:
    """One scored observation, with per-component contributions."""

    off_lane: bool
    speed_z: float | None
    course_deviation: float | None
    is_anomalous: bool
    reasons: tuple[str, ...]


class AnomalyDetector:
    """Scores live observations against a normalcy inventory."""

    def __init__(
        self,
        inventory: QueryableInventory,
        speed_z_threshold: float = 3.5,
        course_deviation_threshold: float = 3.0,
        min_history: int = 5,
        neighborhood_k: int = 1,
    ) -> None:
        """
        :param speed_z_threshold: |z| above which speed is anomalous.
        :param course_deviation_threshold: course deviation over circular
            std above which heading is anomalous.
        :param min_history: cells with fewer records than this give no
            opinion (insufficient normalcy model) rather than a flag.
        :param neighborhood_k: ring tolerance of the off-lane check (0 =
            exact cell membership; 1 = within one cell of the corridor).
        """
        self.inventory = inventory
        self.speed_z_threshold = speed_z_threshold
        self.course_deviation_threshold = course_deviation_threshold
        self.min_history = min_history
        self.neighborhood_k = neighborhood_k
        self._route_cells_cache: dict[tuple[str, str, str], set[int]] = {}

    def score(
        self,
        lat: float,
        lon: float,
        sog: float,
        cog: float,
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> AnomalyScore:
        """Score one observation.

        Route context (origin/destination/type) enables the off-lane
        check; without it only the speed/course statistics apply.
        """
        reasons: list[str] = []
        off_lane = False
        if origin is not None and destination is not None and vessel_type:
            lane_cells = self._lane_cells(origin, destination, vessel_type)
            cell = latlng_to_cell(lat, lon, self.inventory.resolution)
            nearby = grid_disk(cell, self.neighborhood_k)
            if not any(candidate in lane_cells for candidate in nearby):
                off_lane = True
                reasons.append(
                    f"no history for route {origin}->{destination} within "
                    f"{self.neighborhood_k} cells of this position"
                )
        base = self.inventory.summary_at(lat, lon, vessel_type=vessel_type)
        if base is None:
            base = self.inventory.summary_at(lat, lon)
        speed_z: float | None = None
        course_deviation: float | None = None
        if base is not None and base.records >= self.min_history:
            if base.speed.count >= self.min_history and base.speed.std > 1e-6:
                speed_z = (sog - base.speed.mean) / base.speed.std
                if abs(speed_z) > self.speed_z_threshold:
                    reasons.append(
                        f"speed {sog:.1f} kn is {speed_z:+.1f} sd from the "
                        f"cell mean {base.speed.mean:.1f} kn"
                    )
            mean_course = base.course.mean_deg
            course_std = base.course.std_deg
            if mean_course is not None and course_std is not None:
                deviation = angular_difference_deg(cog, mean_course)
                spread = max(course_std, 5.0)  # floor: never trust <5° spread
                course_deviation = deviation / spread
                if course_deviation > self.course_deviation_threshold:
                    reasons.append(
                        f"course {cog:.0f}° deviates {deviation:.0f}° from the "
                        f"cell mean {mean_course:.0f}° (spread {spread:.0f}°)"
                    )
        is_anomalous = off_lane or any(
            reason for reason in reasons
        )
        return AnomalyScore(
            off_lane=off_lane,
            speed_z=speed_z,
            course_deviation=course_deviation,
            is_anomalous=is_anomalous,
            reasons=tuple(reasons),
        )

    def _lane_cells(
        self, origin: str, destination: str, vessel_type: str
    ) -> set[int]:
        route = (origin, destination, vessel_type)
        cached = self._route_cells_cache.get(route)
        if cached is None:
            cached = set(
                self.inventory.route_cells(origin, destination, vessel_type)
            )
            self._route_cells_cache[route] = cached
        return cached

    def score_track(
        self,
        track: list[tuple[float, float, float, float]],
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> float:
        """Fraction of a (lat, lon, sog, cog) track flagged anomalous —
        the track-level signal the Suez benchmark thresholds on."""
        if not track:
            return 0.0
        flagged = sum(
            1
            for lat, lon, sog, cog in track
            if self.score(
                lat,
                lon,
                sog,
                cog,
                vessel_type=vessel_type,
                origin=origin,
                destination=destination,
            ).is_anomalous
        )
        return flagged / len(track)
