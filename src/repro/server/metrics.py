"""Server-side observability: request counters + a latency digest.

The same sketch machinery the inventory is built from instruments the
thing serving it: request and error counts live in a
:class:`~repro.engine.metrics.CounterSet`, latencies in a
:class:`~repro.sketches.tdigest.TDigest` (for p50/p90/p99) next to a
:class:`~repro.sketches.moments.MomentsSketch` (count/mean/max).  A
``stats`` request returns :meth:`ServerMetrics.snapshot`, so a plain
client doubles as a monitoring probe — no side channel to scrape.
"""

from __future__ import annotations

import threading

from repro.engine.metrics import CounterSet
from repro.sketches import MomentsSketch, TDigest

REQUESTS_TOTAL = "server.requests"
ERRORS_TOTAL = "server.errors"
CONNECTIONS_OPENED = "server.connections.opened"
CONNECTIONS_CLOSED = "server.connections.closed"
#: Queries that hit storage-level corruption (checksum failures).  Any
#: nonzero value is an operator page: the table needs ``repro fsck``.
CORRUPTION_TOTAL = "server.corruption"


class ServerMetrics:
    """Counters and latency sketches for one server instance."""

    def __init__(self) -> None:
        self.counters = CounterSet()
        self._latency_q = TDigest()
        self._latency = MomentsSketch()
        self._lock = threading.Lock()

    def record_request(self, request_type: str, seconds: float) -> None:
        """Count one successfully answered request and its latency."""
        self.counters.increment(REQUESTS_TOTAL)
        self.counters.increment(f"server.requests.{request_type}")
        with self._lock:
            self._latency_q.update(seconds * 1e3)
            self._latency.update(seconds * 1e3)

    def record_error(self, request_type: str, code: str) -> None:
        """Count one failed request by its error code."""
        self.counters.increment(ERRORS_TOTAL)
        self.counters.increment(f"server.errors.{code}")

    def record_corruption(self, request_type: str) -> None:
        """Count one query answered with a storage-corruption error."""
        self.counters.increment(CORRUPTION_TOTAL)

    @property
    def corruption_errors(self) -> int:
        return self.counters.value(CORRUPTION_TOTAL)

    def connection_opened(self) -> None:
        self.counters.increment(CONNECTIONS_OPENED)

    def connection_closed(self) -> None:
        self.counters.increment(CONNECTIONS_CLOSED)

    @property
    def requests(self) -> int:
        return self.counters.value(REQUESTS_TOTAL)

    @property
    def errors(self) -> int:
        return self.counters.value(ERRORS_TOTAL)

    def snapshot(self) -> dict:
        """A JSON-ready view: all counters plus the latency distribution."""
        with self._lock:
            count = self._latency.count
            latency = {
                "count": count,
                "mean_ms": self._latency.mean if count else None,
                "max_ms": self._latency.max_value if count else None,
                "p50_ms": self._latency_q.quantile(0.50) if count else None,
                "p90_ms": self._latency_q.quantile(0.90) if count else None,
                "p99_ms": self._latency_q.quantile(0.99) if count else None,
            }
        return {"counters": self.counters.as_dict(), "latency_ms": latency}
