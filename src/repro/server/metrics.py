"""Server-side observability: request counters + latency/queue digests.

The same sketch machinery the inventory is built from instruments the
thing serving it: request and error counts live in a
:class:`~repro.engine.metrics.CounterSet`, latencies in a
:class:`~repro.sketches.tdigest.TDigest` (for p50/p90/p99) next to a
:class:`~repro.sketches.moments.MomentsSketch` (count/mean/max), and the
time requests spend queued behind the concurrency semaphore in a second
digest pair — the queue-wait vs. handler-time split that tells an
operator whether a slow server is *overloaded* (queue wait dominates) or
*slow per request* (handler time dominates).  A ``stats`` request
returns :meth:`ServerMetrics.snapshot`, so a plain client doubles as a
monitoring probe, and ``repro serve --metrics-port`` exposes the same
numbers in Prometheus text form (:mod:`repro.obs.exposition`).
"""

from __future__ import annotations

import threading

from repro.engine.metrics import CounterSet
from repro.obs import registry
from repro.server import protocol
from repro.sketches import MomentsSketch, TDigest

REQUESTS_TOTAL = registry.register_counter(
    "server.requests", "requests answered successfully, all types"
)
ERRORS_TOTAL = registry.register_counter(
    "server.errors", "requests answered with an error envelope, all codes"
)
CONNECTIONS_OPENED = registry.register_counter(
    "server.connections.opened", "client connections accepted"
)
CONNECTIONS_CLOSED = registry.register_counter(
    "server.connections.closed",
    "client connections closed (clean EOF, idle timeout, fault or drain)",
)
#: Queries that hit storage-level corruption (checksum failures).  Any
#: nonzero value is an operator page: the table needs ``repro fsck``.
CORRUPTION_TOTAL = registry.register_counter(
    "server.corruption",
    "queries that hit storage-level checksum failures (any nonzero value "
    "means the served table needs `repro fsck`)",
)
#: Successful requests slower than ``ServerConfig.slow_request_s`` (also
#: logged, one line each, to the ``repro.server.slowlog`` logger).
SLOW_TOTAL = registry.register_counter(
    "server.requests.slow",
    "successful requests slower than the configured slow-request "
    "threshold (each is also logged by `repro.server.slowlog`)",
)
#: The fan-out carried by multi frames: a `multi_get` of 50 keys adds 50
#: here and 1 to `server.requests.multi_get`.  The ratio of this counter
#: to the multi_* request counters is the average batch size clients
#: actually send.
REQUESTS_BATCHED = registry.register_counter(
    "server.requests.batched",
    "sub-requests answered inside multi_get/multi_query frames (counts "
    "the fan-out; the frames themselves count under "
    "`server.requests.multi_get` / `server.requests.multi_query`)",
)
#: Multi frames rejected because their fan-out blew the item cap or the
#: response byte budget.  Each rejection is a typed `frame_too_large`
#: error naming the offending sub-request index — the connection stays
#: open; clients should split the batch and retry.
MULTI_REJECTED = registry.register_counter(
    "server.multi.rejected",
    "multi_get/multi_query frames rejected for fan-out size (answered "
    "with a typed frame_too_large error naming the offending "
    "sub-request index, on a live connection)",
)

# The request-type and error-code spaces are closed sets, so the dynamic
# per-type/per-code counters are registered exhaustively here.
for _type in protocol.REQUEST_TYPES:
    registry.register_counter(
        f"server.requests.{_type}",
        f"`{_type}` requests answered successfully",
    )
for _code, _meaning in (
    (protocol.ERR_BAD_FRAME, "unparseable frame payloads (connection dropped)"),
    (
        protocol.ERR_FRAME_TOO_LARGE,
        "frames (or answers) exceeding the frame-size limit",
    ),
    (protocol.ERR_TRUNCATED, "connections closed by the peer mid-frame"),
    (protocol.ERR_BAD_REQUEST, "structurally valid requests with bad parameters"),
    (protocol.ERR_UNKNOWN_TYPE, "requests of a type the server does not implement"),
    (protocol.ERR_DEADLINE, "requests that exceeded the per-request deadline"),
    (protocol.ERR_INTERNAL, "unexpected handler failures (returned as clean errors)"),
    (
        protocol.ERR_CORRUPTION,
        "queries answered with a typed data-corruption error",
    ),
    (
        protocol.ERR_SHARD_UNAVAILABLE,
        "routed requests whose owning shard had no live endpoint",
    ),
    (
        protocol.ERR_INGEST_BACKPRESSURE,
        "ingest batches refused because maintenance fell behind "
        "(typed write stall; the batch was never applied)",
    ),
):
    registry.register_counter(f"server.errors.{_code}", f"errors by code: {_meaning}")


class ServerMetrics:
    """Counters and latency/queue-wait sketches for one server instance."""

    def __init__(self) -> None:
        self.counters = CounterSet()
        self._latency_q = TDigest()
        self._latency = MomentsSketch()
        self._queue_q = TDigest()
        self._queue = MomentsSketch()
        self._lock = threading.Lock()

    def record_request(self, request_type: str, seconds: float) -> None:
        """Count one successfully answered request and its latency."""
        self.counters.increment(REQUESTS_TOTAL)
        self.counters.increment(f"server.requests.{request_type}")
        with self._lock:
            self._latency_q.update(seconds * 1e3)
            self._latency.update(seconds * 1e3)

    def record_queue_wait(self, seconds: float) -> None:
        """Record how long one request waited for a concurrency slot."""
        with self._lock:
            self._queue_q.update(seconds * 1e3)
            self._queue.update(seconds * 1e3)

    def record_batched(self, fanout: int) -> None:
        """Count the sub-requests answered by one successful multi frame."""
        self.counters.increment(REQUESTS_BATCHED, fanout)

    def record_multi_rejected(self) -> None:
        """Count one multi frame rejected for fan-out size."""
        self.counters.increment(MULTI_REJECTED)

    def record_error(self, request_type: str, code: str) -> None:
        """Count one failed request by its error code."""
        self.counters.increment(ERRORS_TOTAL)
        self.counters.increment(f"server.errors.{code}")

    def record_corruption(self, request_type: str) -> None:
        """Count one query answered with a storage-corruption error."""
        self.counters.increment(CORRUPTION_TOTAL)

    def record_slow(self, request_type: str) -> None:
        """Count one successful request over the slow-request threshold."""
        self.counters.increment(SLOW_TOTAL)

    @property
    def corruption_errors(self) -> int:
        """Queries that hit storage corruption so far."""
        return self.counters.value(CORRUPTION_TOTAL)

    def connection_opened(self) -> None:
        """Count one accepted client connection."""
        self.counters.increment(CONNECTIONS_OPENED)

    def connection_closed(self) -> None:
        """Count one closed client connection."""
        self.counters.increment(CONNECTIONS_CLOSED)

    @property
    def requests(self) -> int:
        """Requests answered successfully so far."""
        return self.counters.value(REQUESTS_TOTAL)

    @property
    def errors(self) -> int:
        """Requests answered with an error so far."""
        return self.counters.value(ERRORS_TOTAL)

    def snapshot(self) -> dict:
        """A JSON-ready view: counters + latency and queue-wait stats."""
        with self._lock:
            latency = self._distribution(self._latency, self._latency_q)
            queue_wait = self._distribution(self._queue, self._queue_q)
        return {
            "counters": self.counters.as_dict(),
            "latency_ms": latency,
            "queue_wait_ms": queue_wait,
        }

    @staticmethod
    def _distribution(moments: MomentsSketch, digest: TDigest) -> dict:
        count = moments.count
        return {
            "count": count,
            "mean_ms": moments.mean if count else None,
            "max_ms": moments.max_value if count else None,
            "p50_ms": digest.quantile(0.50) if count else None,
            "p90_ms": digest.quantile(0.90) if count else None,
            "p99_ms": digest.quantile(0.99) if count else None,
        }
