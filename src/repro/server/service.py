"""Request dispatch: one :class:`QueryableInventory`, every query type.

The service is the server's pure core — a dict in, a dict out, no I/O,
no clocks — so the whole query surface is unit-testable without opening
a socket, and the asyncio layer stays a thin shell of timeouts and
framing.  The handlers deliberately reuse the *same* app classes the
in-process callers use (:class:`~repro.apps.eta.EtaEstimator`,
:class:`~repro.apps.destination.DestinationPredictor`): remote answers
equal local answers because they run the same code against the same
backend, not because two implementations happen to agree.

Handlers run on the server's worker threads, many at a time, against one
shared backend — the reason :class:`~repro.inventory.backend.BlockCache`,
:class:`~repro.engine.metrics.CounterSet` and the table reader take
locks.
"""

from __future__ import annotations

import json

from repro.apps.destination import DestinationPredictor
from repro.apps.eta import EtaEstimator
from repro.inventory.backend import QueryableInventory
from repro.inventory.maintenance import IngestBackpressure
from repro.inventory.sstable import SSTableError
from repro.obs import trace as obs
from repro.obs.sinks import RingBufferSink
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    MAX_MULTI_ITEMS,
    BadRequestError,
    FanOutTooLargeError,
    IngestBackpressureError,
    ProtocolError,
    UnknownRequestError,
    summary_to_wire,
)


class InventoryService:
    """Answers decoded protocol requests from one inventory backend."""

    def __init__(
        self,
        inventory: QueryableInventory,
        min_eta_samples: int = 3,
        top_n: int = 5,
        max_multi_items: int = MAX_MULTI_ITEMS,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.inventory = inventory
        self.eta = EtaEstimator(inventory, min_samples=min_eta_samples)
        self.predictor = DestinationPredictor(inventory, top_n=top_n)
        self.max_multi_items = max_multi_items
        # Multi responses must fit one frame.  The budget leaves slack for
        # the response envelope so a fan-out the service accepts is a
        # fan-out the framing layer can actually send.
        self._multi_budget = max_frame_bytes - 1024
        self._handlers = {
            "ping": self._ping,
            "stats": self._stats,
            "summary_at": self._summary_at,
            "top_destinations_at": self._top_destinations_at,
            "route_cells": self._route_cells,
            "eta": self._eta,
            "destination": self._destination,
            "trace": self._trace,
            "multi_get": self._multi_get,
            "multi_query": self._multi_query,
            "ingest": self._ingest,
        }

    def handle(self, request: dict) -> dict:
        """Dispatch one request to its handler; returns the result payload.

        Raises :class:`UnknownRequestError` / :class:`BadRequestError`
        for requests the protocol layer turns into error responses.
        """
        handler = self._handlers.get(request.get("type"))
        if handler is None:
            raise UnknownRequestError(request.get("type"))
        return handler(request)

    # -- handlers ------------------------------------------------------------------

    def _ping(self, request: dict) -> dict:
        return {"pong": True}

    def _stats(self, request: dict) -> dict:
        inventory = self.inventory
        stats: dict = {"resolution": inventory.resolution}
        try:
            stats["entries"] = len(inventory)  # type: ignore[arg-type]
        except TypeError:
            pass
        cache_stats = getattr(inventory, "cache_stats", None)
        if callable(cache_stats):
            stats["cache"] = cache_stats()
        # A sharded backend reports per-shard health (endpoint states,
        # failover counts) under the same optional-hook pattern as the
        # block cache above.
        shard_stats = getattr(inventory, "shard_stats", None)
        if callable(shard_stats):
            stats["shards"] = shard_stats()
        # A live (WAL + memtable) backend reports its write-path state —
        # memtable fill, table count, WAL watermarks — the same way.
        ingest_stats = getattr(inventory, "ingest_stats", None)
        if callable(ingest_stats):
            stats["ingest"] = ingest_stats()
        return {"inventory": stats}

    def _ingest(self, request: dict) -> dict:
        """Accept a batch of live records (write path).

        Only backends exposing ``ingest_records`` (the
        :class:`~repro.inventory.live.LiveInventory` hook) accept
        writes; every other backend is read-only and answers a typed
        ``bad_request``.  The fan-out cap and response-budget rules of
        the multi requests apply: one frame, bounded work.
        """
        sink = getattr(self.inventory, "ingest_records", None)
        if not callable(sink):
            raise BadRequestError(
                "backend is read-only: ingest requires a live inventory "
                "(repro serve --live)"
            )
        records = self._fanout_items(request, "records")
        try:
            ack = sink(records)
        except SSTableError:
            raise  # storage damage is data_corruption, never bad_request
        except IngestBackpressure as exc:
            # The valve sits before the WAL append, so the batch was
            # never applied and a paced retry is always safe.
            raise IngestBackpressureError(
                str(exc),
                frozen_memtables=exc.frozen_memtables,
                debt_bytes=exc.debt_bytes,
                waited_s=exc.waited_s,
            ) from None
        except ValueError as exc:
            # The hook names the offending record index (records[i]: ...).
            raise BadRequestError(str(exc)) from None
        return {"ingest": ack}

    def _trace(self, request: dict) -> dict:
        # The live tail of the tracer's ring buffer (``repro serve
        # --trace-ring``).  With tracing off (or no ring installed) the
        # answer is an empty, clearly-flagged tail — not an error, so
        # probes can poll it unconditionally.
        n = _int(request, "n", default=50, minimum=1)
        ring = obs.find_sink(RingBufferSink)
        return {
            "enabled": obs.enabled(),
            "spans": [] if ring is None else ring.spans(n),
        }

    def _summary_at(self, request: dict) -> dict:
        lat, lon = _position(request)
        try:
            summary = self.inventory.summary_at(
                lat,
                lon,
                vessel_type=_string(request, "vessel_type"),
                origin=_string(request, "origin"),
                destination=_string(request, "destination"),
            )
        except SSTableError:
            raise  # storage fault, not a bad request: keep it typed
        except ValueError as exc:
            raise BadRequestError(str(exc))
        return {"summary": None if summary is None else summary_to_wire(summary)}

    def _top_destinations_at(self, request: dict) -> dict:
        lat, lon = _position(request)
        n = _int(request, "n", default=5, minimum=1)
        top = self.inventory.top_destinations_at(
            lat, lon, vessel_type=_string(request, "vessel_type"), n=n
        )
        return {"destinations": [[dest, count] for dest, count in top]}

    def _route_cells(self, request: dict) -> dict:
        origin = _string(request, "origin", required=True)
        destination = _string(request, "destination", required=True)
        vessel_type = _string(request, "vessel_type", required=True)
        cells = self.inventory.route_cells(origin, destination, vessel_type)
        # JSON object keys are strings; the client restores the int cells.
        return {
            "cells": {
                str(cell): summary_to_wire(summary)
                for cell, summary in cells.items()
            }
        }

    def _eta(self, request: dict) -> dict:
        lat, lon = _position(request)
        try:
            estimate = self.eta.estimate(
                lat,
                lon,
                vessel_type=_string(request, "vessel_type"),
                origin=_string(request, "origin"),
                destination=_string(request, "destination"),
            )
        except SSTableError:
            raise  # storage fault, not a bad request: keep it typed
        except ValueError as exc:
            raise BadRequestError(str(exc))
        if estimate is None:
            return {"eta": None}
        return {
            "eta": {
                "mean_s": estimate.mean_s,
                "p10_s": estimate.p10_s,
                "p50_s": estimate.p50_s,
                "p90_s": estimate.p90_s,
                "samples": estimate.samples,
                "grouping": estimate.grouping,
                "destination_matched": estimate.destination_matched,
            }
        }

    def _destination(self, request: dict) -> dict:
        track = request.get("track")
        if not isinstance(track, list) or not track:
            raise BadRequestError("destination requires a non-empty track")
        points = []
        for point in track:
            if (
                not isinstance(point, (list, tuple))
                or len(point) != 2
                or not all(isinstance(c, (int, float)) for c in point)
            ):
                raise BadRequestError(
                    "track points must be [lat, lon] pairs of numbers"
                )
            points.append((float(point[0]), float(point[1])))
        state = self.predictor.predict_track(
            points, vessel_type=_string(request, "vessel_type")
        )
        return {
            "best": state.best(),
            "ranking": [[dest, share] for dest, share in state.ranking()],
            "observations": state.observations,
            "matched_observations": state.matched_observations,
        }

    # -- multi requests ------------------------------------------------------------

    def _fanout_items(self, request: dict, name: str) -> list:
        """Validate a multi frame's sub-request list (shape + item cap)."""
        items = request.get(name)
        if not isinstance(items, list) or not items:
            raise BadRequestError(
                f"{request.get('type')} requires a non-empty {name} list"
            )
        cap = self.max_multi_items
        if len(items) > cap:
            raise FanOutTooLargeError(
                cap,
                f"{name} fan-out of {len(items)} exceeds the {cap}-item "
                f"limit; sub-request {cap} is the first over — split the "
                f"batch and retry",
            )
        return items

    def _check_multi_budget(self, size: int, index: int) -> None:
        """Fail fast, naming ``index``, once the accumulated response
        bytes can no longer fit one frame."""
        if size > self._multi_budget:
            raise FanOutTooLargeError(
                index,
                f"cumulative response of {size:,} bytes exceeds the "
                f"{self._multi_budget:,}-byte frame budget at sub-request "
                f"{index} — split the batch and retry",
            )

    def _multi_get(self, request: dict) -> dict:
        # N summary_at point lookups in one frame; summaries come back in
        # key order (None where the cell is empty).  The running byte
        # count is exact for the payload (base64 needs no JSON escaping):
        # each summary costs len(wire) + quotes + comma, a miss costs
        # `null` + comma.
        keys = self._fanout_items(request, "keys")
        batch = self._multi_get_batched(keys)
        if batch is not None:
            return batch
        summaries: list[str | None] = []
        size = 0
        for index, key in enumerate(keys):
            self._validate_multi_key(key, index)
            try:
                summary = self.inventory.summary_at(
                    *_position(key),
                    vessel_type=_string(key, "vessel_type"),
                    origin=_string(key, "origin"),
                    destination=_string(key, "destination"),
                )
            except SSTableError:
                raise  # storage fault, not a bad request: keep it typed
            except BadRequestError as exc:
                raise BadRequestError(f"keys[{index}]: {exc}")
            except ValueError as exc:
                raise BadRequestError(f"keys[{index}]: {exc}")
            wire = None if summary is None else summary_to_wire(summary)
            size += 5 if wire is None else len(wire) + 3
            self._check_multi_budget(size, index)
            summaries.append(wire)
        return {"summaries": summaries}

    def _validate_multi_key(self, key: object, index: int) -> None:
        """The per-key validation of the loop above, factored out so the
        batched path can run it *eagerly* with identical error text.

        The backend query itself raises only storage faults, so whether
        validation is interleaved (loop) or up-front (batch), the first
        invalid key produces the same ``keys[i]: ...`` error.
        """
        if not isinstance(key, dict):
            raise BadRequestError(
                f"keys[{index}] must be an object, got {type(key).__name__}"
            )
        try:
            _position(key)
            vessel_type = _string(key, "vessel_type")
            origin = _string(key, "origin")
            destination = _string(key, "destination")
            # The backend mixin's pairing rules, applied pre-dispatch
            # (same strings as InventoryQueryMixin.summary_at).
            if (origin is None) != (destination is None):
                raise BadRequestError(
                    "origin and destination must be provided together"
                )
            if origin is not None and vessel_type is None:
                raise BadRequestError("route breakdowns require a vessel type")
        except BadRequestError as exc:
            raise BadRequestError(f"keys[{index}]: {exc}")

    def _multi_get_batched(self, keys: list) -> dict | None:
        """Delegate a whole ``multi_get`` batch to the backend, when it
        can do better than N sequential point lookups.

        A sharded backend groups keys by owning shard and issues one
        sub-``multi_get`` per shard instead of N round trips; answers
        (and the byte budget, and all error envelopes) are identical to
        the sequential path.  Returns None when the backend has no
        ``multi_summary_at`` — the plain loop then runs.
        """
        multi = getattr(self.inventory, "multi_summary_at", None)
        if not callable(multi):
            return None
        for index, key in enumerate(keys):
            self._validate_multi_key(key, index)
        summaries: list[str | None] = []
        size = 0
        for index, summary in enumerate(multi(keys)):
            wire = None if summary is None else summary_to_wire(summary)
            size += 5 if wire is None else len(wire) + 3
            self._check_multi_budget(size, index)
            summaries.append(wire)
        return {"summaries": summaries}

    def _multi_query(self, request: dict) -> dict:
        # A pipelined batch of arbitrary (non-multi) requests.  Responses
        # come back in request order as per-item envelopes: one bad
        # sub-request yields one error entry, not a failed batch — only a
        # fan-out that cannot fit the response frame fails whole, typed,
        # with the offending index.
        subs = self._fanout_items(request, "requests")
        responses: list[dict] = []
        size = 0
        for index, sub in enumerate(subs):
            if not isinstance(sub, dict):
                raise BadRequestError(
                    f"requests[{index}] must be an object, got "
                    f"{type(sub).__name__}"
                )
            sub_type = sub.get("type")
            if isinstance(sub_type, str) and sub_type in ("multi_get", "multi_query"):
                raise BadRequestError(
                    f"requests[{index}]: {sub_type} does not nest inside "
                    f"multi_query"
                )
            try:
                entry: dict = {"ok": True, "result": self.handle(sub)}
            except SSTableError:
                raise  # storage fault, not a bad request: keep it typed
            except ProtocolError as exc:
                entry = {
                    "ok": False,
                    "error": {
                        "code": exc.code,
                        "message": f"requests[{index}]: {exc}",
                    },
                }
            size += len(json.dumps(entry, separators=(",", ":"))) + 1
            self._check_multi_budget(size, index)
            responses.append(entry)
        return {"responses": responses}


# -- parameter validation --------------------------------------------------------


def _position(request: dict) -> tuple[float, float]:
    return _float(request, "lat"), _float(request, "lon")


def _float(request: dict, name: str) -> float:
    value = request.get(name)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise BadRequestError(f"{name} must be a number, got {value!r}")
    return float(value)


def _int(request: dict, name: str, default: int, minimum: int) -> int:
    value = request.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise BadRequestError(f"{name} must be an integer >= {minimum}, got {value!r}")
    return value


def _string(
    request: dict, name: str, required: bool = False
) -> str | None:
    value = request.get(name)
    if value is None:
        if required:
            raise BadRequestError(f"{name} is required")
        return None
    if not isinstance(value, str) or not value:
        raise BadRequestError(f"{name} must be a non-empty string, got {value!r}")
    return value
